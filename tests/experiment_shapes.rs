//! Cheap assertions of the experiment *shapes* documented in
//! EXPERIMENTS.md — who wins, in what order — so regressions in the
//! reproduced results fail CI, not just the prose.

use tadfa::prelude::*;
use tadfa::sim::{simulate_trace, CosimConfig};
use tadfa::workloads::{generate, GeneratorConfig};

fn measured_stats(
    func: &tadfa::ir::Function,
    rf: &RegisterFile,
    policy: &mut dyn AssignmentPolicy,
) -> MapStats {
    let mut func = func.clone();
    let alloc = allocate_linear_scan(&mut func, rf, policy, &RegAllocConfig::default())
        .expect("workload allocates");
    let exec = Interpreter::new(&func)
        .with_assignment(&alloc.assignment)
        .with_fuel(50_000_000)
        .run(&[3, 7])
        .expect("workload runs");
    let model = ThermalModel::new(rf.floorplan().clone(), RcParams::default());
    let map = simulate_trace(
        &exec.trace,
        rf,
        &model,
        &PowerModel::default(),
        &CosimConfig::default(),
    )
    .peak_map;
    MapStats::of(&map, rf.floorplan())
}

fn fig1_workload(pressure: usize) -> tadfa::ir::Function {
    generate(&GeneratorConfig {
        seed: 2009,
        segments: 5,
        exprs_per_segment: 10,
        pressure,
        loops: 2,
        trip_count: 100,
        memory: false,
        hot_vars: 0,
        hot_weight: 8,
    })
}

/// E1 / Fig. 1: the ordered first-free policy produces the hottest, most
/// uneven map; chessboard and random are far more uniform.
#[test]
fn e1_first_free_is_the_hot_spot_producer() {
    let rf = RegisterFile::new(Floorplan::grid(8, 8));
    let func = fig1_workload(24);

    let ff = measured_stats(&func, &rf, &mut FirstFree);
    let cb = measured_stats(&func, &rf, &mut Chessboard::default());
    let rnd = measured_stats(&func, &rf, &mut RandomPolicy::new(3));

    assert!(ff.peak > cb.peak + 1.0, "ff {:.2} vs cb {:.2}", ff.peak, cb.peak);
    assert!(ff.peak > rnd.peak + 1.0, "ff {:.2} vs rnd {:.2}", ff.peak, rnd.peak);
    assert!(ff.stddev > 2.0 * cb.stddev, "ff σ {:.3} vs cb σ {:.3}", ff.stddev, cb.stddev);
    assert!(
        ff.max_gradient > cb.max_gradient,
        "ff ∇ {:.3} vs cb ∇ {:.3}",
        ff.max_gradient,
        cb.max_gradient
    );
}

/// E2 / §2 caveat: chessboard's uniformity degrades once pressure passes
/// half the register file.
#[test]
fn e2_chessboard_degrades_past_half_pressure() {
    let rf = RegisterFile::new(Floorplan::grid(8, 8));
    let low = measured_stats(&fig1_workload(12), &rf, &mut Chessboard::default());
    let high = measured_stats(&fig1_workload(40), &rf, &mut Chessboard::default());
    assert!(
        high.stddev > 1.5 * low.stddev,
        "σ low-pressure {:.3} vs past-half {:.3}",
        low.stddev,
        high.stddev
    );
}

/// E3 / Fig. 2: iterations grow as δ shrinks; the iteration cap reports
/// non-convergence.
#[test]
fn e3_delta_controls_iterations() {
    let rf = RegisterFile::new(Floorplan::grid(4, 4));
    let mut func = tadfa::workloads::fibonacci().func;
    let alloc =
        allocate_linear_scan(&mut func, &rf, &mut FirstFree, &RegAllocConfig::default())
            .unwrap();
    let grid = AnalysisGrid::full(&rf, RcParams::default());
    let pm = PowerModel::default();

    let run = |delta: f64, cap: usize| {
        let cfg = ThermalDfaConfig {
            delta,
            max_iterations: cap,
            time_scale: 10_000.0,
            ..ThermalDfaConfig::default()
        };
        ThermalDfa::new(&func, &alloc.assignment, &grid, pm, cfg).run()
    };

    let loose = run(1.0, 1000);
    let tight = run(1e-3, 1000);
    assert!(loose.convergence.is_converged());
    assert!(tight.convergence.is_converged());
    assert!(tight.convergence.iterations() > loose.convergence.iterations());

    let capped = run(1e-9, 3);
    assert!(!capped.convergence.is_converged());
}

/// E5 / §3: finer analysis grids predict strictly better (RMS against
/// ground truth shrinks as points increase).
///
/// The DFA's fixpoint is the *sustained* thermal state, so the ground
/// truth must come from a saturated execution — hence fib(3000), not the
/// canonical fib(30).
#[test]
fn e5_finer_grids_predict_better() {
    let rf = RegisterFile::new(Floorplan::grid(8, 8));
    let pm = PowerModel::default();
    let dfa_config = ThermalDfaConfig::default();
    let w = tadfa::workloads::fibonacci();
    let mut func = w.func.clone();
    let alloc =
        allocate_linear_scan(&mut func, &rf, &mut FirstFree, &RegAllocConfig::default())
            .unwrap();

    // Ground truth from a saturated run.
    let exec = Interpreter::new(&func)
        .with_assignment(&alloc.assignment)
        .with_fuel(50_000_000)
        .run(&[3000])
        .unwrap();
    let model = ThermalModel::new(rf.floorplan().clone(), RcParams::default());
    let cosim = CosimConfig {
        seconds_per_cycle: dfa_config.seconds_per_cycle,
        time_scale: dfa_config.time_scale,
        ..CosimConfig::default()
    };
    let truth = simulate_trace(&exec.trace, &rf, &model, &pm, &cosim).peak_map;

    let rms_at = |rows: usize, cols: usize| {
        let grid = AnalysisGrid::coarsened(&rf, RcParams::default(), rows, cols);
        let r = ThermalDfa::new(&func, &alloc.assignment, &grid, pm, dfa_config).run();
        compare_maps(&grid.upsample(&r.peak_map()), &truth, rf.floorplan()).rms
    };

    let coarse = rms_at(1, 1);
    let mid = rms_at(4, 4);
    let fine = rms_at(8, 8);
    assert!(fine < mid, "8x8 rms {fine:.4} !< 4x4 rms {mid:.4}");
    assert!(mid < coarse, "4x4 rms {mid:.4} !< 1x1 rms {coarse:.4}");
}

/// E7: the predictive critical set finds the hot accumulators of a loop
/// kernel before any assignment exists.
#[test]
fn e7_predictive_set_overlaps_measured_hot_variables() {
    let rf = RegisterFile::new(Floorplan::grid(8, 8));
    let pm = PowerModel::default();
    let w = tadfa::workloads::fibonacci();

    let pred = PredictiveDfa::new(
        &w.func,
        &rf,
        RcParams::default(),
        pm,
        PredictiveConfig::default(),
    )
    .run()
    .unwrap();
    let predicted = pred.predicted_critical(0.3);
    assert!(!predicted.is_empty());

    let mut func = w.func.clone();
    let alloc =
        allocate_linear_scan(&mut func, &rf, &mut FirstFree, &RegAllocConfig::default())
            .unwrap();
    let grid = AnalysisGrid::full(&rf, RcParams::default());
    let result =
        ThermalDfa::new(&func, &alloc.assignment, &grid, pm, ThermalDfaConfig::default()).run();
    let measured = CriticalSet::identify(
        &func,
        &alloc.assignment,
        &grid,
        &result,
        &pm,
        CriticalConfig { temp_fraction: 0.5 },
    );

    let overlap = predicted
        .iter()
        .filter(|v| measured.is_critical(**v))
        .count();
    assert!(
        overlap > 0,
        "no overlap between predicted {:?} and measured {:?}",
        predicted,
        measured.critical()
    );
}
