//! The scaling benchmark the engine exists for: the sequential
//! `Session::analyze_batch` vs the parallel `Engine` at 1/2/4 workers,
//! cold-cache vs warm-cache, on the standard suite replicated 4× (the
//! repeated-kernel stream a compiler batch or policy sweep produces).
//!
//! Two claims are checked and printed:
//!
//! 1. throughput — engine at 4 workers vs the sequential baseline
//!    (worker-pool parallelism plus memoised RC solves);
//! 2. identity — parallel reports are byte-identical (equal
//!    fingerprints, in order) to sequential ones.
//!
//! Run: `cargo bench -p tadfa-bench --bench parallel_batch`

use tadfa_bench::quickbench::{fmt_duration, Harness};
use tadfa_core::{Engine, Session};
use tadfa_ir::Function;
use tadfa_workloads::replicated_suite;

const REPLICAS: usize = 4;

fn session() -> Session {
    Session::builder()
        .floorplan(8, 8)
        .policy_name("first-free", 0)
        .build()
        .expect("bench session is valid")
}

fn main() {
    let funcs: Vec<Function> = replicated_suite(REPLICAS)
        .into_iter()
        .map(|w| w.func)
        .collect();
    println!(
        "standard suite x{REPLICAS} = {} functions, {} hardware threads\n",
        funcs.len(),
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );

    let mut h = Harness::new();
    h.sample_size = 10;

    let mut sequential = session();
    h.bench_function("sequential/analyze_batch", || {
        sequential
            .analyze_batch(&funcs)
            .into_iter()
            .map(|r| r.expect("suite analyzes").peak_temperature())
            .fold(0.0f64, f64::max)
    });

    for workers in [1usize, 2, 4] {
        let engine = Engine::from_session(&sequential, workers).expect("replicable policy");
        h.bench_function(&format!("engine_{workers}w/cold_cache"), || {
            engine.clear_cache();
            engine
                .analyze_batch_parallel(&funcs)
                .into_iter()
                .map(|r| r.expect("suite analyzes").peak_temperature())
                .fold(0.0f64, f64::max)
        });
    }

    // Warm cache: same engine, cache pre-populated by the first run and
    // never cleared.
    let warm_engine = Engine::from_session(&sequential, 4).expect("replicable policy");
    let _ = warm_engine.analyze_batch_parallel(&funcs);
    h.bench_function("engine_4w/warm_cache", || {
        warm_engine
            .analyze_batch_parallel(&funcs)
            .into_iter()
            .map(|r| r.expect("suite analyzes").peak_temperature())
            .fold(0.0f64, f64::max)
    });

    h.report();

    let base = h
        .mean_of("sequential/analyze_batch")
        .expect("benched")
        .as_secs_f64();
    println!();
    for name in [
        "engine_1w/cold_cache",
        "engine_2w/cold_cache",
        "engine_4w/cold_cache",
        "engine_4w/warm_cache",
    ] {
        let t = h.mean_of(name).expect("benched").as_secs_f64();
        println!(
            "speedup {name:<22} vs sequential: {:.2}x ({} per batch)",
            base / t.max(1e-12),
            fmt_duration(std::time::Duration::from_secs_f64(t)),
        );
    }
    let stats = warm_engine.cache_stats();
    println!(
        "solve cache: {} entries, hit rate {:.1}%",
        stats.entries,
        100.0 * stats.hit_rate(),
    );

    // Identity: parallel reports byte-identical to sequential, in order.
    let seq_prints: Vec<u128> = sequential
        .analyze_batch(&funcs)
        .into_iter()
        .map(|r| r.expect("suite analyzes").fingerprint())
        .collect();
    let par_prints: Vec<u128> = warm_engine
        .analyze_batch_parallel(&funcs)
        .into_iter()
        .map(|r| r.expect("suite analyzes").fingerprint())
        .collect();
    assert_eq!(seq_prints, par_prints, "parallel must match sequential");
    println!("parallel results byte-identical to sequential: true");
}
