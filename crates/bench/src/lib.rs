//! # tadfa-bench — experiment harness
//!
//! Shared plumbing for the experiment binaries that regenerate every
//! figure of the paper (and the quantified extensions E2–E7 documented in
//! `DESIGN.md` / `EXPERIMENTS.md`). Each binary composes
//! [`evaluate_policy`] (workload → allocation under a policy → predicted
//! map via the thermal DFA → measured map via traced execution and
//! co-simulation) over a shared [`Session`] and prints aligned tables
//! plus Fig. 1-style ASCII heat maps.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod quickbench;

use tadfa_core::{Session, TadfaError, ThermalDfaResult};
use tadfa_ir::Function;
use tadfa_regalloc::Assignment;
use tadfa_sim::{simulate_trace, CosimConfig, Interpreter, SimError};
use tadfa_thermal::{MapStats, ThermalState};
use tadfa_workloads::Workload;

/// A session over the canonical 8×8 (64-register) file used by the
/// experiments, matching the paper's Fig. 1 panels.
///
/// # Panics
///
/// Never — the default configuration is valid by construction; the
/// `expect` is unreachable.
pub fn default_session() -> Session {
    Session::builder()
        .floorplan(8, 8)
        .build()
        .expect("default experiment session is valid")
}

/// Everything measured for one (workload, policy) pair.
#[derive(Clone, Debug)]
pub struct PolicyEval {
    /// Policy name.
    pub policy: String,
    /// Map predicted by the thermal DFA (on the physical floorplan).
    pub predicted: ThermalState,
    /// Map measured by traced execution + co-simulation.
    pub measured: ThermalState,
    /// Summary of the measured map.
    pub measured_stats: MapStats,
    /// Summary of the predicted map.
    pub predicted_stats: MapStats,
    /// The DFA result (convergence diagnostics), shared with the
    /// report it came from.
    pub dfa: std::sync::Arc<ThermalDfaResult>,
    /// Dynamic cycles of the traced run.
    pub cycles: u64,
    /// Virtual registers spilled during allocation.
    pub spilled: usize,
    /// The final register assignment.
    pub assignment: Assignment,
    /// The allocated function (spill code included).
    pub func: Function,
}

/// Errors the harness can surface.
#[derive(Debug)]
pub enum HarnessError {
    /// Analysis-side failure (config, policy, allocation).
    Tadfa(TadfaError),
    /// Execution failed.
    Sim(SimError),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Tadfa(e) => write!(f, "analysis failed: {e}"),
            HarnessError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<TadfaError> for HarnessError {
    fn from(e: TadfaError) -> Self {
        HarnessError::Tadfa(e)
    }
}

impl From<SimError> for HarnessError {
    fn from(e: SimError) -> Self {
        HarnessError::Sim(e)
    }
}

/// Runs one workload under one assignment policy through `session`:
/// allocate, predict (thermal DFA), execute+trace, co-simulate
/// (measured), and summarise. The session's register file, grid, power
/// model, and DFA config are reused; only the policy is switched.
///
/// # Errors
///
/// Returns [`HarnessError`] on unknown policy, allocation failure, or
/// execution failure.
pub fn evaluate_policy(
    session: &mut Session,
    workload: &Workload,
    policy_name: &str,
    seed: u64,
) -> Result<PolicyEval, HarnessError> {
    session.set_policy_name(policy_name, seed)?;
    let report = session.analyze(&workload.func)?;

    // Measured map: traced execution + co-simulation.
    let rf = session.register_file();
    let mut interp = Interpreter::new(&report.func)
        .with_assignment(&report.assignment)
        .with_fuel(50_000_000);
    for (slot, data) in &workload.preload {
        interp = interp.with_slot_data(*slot, data.clone());
    }
    let exec = interp.run(&workload.args)?;
    let model = tadfa_thermal::ThermalModel::new(rf.floorplan().clone(), session.rc_params());
    let dfa_config = session.dfa_config();
    let cosim = CosimConfig {
        seconds_per_cycle: dfa_config.seconds_per_cycle,
        time_scale: dfa_config.time_scale,
        ..CosimConfig::default()
    };
    let timeline = simulate_trace(&exec.trace, rf, &model, &session.power_model(), &cosim);

    let fp = rf.floorplan();
    Ok(PolicyEval {
        policy: policy_name.to_string(),
        measured_stats: MapStats::of(&timeline.peak_map, fp),
        predicted_stats: MapStats::of(&report.predicted, fp),
        predicted: report.predicted,
        measured: timeline.peak_map,
        dfa: report.dfa,
        cycles: exec.cycles,
        spilled: report.alloc_stats.spilled,
        assignment: report.assignment,
        func: report.func,
    })
}

/// Prints an aligned table: header row then each data row, columns padded
/// to the widest cell.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate().take(ncols) {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats Kelvin with two decimals.
pub fn k2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats Kelvin with three decimals.
pub fn k3(v: f64) -> String {
    format!("{v:.3}")
}

/// The standard-suite determinism digest: the fold of every suite
/// function's report fingerprint under the canonical experiment session
/// (8×8 file, first-free policy, default configs).
///
/// Both the `solver_kernels` quickbench (which records the digest into
/// `BENCH_solver.json`) and the `tadfa-bench` perf-trend gate (which
/// recomputes it and hard-fails CI on drift) call this one function, so
/// the committed value and the check can never diverge by construction.
///
/// # Panics
///
/// Panics if the standard suite fails to analyze — that is a broken
/// build, not an expected outcome.
pub fn suite_digest() -> u128 {
    let mut session = Session::builder()
        .floorplan(8, 8)
        .policy_name("first-free", 0)
        .build()
        .expect("canonical session is valid");
    let funcs: Vec<Function> = tadfa_workloads::standard_suite()
        .into_iter()
        .map(|w| w.func)
        .collect();
    let mut h = tadfa_thermal::hashing::Fnv128::new();
    h.write_u64(funcs.len() as u64);
    for report in session.analyze_batch(&funcs) {
        let fp = report.expect("standard suite analyzes").fingerprint();
        h.write_u64((fp >> 64) as u64);
        h.write_u64(fp as u64);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tadfa_workloads::fibonacci;

    #[test]
    fn evaluate_policy_produces_consistent_maps() {
        let mut session = default_session();
        let w = fibonacci();
        let eval = evaluate_policy(&mut session, &w, "first-free", 1).unwrap();
        assert_eq!(eval.predicted.len(), 64);
        assert_eq!(eval.measured.len(), 64);
        assert!(eval.measured_stats.peak > 318.0);
        assert!(eval.predicted_stats.peak > 318.0);
        assert!(eval.cycles > 0);
        assert!(eval.dfa.convergence.is_converged());
    }

    #[test]
    fn unknown_policy_is_reported() {
        let mut session = default_session();
        let w = fibonacci();
        let e = evaluate_policy(&mut session, &w, "nonsense", 1);
        assert!(matches!(
            e,
            Err(HarnessError::Tadfa(TadfaError::UnknownPolicy(_)))
        ));
    }

    #[test]
    fn suite_digest_is_reproducible() {
        assert_eq!(suite_digest(), suite_digest());
        assert_ne!(suite_digest(), 0);
    }

    #[test]
    fn policies_differ_in_measured_spread() {
        let mut session = default_session();
        let w = fibonacci();
        let ff = evaluate_policy(&mut session, &w, "first-free", 1).unwrap();
        let cb = evaluate_policy(&mut session, &w, "chessboard", 1).unwrap();
        // Both valid; the exact ordering is asserted in the E1 shape
        // integration test — here we only require both produced heat.
        assert!(ff.measured_stats.peak > 318.0);
        assert!(cb.measured_stats.peak > 318.0);
    }
}
