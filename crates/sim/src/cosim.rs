//! Trace-driven thermal co-simulation: the feedback path the paper wants
//! to replace.
//!
//! "State-of-the-art thermal emulation tools require compiled programs in
//! order to characterize the thermal state of the processor; this limits
//! their usage, in practice, to feedback-driven optimization frameworks"
//! (§1). This module is exactly such a tool — execute, trace, replay the
//! trace through the RC model — and serves as the ground truth the
//! compile-time analysis is scored against (experiment E4).

use crate::trace::AccessTrace;
use serde::{Deserialize, Serialize};
use tadfa_thermal::{PowerModel, RegisterFile, StepScratch, ThermalModel, ThermalState};

/// Configuration of the co-simulation.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct CosimConfig {
    /// Physical seconds per cycle.
    pub seconds_per_cycle: f64,
    /// Thermal acceleration factor (see
    /// [`tadfa_thermal::constants::DEFAULT_TIME_SCALE`]); must match the
    /// analysis configuration for apples-to-apples comparison.
    pub time_scale: f64,
    /// Trace window, in cycles, aggregated into one thermal step.
    pub window: u64,
    /// Record a state sample every this many windows (0 = only final).
    pub sample_every: usize,
    /// Whether to include temperature-dependent leakage.
    pub leakage_feedback: bool,
}

impl Default for CosimConfig {
    fn default() -> CosimConfig {
        CosimConfig {
            seconds_per_cycle: tadfa_thermal::constants::DEFAULT_SECONDS_PER_CYCLE,
            time_scale: tadfa_thermal::constants::DEFAULT_TIME_SCALE,
            window: 16,
            sample_every: 8,
            leakage_feedback: true,
        }
    }
}

/// The thermal history of one traced execution.
#[derive(Clone, Debug)]
pub struct ThermalTimeline {
    /// `(end cycle, state)` samples in chronological order.
    pub samples: Vec<(u64, ThermalState)>,
    /// State after the last trace event.
    pub final_state: ThermalState,
    /// Element-wise maximum over the whole run.
    pub peak_map: ThermalState,
}

impl ThermalTimeline {
    /// The single hottest temperature observed anywhere, any time.
    pub fn peak_temperature(&self) -> f64 {
        self.peak_map.peak()
    }
}

/// Replays `trace` through the RC model of `rf` and returns the thermal
/// timeline.
///
/// Each `window` cycles of trace become one transient step: the window's
/// accesses define the power vector (energy / window duration), applied
/// for the time-scaled window duration.
///
/// # Panics
///
/// Panics if the configuration has non-positive times or a zero window.
pub fn simulate_trace(
    trace: &AccessTrace,
    rf: &RegisterFile,
    model: &ThermalModel,
    power_model: &PowerModel,
    config: &CosimConfig,
) -> ThermalTimeline {
    assert!(
        config.seconds_per_cycle > 0.0,
        "seconds_per_cycle must be positive"
    );
    assert!(config.time_scale > 0.0, "time_scale must be positive");
    assert!(config.window > 0, "window must be positive");
    assert_eq!(
        model.num_cells(),
        rf.floorplan().num_cells(),
        "model and register file disagree on cell count"
    );

    let mut state = model.ambient_state();
    let mut peak_map = state.clone();
    let mut samples = Vec::new();

    let window_natural = config.window as f64 * config.seconds_per_cycle;
    let window_scaled = window_natural * config.time_scale;

    // One compiled plan + scratch for the whole trace: per-window steps
    // are allocation-free and bit-identical to `ThermalModel::step`.
    let solver = model.compile();
    let mut scratch = StepScratch::new();

    for (wi, w) in trace.windows(config.window, rf.num_regs()).enumerate() {
        let mut power = power_model.power_vector(rf, &w.reads, &w.writes, window_natural);
        if config.leakage_feedback {
            power_model.add_leakage(&mut power, &state);
        }
        solver.step_into(&mut state, &power, window_scaled, &mut scratch);
        peak_map.max_with(&state);
        if config.sample_every > 0 && wi % config.sample_every == 0 {
            samples.push((w.end, state.clone()));
        }
    }

    ThermalTimeline {
        final_state: state.clone(),
        peak_map,
        samples,
    }
}

/// Accuracy of a predicted map against a measured one — the E4 metrics.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Root-mean-square temperature error, K.
    pub rms: f64,
    /// Largest absolute per-cell error, K.
    pub linf: f64,
    /// Pearson correlation of the two maps (NaN for constant maps).
    pub pearson: f64,
    /// Error in the peak temperature, K (predicted − measured).
    pub peak_error: f64,
    /// Manhattan distance between the predicted and measured hottest
    /// cells, in cell units.
    pub hotspot_distance: usize,
}

/// Compares a predicted thermal map against a measured one over the same
/// floorplan.
///
/// # Panics
///
/// Panics if the maps have different sizes or do not match the floorplan.
pub fn compare_maps(
    predicted: &ThermalState,
    measured: &ThermalState,
    fp: &tadfa_thermal::Floorplan,
) -> AccuracyReport {
    assert_eq!(predicted.len(), measured.len(), "map size mismatch");
    assert_eq!(
        predicted.len(),
        fp.num_cells(),
        "maps do not match floorplan"
    );
    AccuracyReport {
        rms: predicted.rms_distance(measured),
        linf: predicted.linf_distance(measured),
        pearson: predicted.pearson(measured),
        peak_error: predicted.peak() - measured.peak(),
        hotspot_distance: fp.manhattan(predicted.argmax(), measured.argmax()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{AccessEvent, AccessKind};
    use tadfa_ir::PReg;
    use tadfa_thermal::{Floorplan, RcParams};

    fn setup() -> (RegisterFile, ThermalModel, PowerModel) {
        let fp = Floorplan::grid(4, 4);
        let rf = RegisterFile::new(fp.clone());
        let model = ThermalModel::new(fp, RcParams::default());
        (rf, model, PowerModel::default())
    }

    fn hammer_trace(reg: u16, n: u64) -> AccessTrace {
        let mut t = AccessTrace::new();
        for c in 0..n {
            t.push(AccessEvent {
                cycle: c,
                reg: PReg::new(reg),
                kind: AccessKind::Read,
            });
            t.push(AccessEvent {
                cycle: c,
                reg: PReg::new(reg),
                kind: AccessKind::Write,
            });
        }
        t
    }

    #[test]
    fn hammered_register_heats_up() {
        let (rf, model, pm) = setup();
        let trace = hammer_trace(5, 2000);
        let tl = simulate_trace(&trace, &rf, &model, &pm, &CosimConfig::default());
        assert!(tl.final_state.get(5) > model.ambient() + 0.5);
        assert_eq!(tl.final_state.argmax(), 5);
        assert!(tl.peak_temperature() >= tl.final_state.peak());
        assert!(!tl.samples.is_empty());
    }

    #[test]
    fn empty_trace_stays_ambient() {
        let (rf, model, pm) = setup();
        let tl = simulate_trace(
            &AccessTrace::new(),
            &rf,
            &model,
            &pm,
            &CosimConfig::default(),
        );
        assert!((tl.final_state.peak() - model.ambient()).abs() < 1e-9);
        assert!(tl.samples.is_empty());
    }

    #[test]
    fn two_hammered_registers_both_hot() {
        let (rf, model, pm) = setup();
        let mut t = AccessTrace::new();
        for c in 0..2000 {
            let reg = if c % 2 == 0 { 0 } else { 15 };
            t.push(AccessEvent {
                cycle: c,
                reg: PReg::new(reg),
                kind: AccessKind::Write,
            });
        }
        let tl = simulate_trace(&t, &rf, &model, &pm, &CosimConfig::default());
        let amb = model.ambient();
        assert!(tl.final_state.get(0) > amb + 0.1);
        assert!(tl.final_state.get(15) > amb + 0.1);
        // The untouched middle is cooler than both sources.
        assert!(tl.final_state.get(5) < tl.final_state.get(0));
    }

    #[test]
    fn leakage_feedback_raises_temperatures() {
        let (rf, model, pm) = setup();
        let trace = hammer_trace(5, 2000);
        let with = simulate_trace(&trace, &rf, &model, &pm, &CosimConfig::default());
        let without = simulate_trace(
            &trace,
            &rf,
            &model,
            &pm,
            &CosimConfig {
                leakage_feedback: false,
                ..CosimConfig::default()
            },
        );
        assert!(with.final_state.mean() > without.final_state.mean());
    }

    #[test]
    fn compare_maps_identity_is_perfect() {
        let fp = Floorplan::grid(2, 2);
        let m = ThermalState::from_vec(vec![300.0, 305.0, 310.0, 320.0]);
        let r = compare_maps(&m, &m, &fp);
        assert_eq!(r.rms, 0.0);
        assert_eq!(r.linf, 0.0);
        assert!((r.pearson - 1.0).abs() < 1e-12);
        assert_eq!(r.peak_error, 0.0);
        assert_eq!(r.hotspot_distance, 0);
    }

    #[test]
    fn compare_maps_detects_shift() {
        let fp = Floorplan::grid(2, 2);
        let a = ThermalState::from_vec(vec![320.0, 300.0, 300.0, 300.0]);
        let b = ThermalState::from_vec(vec![300.0, 300.0, 300.0, 320.0]);
        let r = compare_maps(&a, &b, &fp);
        assert_eq!(r.hotspot_distance, 2);
        assert!(r.rms > 0.0);
        assert_eq!(r.peak_error, 0.0);
    }
}
