//! The amortization benchmark the `Session` redesign exists for:
//! per-call hand-wiring (a fresh session — register file, analysis
//! grid, RC model — built for every function) vs. one session reused
//! across a 100-function batch.
//!
//! Grid construction is the dominant fixed cost (the RC model over the
//! analysis points); the reused session pays it once.
//!
//! Run: `cargo bench -p tadfa-bench --bench session_reuse`

use tadfa_bench::quickbench::{fmt_duration, Harness};
use tadfa_core::Session;
use tadfa_ir::Function;
use tadfa_workloads::{generate, GeneratorConfig};

const BATCH: usize = 100;

fn batch() -> Vec<Function> {
    (0..BATCH as u64)
        .map(|seed| {
            generate(&GeneratorConfig {
                seed,
                segments: 3,
                exprs_per_segment: 6,
                pressure: 6,
                loops: 1,
                trip_count: 20,
                memory: false,
                hot_vars: 0,
                hot_weight: 8,
            })
        })
        .collect()
}

fn fresh_session() -> Session {
    Session::builder()
        .floorplan(8, 8)
        .policy_name("first-free", 0)
        .build()
        .expect("bench session is valid")
}

fn main() {
    let funcs = batch();
    let mut h = Harness::new();
    h.sample_size = 10;

    // Per-call hand-wiring: every function rebuilds the register file,
    // RC model and analysis grid — what each caller did before the
    // redesign.
    h.bench_function("per_call_handwiring/100_funcs", || {
        let mut peak = 0.0f64;
        for f in &funcs {
            let mut session = fresh_session();
            let report = session.analyze(f).expect("generated function analyzes");
            peak = peak.max(report.peak_temperature());
        }
        peak
    });

    // Session reuse: shared state built once, batch analyzed against it.
    h.bench_function("session_reuse/100_funcs", || {
        let mut session = fresh_session();
        let mut peak = 0.0f64;
        for r in session.analyze_batch(&funcs) {
            peak = peak.max(r.expect("generated function analyzes").peak_temperature());
        }
        peak
    });

    h.report();

    let per_call = h.mean_of("per_call_handwiring/100_funcs").expect("benched");
    let reuse = h.mean_of("session_reuse/100_funcs").expect("benched");
    let saved = per_call.saturating_sub(reuse);
    println!(
        "\nsession reuse saves {} per {BATCH}-function batch ({:.1}% of the per-call cost)",
        fmt_duration(saved),
        100.0 * saved.as_secs_f64() / per_call.as_secs_f64().max(1e-12),
    );
}
