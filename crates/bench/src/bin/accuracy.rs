//! **E4 — prediction accuracy.** "A compiler may be able to predict,
//! with reasonable accuracy, the thermal state of the processor at every
//! point in the program" (§1).
//!
//! For every suite kernel: the DFA-predicted peak map is scored against
//! the trace-driven co-simulated map (RMS/L∞ error, Pearson correlation,
//! hot-spot localisation).
//!
//! Run: `cargo run -p tadfa-bench --bin accuracy`

use tadfa_bench::{default_session, evaluate_policy, k3, print_table};
use tadfa_sim::compare_maps;
use tadfa_workloads::{generate, standard_suite, GeneratorConfig, Workload};

fn main() {
    let mut session = default_session();
    let fp = session.register_file().floorplan().clone();

    println!("== E4: compile-time prediction vs feedback-driven ground truth ==");
    println!("policy: first-free; metrics on peak maps over the whole run\n");

    let mut rows = Vec::new();
    let mut workloads: Vec<Workload> = standard_suite();
    // Add two irregular generated programs — the hard case the paper
    // expects to predict poorly.
    for seed in [5u64, 17] {
        workloads.push(Workload {
            name: if seed == 5 { "rand-a" } else { "rand-b" },
            description: "irregular generated program",
            func: generate(&GeneratorConfig {
                seed,
                segments: 8,
                loops: 3,
                pressure: 10,
                ..GeneratorConfig::default()
            }),
            args: vec![3, 7],
            expected: None,
            preload: vec![],
        });
    }

    for w in &workloads {
        match evaluate_policy(&mut session, w, "first-free", 42) {
            Ok(eval) => {
                let acc = compare_maps(&eval.predicted, &eval.measured, &fp);
                rows.push(vec![
                    w.name.to_string(),
                    k3(acc.rms),
                    k3(acc.linf),
                    format!("{:.3}", acc.pearson),
                    k3(acc.peak_error),
                    acc.hotspot_distance.to_string(),
                    if eval.dfa.convergence.is_converged() {
                        "yes"
                    } else {
                        "NO"
                    }
                    .to_string(),
                ]);
            }
            Err(e) => rows.push(vec![w.name.to_string(), format!("error: {e}")]),
        }
    }

    print_table(
        &[
            "workload",
            "rms(K)",
            "linf(K)",
            "pearson",
            "peak err(K)",
            "hotspot dist",
            "converged",
        ],
        &rows,
    );

    println!(
        "\nexpected shape: strong positive correlation and hotspot distance 0-2 cells \
         on regular kernels; larger errors on the irregular generated programs \
         (the compile-time estimate averages over paths the execution takes \
         data-dependently)."
    );
}
