//! `tadfa` — the headless scenario runner.
//!
//! Loads a declarative multi-core scenario spec (TOML or JSON, see
//! `tadfa_sched::spec`), runs it through the `Session`/`Engine`/
//! scheduler stack, and emits the deterministic machine-readable JSON
//! report (`tadfa_sched::render_report`). The `check` subcommand is the
//! CI golden-report gate: it re-runs a spec and diffs the scenario
//! fingerprint against a committed expected report.
//!
//! ```text
//! tadfa run <spec> [--out <file>] [--workers N]
//! tadfa check <spec> --expected <report.json> [--workers N]
//! tadfa policies
//! ```
//!
//! Exit codes: `0` success / fingerprints match, `1` fingerprint
//! mismatch, `2` usage or configuration error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tadfa::sched::{
    golden_gate_guard, json, load_spec, render_report, run_scenario, ScenarioConfig,
    ScenarioResult, DTM_POLICY_INFO, MAPPING_POLICY_INFO,
};

const USAGE: &str = "\
tadfa — multi-core thermal scenario runner

USAGE:
    tadfa run <spec.toml|spec.json> [--out <file>] [--workers N]
    tadfa check <spec> --expected <report.json> [--workers N] [--allow-fast]
    tadfa policies
    tadfa help

`run` prints the deterministic JSON report to stdout (or --out FILE).
`check` re-runs the spec and compares the scenario fingerprint against
the expected report — the CI golden gate. Specs requesting the
reassociation-permitting `solver = \"fast\"` are refused by `check`
unless --allow-fast is given (golden fingerprints are exact-mode
contracts). `policies` lists the built-in mapping and DTM policies.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("policies") => {
            println!("Mapping policies:");
            for (name, what) in MAPPING_POLICY_INFO {
                println!("  {name:<17} {what}");
            }
            println!();
            println!("DTM policies:");
            for (name, what) in DTM_POLICY_INFO {
                println!("  {name:<17} {what}");
            }
            ExitCode::SUCCESS
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand '{other}'\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Parsed common flags: the spec path plus optional overrides.
struct CommonArgs {
    spec: PathBuf,
    workers: Option<usize>,
    out: Option<PathBuf>,
    expected: Option<PathBuf>,
    allow_fast: bool,
}

fn parse_args(args: &[String]) -> Result<CommonArgs, String> {
    let mut spec = None;
    let mut workers = None;
    let mut out = None;
    let mut expected = None;
    let mut allow_fast = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                workers = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("--workers needs a positive integer, got '{v}'"))?,
                );
            }
            "--out" => out = Some(PathBuf::from(it.next().ok_or("--out needs a path")?)),
            "--expected" => {
                expected = Some(PathBuf::from(it.next().ok_or("--expected needs a path")?))
            }
            "--allow-fast" => allow_fast = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            path if spec.is_none() => spec = Some(PathBuf::from(path)),
            extra => return Err(format!("unexpected argument '{extra}'")),
        }
    }
    Ok(CommonArgs {
        spec: spec.ok_or("missing <spec> path")?,
        workers,
        out,
        expected,
        allow_fast,
    })
}

/// Loads a spec and applies command-line overrides.
fn load_with_overrides(spec: &Path, workers: Option<usize>) -> Result<ScenarioConfig, String> {
    let mut cfg = load_spec(spec).map_err(|e| e.to_string())?;
    if let Some(w) = workers {
        cfg.workers = w;
    }
    Ok(cfg)
}

fn execute(cfg: &ScenarioConfig) -> Result<ScenarioResult, String> {
    run_scenario(cfg).map_err(|e| format!("scenario '{}' failed: {e}", cfg.name))
}

fn cmd_run(args: &[String]) -> ExitCode {
    let args = match parse_args(args) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.expected.is_some() {
        eprintln!("--expected only applies to `check`\n\n{USAGE}");
        return ExitCode::from(2);
    }
    let result = match load_with_overrides(&args.spec, args.workers).and_then(|cfg| execute(&cfg)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let report = render_report(&result);
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &report) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            eprintln!("wrote {}", path.display());
        }
        None => print!("{report}"),
    }
    ExitCode::SUCCESS
}

fn cmd_check(args: &[String]) -> ExitCode {
    let args = match parse_args(args) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.out.is_some() {
        eprintln!("--out only applies to `run`\n\n{USAGE}");
        return ExitCode::from(2);
    }
    let Some(expected_path) = &args.expected else {
        eprintln!("check needs --expected <report.json>\n\n{USAGE}");
        return ExitCode::from(2);
    };
    let expected_text = match std::fs::read_to_string(expected_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", expected_path.display());
            return ExitCode::from(2);
        }
    };
    let expected_fp = match json::parse(&expected_text)
        .map_err(|e| e.to_string())
        .and_then(|doc| {
            doc.get("fingerprint")
                .and_then(|v| v.as_str().map(str::to_string))
                .ok_or_else(|| "expected report has no \"fingerprint\" field".to_string())
        }) {
        Ok(fp) => fp,
        Err(e) => {
            eprintln!("{}: {e}", expected_path.display());
            return ExitCode::from(2);
        }
    };

    let cfg = match load_with_overrides(&args.spec, args.workers) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = golden_gate_guard(&cfg, args.allow_fast) {
        eprintln!("{e}");
        return ExitCode::from(2);
    }
    let result = match execute(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let report = render_report(&result);
    let actual_fp = tadfa::sched::hex_fingerprint(result.fingerprint());
    if actual_fp != expected_fp {
        eprintln!(
            "FINGERPRINT DRIFT for {}:\n  expected {expected_fp}  ({})\n  actual   {actual_fp}",
            args.spec.display(),
            expected_path.display(),
        );
        eprintln!(
            "If the change is intentional, refresh the golden report:\n  \
             tadfa run {} --out {}",
            args.spec.display(),
            expected_path.display()
        );
        return ExitCode::from(1);
    }
    let bytes_match = report == expected_text;
    println!(
        "OK {}: fingerprint {actual_fp} matches{}",
        args.spec.display(),
        if bytes_match {
            " (report byte-identical)"
        } else {
            " (report text differs — schema change without fingerprint impact)"
        }
    );
    ExitCode::SUCCESS
}
