//! Benches for the thermal DFA — the E5 cost curve (analysis time vs
//! granularity) plus the classic analyses for scale reference.
//!
//! Offline harness (`tadfa_bench::quickbench`) in place of criterion —
//! see that module's docs.
//!
//! Run: `cargo bench -p tadfa-bench --bench analysis`

use tadfa_bench::quickbench::Harness;
use tadfa_core::Session;
use tadfa_dataflow::{Bitwidth, Liveness};
use tadfa_ir::Cfg;
use tadfa_regalloc::{allocate_linear_scan, policy_by_name, RegAllocConfig};
use tadfa_thermal::{Floorplan, RegisterFile};
use tadfa_workloads::{fibonacci, matmul};

fn bench_dfa_granularity(h: &mut Harness) {
    let func = fibonacci().func;
    for (gr, gc) in [(1usize, 1usize), (2, 2), (4, 4), (8, 8)] {
        let mut session = Session::builder()
            .floorplan(8, 8)
            .granularity(gr, gc)
            .build()
            .expect("bench granularities are valid");
        h.bench_function(&format!("thermal_dfa_granularity/{gr}x{gc}"), || {
            session
                .analyze(&func)
                .expect("fib analyzes")
                .peak_temperature()
        });
    }
}

fn bench_classic_analyses(h: &mut Harness) {
    let func = matmul(5).func;
    let cfg = Cfg::compute(&func);

    h.bench_function("liveness_matmul", || {
        Liveness::compute(&func, &cfg).num_vregs()
    });
    h.bench_function("bitwidth_matmul", || Bitwidth::compute(&func, &cfg).passes);
}

fn bench_allocation_policies(h: &mut Harness) {
    // Times allocation alone (not the DFA), so policy-level regressions
    // stay visible; each sample clones the function and the allocator
    // resets the policy, so samples measure identical work.
    let rf = RegisterFile::new(Floorplan::grid(8, 8));
    for name in ["first-free", "chessboard", "round-robin"] {
        let func = matmul(4).func;
        let mut policy = policy_by_name(name, &rf, 1).expect("known policy");
        h.bench_function(&format!("allocation/{name}"), || {
            let mut f = func.clone();
            allocate_linear_scan(&mut f, &rf, policy.as_mut(), &RegAllocConfig::default())
                .expect("matmul allocates")
                .stats
                .rounds
        });
    }
}

fn main() {
    let mut h = Harness::new();
    bench_dfa_granularity(&mut h);
    bench_classic_analyses(&mut h);
    bench_allocation_policies(&mut h);
    h.report();
}
