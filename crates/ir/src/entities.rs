//! Index newtypes for the entities of a [`Function`](crate::Function).
//!
//! Every IR entity is referred to by a small, `Copy` index newtype rather
//! than by reference, which keeps the IR freely mutable while analyses hold
//! onto entity handles. All newtypes implement the common ordering/hashing
//! traits so they can key maps and be stored in sorted containers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A virtual register: the unbounded value namespace used before register
/// allocation.
///
/// Virtual registers are function-local and dense: a function with `n`
/// virtual registers uses indices `0..n`, so analyses can use `Vec`-indexed
/// side tables instead of hash maps.
///
/// # Examples
///
/// ```
/// use tadfa_ir::VReg;
/// let v = VReg::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.to_string(), "%3");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct VReg(u32);

impl VReg {
    /// Creates a virtual register with the given dense index.
    pub fn new(index: u32) -> Self {
        VReg(index)
    }

    /// Returns the dense index of this virtual register.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` backing this register.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A physical register: an architectural register of the target register
/// file, produced by register allocation.
///
/// Physical registers map one-to-one onto cells of the register-file
/// floorplan (see `tadfa-thermal`), which is what makes register assignment
/// a thermal decision.
///
/// # Examples
///
/// ```
/// use tadfa_ir::PReg;
/// assert_eq!(PReg::new(7).to_string(), "r7");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct PReg(u16);

impl PReg {
    /// Creates a physical register with the given index.
    pub fn new(index: u16) -> Self {
        PReg(index)
    }

    /// Returns the dense index of this physical register.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u16` backing this register.
    pub fn as_u16(self) -> u16 {
        self.0
    }
}

impl fmt::Display for PReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A basic block label.
///
/// # Examples
///
/// ```
/// use tadfa_ir::BlockId;
/// assert_eq!(BlockId::new(2).to_string(), "block2");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a block id with the given dense index.
    pub fn new(index: u32) -> Self {
        BlockId(index)
    }

    /// Returns the dense index of this block.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block{}", self.0)
    }
}

/// A handle to an instruction in a function's instruction arena.
///
/// Instruction ids are stable across block-list edits (inserting or removing
/// an instruction from a block never invalidates other ids), which lets
/// analyses keyed by `InstId` survive rewriting passes.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct InstId(u32);

impl InstId {
    /// Creates an instruction id with the given arena index.
    pub fn new(index: u32) -> Self {
        InstId(index)
    }

    /// Returns the arena index of this instruction.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inst{}", self.0)
    }
}

/// A symbolic memory slot: a named, statically sized array of 64-bit words.
///
/// Slots are disjoint by construction — two distinct slots never alias —
/// which makes register promotion (`tadfa-opt`) decidable without a pointer
/// analysis. Spill code also targets slots.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct MemSlot(u32);

impl MemSlot {
    /// Creates a slot handle with the given dense index.
    pub fn new(index: u32) -> Self {
        MemSlot(index)
    }

    /// Returns the dense index of this slot.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MemSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn vreg_roundtrip() {
        let v = VReg::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.as_u32(), 42);
        assert_eq!(format!("{v}"), "%42");
    }

    #[test]
    fn preg_roundtrip() {
        let r = PReg::new(9);
        assert_eq!(r.index(), 9);
        assert_eq!(r.as_u16(), 9);
        assert_eq!(format!("{r}"), "r9");
    }

    #[test]
    fn block_and_inst_display() {
        assert_eq!(BlockId::new(0).to_string(), "block0");
        assert_eq!(InstId::new(17).to_string(), "inst17");
        assert_eq!(MemSlot::new(3).to_string(), "slot3");
    }

    #[test]
    fn entities_are_ordered_and_hashable() {
        let set: BTreeSet<VReg> = [VReg::new(2), VReg::new(0), VReg::new(1)]
            .into_iter()
            .collect();
        let ordered: Vec<usize> = set.into_iter().map(VReg::index).collect();
        assert_eq!(ordered, vec![0, 1, 2]);
    }

    #[test]
    fn debug_representation_is_nonempty() {
        // C-DEBUG-NONEMPTY: every entity has a useful Debug form.
        assert_eq!(format!("{:?}", VReg::new(5)), "VReg(5)");
        assert_eq!(format!("{:?}", PReg::new(5)), "PReg(5)");
        assert_eq!(format!("{:?}", BlockId::new(5)), "BlockId(5)");
    }
}
