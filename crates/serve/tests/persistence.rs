//! Crash-restart and fault-injection tests for the persistent
//! solve-cache tier:
//!
//! * **crash restart** — populate the cache through a real
//!   `tadfa-serve` process, kill it hard (no clean shutdown), restart
//!   on the same `--cache-dir`, and prove the second start preloads
//!   the persisted entries, serves out of them (hits, zero misses),
//!   and answers byte-identically to the first process;
//! * **fault injection** — a zero-length segment, a flipped checksum
//!   byte, and a truncated segment each load cleanly: bad records are
//!   skipped and counted in the stats `persist` block, never trusted,
//!   and never panic the server.
//!
//! Every test drives the actual release binary over its pipe-mode
//! protocol — the same artifact and path CI's restart-warm-cache
//! smoke step exercises.

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use tadfa_serve::protocol::{parse_response, ParsedResponse};

/// A scratch directory removed on drop (best-effort).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("tadfa-persistence-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir creatable");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A minimal scenario directory holding only the self-contained
/// `solo_baseline` spec and its golden — keeps the repeated server
/// restarts in these tests fast.
fn mini_scenarios(root: &Path) -> PathBuf {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
    let dir = root.join("scenarios");
    std::fs::create_dir_all(dir.join("golden")).expect("scenario dir creatable");
    std::fs::copy(
        repo.join("solo_baseline.toml"),
        dir.join("solo_baseline.toml"),
    )
    .expect("spec copies");
    std::fs::copy(
        repo.join("golden/solo_baseline.json"),
        dir.join("golden/solo_baseline.json"),
    )
    .expect("golden copies");
    dir
}

/// The committed golden fingerprint for `solo_baseline`.
fn golden_fingerprint(scenarios: &Path) -> String {
    let text = std::fs::read_to_string(scenarios.join("golden/solo_baseline.json"))
        .expect("golden readable");
    tadfa_sched::json::parse(&text)
        .expect("golden parses")
        .get("fingerprint")
        .and_then(|v| v.as_str().map(str::to_string))
        .expect("golden has a fingerprint")
}

/// A real `tadfa-serve` child process spoken to over pipe mode.
struct PipeServer {
    child: Child,
    stdin: ChildStdin,
    reader: BufReader<ChildStdout>,
}

impl PipeServer {
    fn start(scenarios: &Path, extra: &[&str]) -> PipeServer {
        let mut child = Command::new(env!("CARGO_BIN_EXE_tadfa-serve"))
            .arg("--scenarios")
            .arg(scenarios)
            .arg("--pipe")
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("tadfa-serve spawns");
        let stdin = child.stdin.take().expect("piped stdin");
        let reader = BufReader::new(child.stdout.take().expect("piped stdout"));
        PipeServer {
            child,
            stdin,
            reader,
        }
    }

    /// Sends one request line and returns the raw response line.
    fn call_raw(&mut self, line: &str) -> String {
        writeln!(self.stdin, "{line}").expect("request writes");
        self.stdin.flush().expect("request flushes");
        loop {
            let mut resp = String::new();
            let n = self.reader.read_line(&mut resp).expect("response reads");
            assert!(n > 0, "server closed the pipe before responding");
            let resp = resp.trim_end_matches('\n').to_string();
            if !resp.trim().is_empty() {
                return resp;
            }
        }
    }

    fn call(&mut self, line: &str) -> ParsedResponse {
        let raw = self.call_raw(line);
        parse_response(&raw).unwrap_or_else(|e| panic!("unparseable response ({e}): {raw}"))
    }

    /// SIGKILL — the crash model. No shutdown request, no clean exit.
    fn kill(mut self) {
        self.child.kill().expect("kill succeeds");
        let _ = self.child.wait();
    }

    /// Clean shutdown through the protocol.
    fn shutdown(mut self) {
        let resp = self.call(r#"{"id": 9999, "op": "shutdown"}"#);
        assert!(resp.ok, "shutdown acknowledged");
        drop(self.stdin);
        let _ = self.child.wait();
    }
}

/// Sums one per-scenario `cache` counter out of a stats response.
fn cache_total(stats: &ParsedResponse, field: &str) -> f64 {
    stats
        .doc
        .get("scenarios")
        .and_then(|v| v.as_array())
        .expect("stats lists scenarios")
        .iter()
        .filter_map(|s| {
            s.get("cache")
                .and_then(|c| c.get(field))
                .and_then(|v| v.as_f64())
        })
        .sum()
}

/// The `persist` block totals `(loaded, skipped)` out of a stats
/// response.
fn persist_totals(stats: &ParsedResponse) -> (f64, f64) {
    let mut loaded = 0.0;
    let mut skipped = 0.0;
    for s in stats
        .doc
        .get("scenarios")
        .and_then(|v| v.as_array())
        .expect("stats lists scenarios")
    {
        let Some(p) = s.get("persist") else { continue };
        loaded += p.get("loaded").and_then(|v| v.as_f64()).unwrap_or(0.0);
        skipped += p.get("skipped").and_then(|v| v.as_f64()).unwrap_or(0.0);
    }
    (loaded, skipped)
}

const RUN: &str = r#"{"id": 41, "op": "run-scenario", "scenario": "solo_baseline"}"#;
const STATS: &str = r#"{"id": 42, "op": "stats"}"#;

/// Populates a cache directory through one server lifetime and
/// returns it alongside the scenario dir.
fn populated_cache(tmp: &TempDir) -> (PathBuf, PathBuf) {
    let scenarios = mini_scenarios(tmp.path());
    let cache = tmp.path().join("cache");
    let mut srv = PipeServer::start(&scenarios, &["--cache-dir", cache.to_str().unwrap()]);
    let resp = srv.call(RUN);
    assert!(resp.ok, "populate run succeeds");
    srv.shutdown();
    (scenarios, cache)
}

/// The segment files of the `solo_baseline` cache slice, sorted.
fn segments(cache: &Path) -> Vec<PathBuf> {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(cache.join("solo_baseline"))
        .expect("scenario cache dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "tadc"))
        .collect();
    segs.sort();
    assert!(!segs.is_empty(), "cache dir holds segment files");
    segs
}

/// The segment actually holding records (the largest one).
fn data_segment(cache: &Path) -> PathBuf {
    segments(cache)
        .into_iter()
        .max_by_key(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
        .expect("nonempty segment list")
}

/// Restarts a server on `cache`, checks it still serves the golden
/// answer, and returns the `(loaded, skipped)` persistence totals.
fn restart_and_verify(scenarios: &Path, cache: &Path) -> (f64, f64) {
    let mut srv = PipeServer::start(scenarios, &["--cache-dir", cache.to_str().unwrap()]);
    let stats = srv.call(STATS);
    let totals = persist_totals(&stats);
    let resp = srv.call(RUN);
    assert!(resp.ok, "restart still serves: {resp:?}");
    assert_eq!(
        resp.fingerprint.as_deref().expect("fingerprint present"),
        golden_fingerprint(scenarios),
        "response after restart is still the committed golden"
    );
    srv.shutdown();
    totals
}

#[test]
fn cache_survives_a_hard_kill_and_the_restart_serves_byte_identically() {
    let tmp = TempDir::new("crash-restart");
    let scenarios = mini_scenarios(tmp.path());
    let cache = tmp.path().join("cache");

    // First life: cold run, entries spilled to disk per-request — then
    // SIGKILL. No clean shutdown path gets to run.
    let mut srv = PipeServer::start(&scenarios, &["--cache-dir", cache.to_str().unwrap()]);
    let first = srv.call_raw(RUN);
    let first_resp = parse_response(&first).expect("first response parses");
    assert!(first_resp.ok, "cold run succeeds: {first}");
    let stats = srv.call(STATS);
    let stored = cache_total(&stats, "entries");
    assert!(stored > 0.0, "the run populated the cache");
    srv.kill();

    // The segment files survived the kill with real data in them
    // (every segment starts with an 8-byte magic; records follow).
    let on_disk: u64 = segments(&cache)
        .iter()
        .map(|p| std::fs::metadata(p).expect("segment stat").len())
        .sum();
    assert!(
        on_disk > 8 * segments(&cache).len() as u64,
        "segments hold records beyond their headers ({on_disk} bytes)"
    );

    // Second life: the cache tier must come back warm...
    let mut srv = PipeServer::start(&scenarios, &["--cache-dir", cache.to_str().unwrap()]);
    let stats = srv.call(STATS);
    let preloaded = cache_total(&stats, "preloaded");
    let (loaded, skipped) = persist_totals(&stats);
    assert!(preloaded > 0.0, "restart preloaded persisted entries");
    assert_eq!(preloaded, stored, "every stored entry came back");
    assert_eq!((loaded, skipped), (preloaded, 0.0), "clean segment load");

    // ...answer the same request byte-for-byte identically...
    let second = srv.call_raw(RUN);
    assert_eq!(first, second, "restarted response is byte-identical");

    // ...and have served it out of the warm cache: hits only, not a
    // single recomputation.
    let stats = srv.call(STATS);
    assert!(cache_total(&stats, "hits") > 0.0, "preloaded entries hit");
    assert_eq!(cache_total(&stats, "misses"), 0.0, "nothing recomputed");
    srv.shutdown();
}

#[test]
fn zero_length_segment_loads_cleanly() {
    let tmp = TempDir::new("zero-seg");
    let (scenarios, cache) = populated_cache(&tmp);
    let (pristine_loaded, _) = restart_and_verify(&scenarios, &cache);
    assert!(pristine_loaded > 0.0);

    // An empty segment file — e.g. a crash between create and the
    // magic write — is a clean no-op, not an error.
    std::fs::write(cache.join("solo_baseline/seg-0999.tadc"), b"").expect("empty segment");
    let (loaded, skipped) = restart_and_verify(&scenarios, &cache);
    assert_eq!(loaded, pristine_loaded, "every real record still loads");
    assert_eq!(skipped, 0.0, "an empty file skips nothing");
}

#[test]
fn flipped_checksum_byte_skips_only_that_record() {
    let tmp = TempDir::new("bad-checksum");
    let (scenarios, cache) = populated_cache(&tmp);
    let (pristine_loaded, _) = restart_and_verify(&scenarios, &cache);

    // Flip one byte inside the first record's checksum field (layout:
    // 8-byte magic, then per record [u32 len | u64 checksum | payload]).
    let seg = data_segment(&cache);
    let mut bytes = std::fs::read(&seg).expect("segment readable");
    assert!(bytes.len() > 20, "segment holds at least one record");
    bytes[12] ^= 0xff;
    std::fs::write(&seg, bytes).expect("segment writable");

    // The framing is intact, so exactly that record is skipped; the
    // rest load, the server starts, and the answer is recomputed where
    // needed — still golden, never trusted from a bad checksum.
    let (loaded, skipped) = restart_and_verify(&scenarios, &cache);
    assert_eq!(skipped, 1.0, "exactly the corrupted record is skipped");
    assert_eq!(loaded, pristine_loaded - 1.0, "the rest still load");
}

/// Duplicates the data segment under a higher segment number — the
/// duplicate-key shape compaction exists to clean up (same entries
/// appended across process lifetimes). Returns the record count of the
/// duplicated segment's source.
fn duplicate_data_segment(cache: &Path) {
    let seg = data_segment(cache);
    std::fs::copy(&seg, cache.join("solo_baseline/seg-0900.tadc")).expect("segment duplicates");
}

#[test]
fn compact_cache_collapses_duplicates_to_one_segment_and_stays_golden() {
    let tmp = TempDir::new("compact");
    let (scenarios, cache) = populated_cache(&tmp);
    let (pristine_loaded, _) = restart_and_verify(&scenarios, &cache);
    duplicate_data_segment(&cache);

    // The CLI entry point CI and the fleet supervisor use.
    let status = Command::new(env!("CARGO_BIN_EXE_tadfa-serve"))
        .arg("--compact-cache")
        .arg("--cache-dir")
        .arg(&cache)
        .status()
        .expect("compactor runs");
    assert!(status.success(), "compaction exits 0");

    assert_eq!(
        segments(&cache).len(),
        1,
        "compaction leaves exactly one segment"
    );
    let (loaded, skipped) = restart_and_verify(&scenarios, &cache);
    assert_eq!(loaded, pristine_loaded, "every unique record survived");
    assert_eq!(skipped, 0.0, "the compacted segment is pristine");
}

#[test]
fn crash_mid_compaction_never_loses_precompaction_data() {
    let tmp = TempDir::new("compact-crash");
    let (scenarios, cache) = populated_cache(&tmp);
    let dir = cache.join("solo_baseline");

    // Baseline: how many entries a clean restart preloads.
    let mut srv = PipeServer::start(&scenarios, &["--cache-dir", cache.to_str().unwrap()]);
    let pristine_preloaded = cache_total(&srv.call(STATS), "preloaded");
    assert!(pristine_preloaded > 0.0);
    srv.shutdown();
    duplicate_data_segment(&cache);

    // Crash shape 1 — before the rename: the compactor dies leaving
    // only its temp file. A `.tmp` is invisible to the loader, so the
    // next start sees exactly the pre-compaction data.
    std::fs::write(dir.join("seg-0901.tmp"), b"half-written garbage").expect("stray tmp");
    let mut srv = PipeServer::start(&scenarios, &["--cache-dir", cache.to_str().unwrap()]);
    let stats = srv.call(STATS);
    assert_eq!(
        cache_total(&stats, "preloaded"),
        pristine_preloaded,
        "stray tmp changes nothing: duplicates collapse first-wins at preload"
    );
    let resp = srv.call(RUN);
    assert_eq!(
        resp.fingerprint.as_deref().expect("fingerprint present"),
        golden_fingerprint(&scenarios),
        "still golden with a torn compaction on disk"
    );
    srv.kill();
    std::fs::remove_file(dir.join("seg-0901.tmp")).expect("stray tmp removable");

    // Crash shape 2 — between the phases: the compacted segment is
    // durable but the old segments were never deleted. Everything
    // coexists; preload is first-wins over identical values, so the
    // entry count and the answers are unchanged.
    let plan = tadfa_serve::persist::compact_write(&dir).expect("compaction write phase");
    assert!(plan.new_segment.is_some(), "there was data to compact");
    assert!(plan.report.duplicates > 0, "the duplicate segment was seen");
    let mut srv = PipeServer::start(&scenarios, &["--cache-dir", cache.to_str().unwrap()]);
    let stats = srv.call(STATS);
    assert_eq!(
        cache_total(&stats, "preloaded"),
        pristine_preloaded,
        "old + compacted segments coexisting lose nothing"
    );
    let resp = srv.call(RUN);
    assert_eq!(
        resp.fingerprint.as_deref().expect("fingerprint present"),
        golden_fingerprint(&scenarios),
        "still golden between the compaction phases"
    );
    srv.kill();

    // Rerunning compaction after the crash converges: one segment,
    // same entries, same bytes.
    tadfa_serve::persist::compact_dir(&dir).expect("compaction converges");
    assert_eq!(segments(&cache).len(), 1, "converged to one segment");
    let mut srv = PipeServer::start(&scenarios, &["--cache-dir", cache.to_str().unwrap()]);
    let stats = srv.call(STATS);
    assert_eq!(cache_total(&stats, "preloaded"), pristine_preloaded);
    let resp = srv.call(RUN);
    assert_eq!(
        resp.fingerprint.as_deref().expect("fingerprint present"),
        golden_fingerprint(&scenarios)
    );
    srv.shutdown();
}

#[test]
fn truncated_segment_abandons_the_tail_without_panicking() {
    let tmp = TempDir::new("truncated");
    let (scenarios, cache) = populated_cache(&tmp);
    let (pristine_loaded, _) = restart_and_verify(&scenarios, &cache);

    // Chop the last 3 bytes — a torn final record, the classic
    // crash-mid-append shape.
    let seg = data_segment(&cache);
    let len = std::fs::metadata(&seg).expect("segment stat").len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&seg)
        .expect("segment opens");
    file.set_len(len - 3).expect("segment truncates");
    drop(file);

    // The torn record is skipped (and nothing after it trusted); the
    // server still starts and still serves the golden answer.
    let (loaded, skipped) = restart_and_verify(&scenarios, &cache);
    assert!(skipped >= 1.0, "the torn tail is counted as skipped");
    assert!(
        loaded >= pristine_loaded - skipped && loaded < pristine_loaded,
        "only the tail is lost (loaded {loaded} of {pristine_loaded})"
    );
}
