//! Quickstart: configure a `Session` once, analyze a kernel, and print
//! the predicted heat map.
//!
//! Run: `cargo run --example quickstart`

use tadfa::prelude::*;

fn main() -> Result<(), TadfaError> {
    // A small kernel: iterative Fibonacci, two registers hammered in a
    // tight loop — the canonical hot-spot producer.
    let workload = tadfa::workloads::fibonacci();
    println!("kernel '{}': {}\n", workload.name, workload.description);

    // One façade owns everything: an 8×8 register file, the
    // compiler-default ordered first-free policy ("the same small set of
    // registers is chosen again and again", §2 of the paper), the
    // analysis grid, and the paper's default δ. Validation happens here,
    // once; every problem is a `TadfaError`, never a panic.
    let mut session = Session::builder()
        .floorplan(8, 8)
        .policy_name("first-free", 0)
        .build()?;

    // Run the paper's analysis (Fig. 2): allocate, then iterate the
    // thermal dataflow fixpoint until no instruction's state changes by
    // more than δ.
    let report = session.analyze(&workload.func)?;
    println!(
        "allocated {} virtual registers onto {} physical (spills: {})",
        report.func.num_vregs(),
        report.assignment.distinct_pregs_used(),
        report.alloc_stats.spilled
    );

    match report.convergence() {
        Convergence::Converged { iterations } => println!(
            "thermal DFA converged in {iterations} iterations (δ = {} K)",
            session.dfa_config().delta
        ),
        Convergence::DidNotConverge {
            iterations,
            residual,
        } => println!(
            "thermal DFA did NOT converge after {iterations} iterations (residual {residual:.4} K)"
        ),
    }

    println!(
        "\npredicted peak temperature: {:.2} K ({:.2} K above ambient)",
        report.peak_temperature(),
        report.peak_temperature() - report.ambient()
    );
    println!("predicted worst-case heat map (auto-scaled):\n");
    print!(
        "{}",
        render_ascii_auto(&report.predicted, session.register_file().floorplan())
    );

    // Which variables are responsible? The critical set rides the report.
    println!("\nhottest variables (heat exposure, J·K):");
    for (v, e) in report.critical.ranked().iter().take(5) {
        let mark = if report.critical.is_critical(*v) {
            " [CRITICAL]"
        } else {
            ""
        };
        println!("  {v}: {e:.3e}{mark}");
    }
    Ok(())
}
