//! Task→core mapping policies, pluggable like
//! `tadfa_regalloc::policy`.
//!
//! A [`MappingPolicy`] decides, task by task in arrival order, which
//! core runs which task; `thermal-balanced` additionally gets a
//! post-pass rebalance hook whose moves are counted as **migrations**.
//! All policies are deterministic functions of the task metrics and the
//! running per-core aggregates — never of wall time or engine execution
//! order — which is what keeps scenario reports byte-identical across
//! worker counts.

use crate::task::TaskMetrics;
use tadfa_workloads::shard;

/// Everything a policy may consult when placing one task.
#[derive(Debug)]
pub struct MappingContext<'a> {
    /// Number of cores on the die.
    pub cores: usize,
    /// Index of this task in arrival order.
    pub task_index: usize,
    /// The task's analysis-derived metrics.
    pub metrics: &'a TaskMetrics,
    /// Joules already mapped onto each core.
    pub core_energy: &'a [f64],
    /// When each core finishes its currently mapped tasks, seconds.
    pub core_busy_until: &'a [f64],
    /// Hottest single-task peak mapped onto each core so far, K
    /// (ambient for an idle core).
    pub core_peak_estimate: &'a [f64],
}

/// A task→core mapping policy.
///
/// Contract (mirrors `AssignmentPolicy`): [`reset`](MappingPolicy::reset)
/// restores the initial state, so the same policy object replayed over
/// the same task stream always produces the same mapping.
pub trait MappingPolicy: std::fmt::Debug {
    /// The policy's registry name.
    fn name(&self) -> &'static str;

    /// One-line human description, printed by `tadfa policies`.
    fn description(&self) -> &'static str;

    /// Restores the initial state for a die of `cores` cores and a
    /// scenario of `task_count` tasks.
    fn reset(&mut self, cores: usize, task_count: usize);

    /// Picks the core for one task. Out-of-range returns are clamped by
    /// the scheduler.
    fn choose(&mut self, ctx: &MappingContext<'_>) -> usize;

    /// Optional post-pass over the finished `assignment` (task index →
    /// core); returns how many tasks it moved (the scenario's migration
    /// count). The default moves nothing.
    fn rebalance(
        &mut self,
        assignment: &mut [usize],
        metrics: &[TaskMetrics],
        cores: usize,
    ) -> usize {
        let _ = (assignment, metrics, cores);
        0
    }
}

/// Cores in rotation, ignoring thermals — the baseline policy.
#[derive(Debug, Default)]
pub struct RoundRobinMapping {
    next: usize,
}

impl MappingPolicy for RoundRobinMapping {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn description(&self) -> &'static str {
        "cores in rotation, ignoring thermals (the baseline)"
    }

    fn reset(&mut self, _cores: usize, _task_count: usize) {
        self.next = 0;
    }

    fn choose(&mut self, ctx: &MappingContext<'_>) -> usize {
        let core = self.next % ctx.cores.max(1);
        self.next = self.next.wrapping_add(1);
        core
    }
}

/// Each task goes to the core with the lowest peak-temperature
/// estimate (ties: lower mapped energy, then lower index) — the greedy
/// thermal analogue of "least loaded".
#[derive(Debug, Default)]
pub struct CoolestCoreFirst;

impl MappingPolicy for CoolestCoreFirst {
    fn name(&self) -> &'static str {
        "coolest-core"
    }

    fn description(&self) -> &'static str {
        "greedy: each task to the core with the lowest peak estimate"
    }

    fn reset(&mut self, _cores: usize, _task_count: usize) {}

    fn choose(&mut self, ctx: &MappingContext<'_>) -> usize {
        let mut best = 0;
        for core in 1..ctx.cores {
            let (bp, be) = (ctx.core_peak_estimate[best], ctx.core_energy[best]);
            let (cp, ce) = (ctx.core_peak_estimate[core], ctx.core_energy[core]);
            if cp < bp || (cp == bp && ce < be) {
                best = core;
            }
        }
        best
    }
}

/// Greedy energy balancing with a rebalance pass: tasks go to the
/// least-loaded core, then tasks migrate off the most-loaded core while
/// a move strictly lowers it. Every move counts as one migration.
#[derive(Debug, Default)]
pub struct ThermalBalanced;

impl MappingPolicy for ThermalBalanced {
    fn name(&self) -> &'static str {
        "thermal-balanced"
    }

    fn description(&self) -> &'static str {
        "least-loaded by energy, with a migration-counted rebalance pass"
    }

    fn reset(&mut self, _cores: usize, _task_count: usize) {}

    fn choose(&mut self, ctx: &MappingContext<'_>) -> usize {
        let mut best = 0;
        for core in 1..ctx.cores {
            if ctx.core_energy[core] < ctx.core_energy[best] {
                best = core;
            }
        }
        best
    }

    fn rebalance(
        &mut self,
        assignment: &mut [usize],
        metrics: &[TaskMetrics],
        cores: usize,
    ) -> usize {
        if cores < 2 {
            return 0;
        }
        let mut migrations = 0;
        // Each move strictly lowers the hottest core's energy; cap the
        // pass at one move per task as a hard termination bound.
        for _ in 0..assignment.len() {
            let mut energy = vec![0.0f64; cores];
            for (task, &core) in assignment.iter().enumerate() {
                energy[core] += metrics[task].energy;
            }
            let hot = argmax(&energy);
            let cool = argmin(&energy);
            if hot == cool {
                break;
            }
            // The smallest-energy task on the hot core, by task index
            // for determinism.
            let candidate = assignment
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c == hot)
                .min_by(|&(i, _), &(j, _)| {
                    metrics[i]
                        .energy
                        .partial_cmp(&metrics[j].energy)
                        .expect("finite energies")
                        .then(i.cmp(&j))
                })
                .map(|(i, _)| i);
            let Some(task) = candidate else { break };
            let e = metrics[task].energy;
            // Move only if the destination stays strictly below the
            // source's current load — otherwise the pass has converged.
            if energy[cool] + e < energy[hot] {
                assignment[task] = cool;
                migrations += 1;
            } else {
                break;
            }
        }
        migrations
    }
}

/// Contiguous block partitioning: the task stream is split across the
/// cores with [`tadfa_workloads::shard`], so core `k` runs the `k`-th
/// contiguous run of arrivals. Degenerate inputs (more cores than
/// tasks, zero tasks) follow `shard`'s total contract — the tail cores
/// simply receive nothing.
#[derive(Debug, Default)]
pub struct StaticShard {
    core_of: Vec<usize>,
}

impl MappingPolicy for StaticShard {
    fn name(&self) -> &'static str {
        "static-shard"
    }

    fn description(&self) -> &'static str {
        "contiguous block partitioning of the arrival stream"
    }

    fn reset(&mut self, cores: usize, task_count: usize) {
        self.core_of.clear();
        let indices: Vec<usize> = (0..task_count).collect();
        for (core, chunk) in shard(indices, cores).into_iter().enumerate() {
            for task in chunk {
                debug_assert_eq!(task, self.core_of.len());
                self.core_of.push(core);
            }
        }
    }

    fn choose(&mut self, ctx: &MappingContext<'_>) -> usize {
        self.core_of.get(ctx.task_index).copied().unwrap_or(0)
    }
}

/// Everything onto core 0 — the serializing policy. Sounds useless
/// until you need it: it is the covert-channel *sender pinning*
/// (modulate one core, listen on its neighbour) and the single-core
/// baseline any multi-core speedup or DTM study compares against.
#[derive(Debug, Default)]
pub struct SingleCore;

impl MappingPolicy for SingleCore {
    fn name(&self) -> &'static str {
        "single-core"
    }

    fn description(&self) -> &'static str {
        "everything onto core 0 (covert-channel sender pinning, baselines)"
    }

    fn reset(&mut self, _cores: usize, _task_count: usize) {}

    fn choose(&mut self, _ctx: &MappingContext<'_>) -> usize {
        0
    }
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

fn argmin(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x < xs[best] {
            best = i;
        }
    }
    best
}

/// Instantiates a built-in mapping policy by name.
pub fn mapping_policy_by_name(name: &str) -> Option<Box<dyn MappingPolicy>> {
    Some(match name {
        "round-robin" => Box::new(RoundRobinMapping::default()),
        "coolest-core" => Box::new(CoolestCoreFirst),
        "thermal-balanced" => Box::new(ThermalBalanced),
        "static-shard" => Box::new(StaticShard::default()),
        "single-core" => Box::new(SingleCore),
        _ => return None,
    })
}

/// The names accepted by [`mapping_policy_by_name`], in canonical
/// order.
pub const MAPPING_POLICY_NAMES: [&str; 5] = [
    "round-robin",
    "coolest-core",
    "thermal-balanced",
    "static-shard",
    "single-core",
];

/// Name and one-line description of every built-in mapping policy —
/// what `tadfa policies` prints. Kept in [`MAPPING_POLICY_NAMES`]
/// order (a unit test pins the correspondence).
pub const MAPPING_POLICY_INFO: [(&str, &str); 5] = [
    (
        "round-robin",
        "cores in rotation, ignoring thermals (the baseline)",
    ),
    (
        "coolest-core",
        "greedy: each task to the core with the lowest peak estimate",
    ),
    (
        "thermal-balanced",
        "least-loaded by energy, with a migration-counted rebalance pass",
    ),
    (
        "static-shard",
        "contiguous block partitioning of the arrival stream",
    ),
    (
        "single-core",
        "everything onto core 0 (covert-channel sender pinning, baselines)",
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(energy: f64, peak: f64) -> TaskMetrics {
        TaskMetrics {
            peak_temperature: peak,
            cycles: 1,
            energy,
            power: Vec::new(),
            fingerprint: 0,
        }
    }

    fn ctx<'a>(
        cores: usize,
        task_index: usize,
        m: &'a TaskMetrics,
        energy: &'a [f64],
        busy: &'a [f64],
        peak: &'a [f64],
    ) -> MappingContext<'a> {
        MappingContext {
            cores,
            task_index,
            metrics: m,
            core_energy: energy,
            core_busy_until: busy,
            core_peak_estimate: peak,
        }
    }

    #[test]
    fn registry_covers_all_names() {
        for (name, info) in MAPPING_POLICY_NAMES.iter().zip(MAPPING_POLICY_INFO) {
            let p = mapping_policy_by_name(name).unwrap();
            assert_eq!(p.name(), *name);
            assert_eq!(info.0, *name, "info table tracks the name table");
            assert_eq!(p.description(), info.1, "info table tracks descriptions");
        }
        assert!(mapping_policy_by_name("bogus").is_none());
    }

    #[test]
    fn single_core_serializes_everything() {
        let mut p = SingleCore;
        p.reset(4, 3);
        let m = metrics(1.0, 300.0);
        let (e, b, pk) = (vec![0.0; 4], vec![0.0; 4], vec![300.0; 4]);
        for i in 0..3 {
            assert_eq!(p.choose(&ctx(4, i, &m, &e, &b, &pk)), 0);
        }
    }

    #[test]
    fn round_robin_rotates_and_resets() {
        let mut p = RoundRobinMapping::default();
        p.reset(3, 5);
        let m = metrics(1.0, 300.0);
        let (e, b, pk) = (vec![0.0; 3], vec![0.0; 3], vec![300.0; 3]);
        let picks: Vec<usize> = (0..5)
            .map(|i| p.choose(&ctx(3, i, &m, &e, &b, &pk)))
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1]);
        p.reset(3, 5);
        assert_eq!(p.choose(&ctx(3, 0, &m, &e, &b, &pk)), 0, "reset restarts");
    }

    #[test]
    fn coolest_core_picks_lowest_peak_with_deterministic_ties() {
        let mut p = CoolestCoreFirst;
        let m = metrics(1.0, 300.0);
        let e = vec![5.0, 1.0, 5.0];
        let b = vec![0.0; 3];
        let pk = vec![320.0, 310.0, 310.0];
        // Core 1 and 2 tie on peak; core 1 has less energy.
        assert_eq!(p.choose(&ctx(3, 0, &m, &e, &b, &pk)), 1);
        let pk_tie = vec![310.0; 3];
        let e_tie = vec![1.0; 3];
        assert_eq!(
            p.choose(&ctx(3, 0, &m, &e_tie, &b, &pk_tie)),
            0,
            "full tie → lowest index"
        );
    }

    #[test]
    fn thermal_balanced_rebalances_and_counts_migrations() {
        let mut p = ThermalBalanced;
        // Everything landed on core 0; rebalance should spread it.
        let ms: Vec<TaskMetrics> = [4.0, 1.0, 1.0, 1.0]
            .iter()
            .map(|&e| metrics(e, 300.0))
            .collect();
        let mut assignment = vec![0, 0, 0, 0];
        let moved = p.rebalance(&mut assignment, &ms, 2);
        assert!(moved >= 1, "at least one migration");
        let load0: f64 = assignment
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == 0)
            .map(|(i, _)| ms[i].energy)
            .sum();
        let load1: f64 = 7.0 - load0;
        assert!(
            (load0 - load1).abs() < 4.0,
            "loads roughly balanced: {load0} vs {load1}"
        );
        // A balanced assignment does not churn: 4.0 vs 1+1+1, and the
        // only move (the 4.0 task) would overload the other core.
        let mut balanced = vec![0, 1, 1, 1];
        assert_eq!(p.rebalance(&mut balanced, &ms, 2), 0);
        assert_eq!(balanced, vec![0, 1, 1, 1]);
        // Single core: nothing to do.
        let mut solo = vec![0, 0, 0, 0];
        assert_eq!(p.rebalance(&mut solo, &ms, 1), 0);
    }

    #[test]
    fn static_shard_partitions_contiguously() {
        let mut p = StaticShard::default();
        p.reset(3, 7);
        let m = metrics(1.0, 300.0);
        let (e, b, pk) = (vec![0.0; 3], vec![0.0; 3], vec![300.0; 3]);
        let picks: Vec<usize> = (0..7)
            .map(|i| p.choose(&ctx(3, i, &m, &e, &b, &pk)))
            .collect();
        assert_eq!(picks, vec![0, 0, 0, 1, 1, 2, 2]);
        // More cores than tasks: the clamped shards land on the front
        // cores.
        p.reset(5, 2);
        let picks: Vec<usize> = (0..2)
            .map(|i| p.choose(&ctx(5, i, &m, &e, &b, &pk)))
            .collect();
        assert_eq!(picks, vec![0, 1]);
    }
}
