//! Live-variable analysis.
//!
//! Liveness is the paper's own example of a "single bit per variable"
//! analysis (§3) and the foundation of interference-based register
//! allocation: two variables interfere exactly when one is live at the
//! other's definition (§2).

use crate::bitset::DenseBitSet;
use crate::solver::{solve, Analysis, Direction};
use tadfa_ir::{BlockId, Cfg, Function, InstId, VReg};

struct LivenessAnalysis {
    nvregs: usize,
}

impl Analysis for LivenessAnalysis {
    type Fact = DenseBitSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary_fact(&self) -> DenseBitSet {
        DenseBitSet::new(self.nvregs)
    }

    fn init_fact(&self) -> DenseBitSet {
        DenseBitSet::new(self.nvregs)
    }

    fn join(&self, into: &mut DenseBitSet, from: &DenseBitSet) -> bool {
        into.union_with(from)
    }

    fn transfer_block(&self, func: &Function, bb: BlockId, fact: &mut DenseBitSet) {
        // Backward: fact arrives as live-out; apply instructions in
        // reverse to produce live-in.
        if let Some(t) = func.terminator(bb) {
            for u in t.uses() {
                fact.insert(u.index());
            }
        }
        for &id in func.block(bb).insts().iter().rev() {
            let inst = func.inst(id);
            if let Some(d) = inst.def() {
                fact.remove(d.index());
            }
            for &u in inst.uses() {
                fact.insert(u.index());
            }
        }
    }
}

/// Result of live-variable analysis: live-in/live-out per block, with a
/// helper producing per-instruction live-out sets for interference
/// construction.
///
/// # Examples
///
/// ```
/// use tadfa_ir::{FunctionBuilder, Cfg};
/// use tadfa_dataflow::Liveness;
///
/// let mut b = FunctionBuilder::new("f");
/// let x = b.param();
/// let y = b.add(x, x);
/// let z = b.add(y, x);
/// b.ret(Some(z));
/// let f = b.finish();
/// let cfg = Cfg::compute(&f);
/// let live = Liveness::compute(&f, &cfg);
/// // x is live into the entry block, z is not.
/// assert!(live.live_in(f.entry()).contains(x.index()));
/// assert!(!live.live_in(f.entry()).contains(z.index()));
/// ```
#[derive(Clone, Debug)]
pub struct Liveness {
    live_in: Vec<DenseBitSet>,
    live_out: Vec<DenseBitSet>,
    nvregs: usize,
}

impl Liveness {
    /// Runs the backward fixpoint and captures per-block sets.
    pub fn compute(func: &Function, cfg: &Cfg) -> Liveness {
        let nvregs = func.num_vregs();
        let facts = solve(func, cfg, &LivenessAnalysis { nvregs });
        // Backward: input = live-out, output = live-in.
        Liveness {
            live_out: facts.input,
            live_in: facts.output,
            nvregs,
        }
    }

    /// Registers live on entry to `bb`.
    pub fn live_in(&self, bb: BlockId) -> &DenseBitSet {
        &self.live_in[bb.index()]
    }

    /// Registers live on exit from `bb`.
    pub fn live_out(&self, bb: BlockId) -> &DenseBitSet {
        &self.live_out[bb.index()]
    }

    /// Number of virtual registers the sets are over.
    pub fn num_vregs(&self) -> usize {
        self.nvregs
    }

    /// Whether `v` is live anywhere (in or out of any block, or used at
    /// all inside one).
    pub fn is_ever_live(&self, v: VReg) -> bool {
        self.live_in
            .iter()
            .chain(&self.live_out)
            .any(|s| s.contains(v.index()))
    }

    /// Live-out set after each instruction of `bb`, in block order.
    ///
    /// `result[i]` is the set of registers live immediately **after**
    /// `bb.insts()[i]` executes. Used to build interference graphs: a
    /// definition interferes with everything live after its instruction.
    pub fn per_inst_live_out(&self, func: &Function, bb: BlockId) -> Vec<(InstId, DenseBitSet)> {
        let insts = func.block(bb).insts();
        let mut out: Vec<(InstId, DenseBitSet)> = Vec::with_capacity(insts.len());
        let mut live = self.live_out[bb.index()].clone();
        if let Some(t) = func.terminator(bb) {
            for u in t.uses() {
                live.insert(u.index());
            }
        }
        for &id in insts.iter().rev() {
            out.push((id, live.clone()));
            let inst = func.inst(id);
            if let Some(d) = inst.def() {
                live.remove(d.index());
            }
            for &u in inst.uses() {
                live.insert(u.index());
            }
        }
        out.reverse();
        out
    }

    /// Maximum number of simultaneously live registers over all program
    /// points — the function's register pressure. This is the quantity
    /// the paper's §2 caveat is about: chessboard assignment only works
    /// while pressure ≤ half the register file.
    pub fn max_pressure(&self, func: &Function) -> usize {
        let mut max = 0;
        for bb in func.block_ids() {
            max = max.max(self.live_in[bb.index()].count());
            let mut live = self.live_out[bb.index()].clone();
            if let Some(t) = func.terminator(bb) {
                for u in t.uses() {
                    live.insert(u.index());
                }
            }
            max = max.max(live.count());
            for &id in func.block(bb).insts().iter().rev() {
                let inst = func.inst(id);
                if let Some(d) = inst.def() {
                    live.remove(d.index());
                }
                for &u in inst.uses() {
                    live.insert(u.index());
                }
                max = max.max(live.count());
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tadfa_ir::FunctionBuilder;

    #[test]
    fn straightline_liveness() {
        let mut b = FunctionBuilder::new("s");
        let x = b.param();
        let y = b.add(x, x); // x dies here unless used later
        let z = b.add(y, y);
        b.ret(Some(z));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let live = Liveness::compute(&f, &cfg);
        let entry = f.entry();
        assert!(live.live_in(entry).contains(x.index()));
        assert!(!live.live_in(entry).contains(y.index()));
        assert!(live.live_out(entry).is_empty()); // entry is the exit too
        assert!(live.is_ever_live(x));
        assert!(!live.is_ever_live(z) || !live.live_in(entry).contains(z.index()));
    }

    #[test]
    fn loop_carried_variable_is_live_around_the_loop() {
        let mut b = FunctionBuilder::new("l");
        let n = b.param();
        let h = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let i = b.iconst(0);
        b.jump(h);
        b.switch_to(h);
        let d = b.cmpge(i, n);
        b.branch(d, exit, body);
        b.switch_to(body);
        let one = b.iconst(1);
        let i2 = b.add(i, one);
        b.mov_into(i, i2);
        b.jump(h);
        b.switch_to(exit);
        b.ret(Some(i));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let live = Liveness::compute(&f, &cfg);
        // i is live around the back edge and out of the header.
        assert!(live.live_in(h).contains(i.index()));
        assert!(live.live_out(body).contains(i.index()));
        assert!(live.live_in(exit).contains(i.index()));
        // n is live inside the loop (used by the header compare).
        assert!(live.live_in(body).contains(n.index()));
    }

    #[test]
    fn per_inst_live_out_matches_manual_walk() {
        let mut b = FunctionBuilder::new("p");
        let x = b.param();
        let y = b.add(x, x);
        let z = b.add(y, x);
        b.ret(Some(z));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let live = Liveness::compute(&f, &cfg);
        let per = live.per_inst_live_out(&f, f.entry());
        assert_eq!(per.len(), 2);
        // After `y = add x, x`: x (used by next) and y live.
        assert!(per[0].1.contains(x.index()));
        assert!(per[0].1.contains(y.index()));
        // After `z = add y, x`: only z (used by ret).
        assert!(per[1].1.contains(z.index()));
        assert!(!per[1].1.contains(x.index()));
    }

    #[test]
    fn pressure_counts_simultaneous_values() {
        // Three values all live at once before being consumed.
        let mut b = FunctionBuilder::new("pr");
        let a = b.param();
        let x = b.add(a, a);
        let y = b.add(a, a);
        let z = b.add(a, a);
        let s1 = b.add(x, y);
        let s2 = b.add(s1, z);
        b.ret(Some(s2));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let live = Liveness::compute(&f, &cfg);
        assert!(live.max_pressure(&f) >= 3, "x, y, z simultaneously live");
    }

    #[test]
    fn dead_code_is_not_live() {
        let mut b = FunctionBuilder::new("dc");
        let x = b.param();
        let dead = b.add(x, x); // never used
        let _ = dead;
        b.ret(Some(x));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let live = Liveness::compute(&f, &cfg);
        assert!(!live.is_ever_live(dead));
    }
}
