//! Lock-free log-bucketed latency histograms (p50/p99/p999).
//!
//! An [`LatencyHistogram`] is a fixed array of atomic counters over
//! logarithmically spaced nanosecond buckets — the HDR idea cut to
//! what a service needs: `record` is one atomic increment on the hot
//! path (no lock, no allocation, safe from any worker thread), and
//! quantiles come out with bounded relative error (each power-of-two
//! range is split into 32 sub-buckets, so a reported quantile is
//! within ~3% of the true value). That error bound is why the service
//! can publish p999 from a counter array instead of keeping raw
//! samples; the load harness (`tadfa-load`), which *can* afford raw
//! samples, keeps them and reports exact quantiles as a cross-check.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power-of-two range is split into
/// `2^SUB_BITS` linear sub-buckets (~3% worst-case relative error).
const SUB_BITS: u32 = 5;
const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Bucket count covering the full `u64` nanosecond range.
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * (SUB_BUCKETS as usize);

/// The bucket a nanosecond value lands in.
fn bucket_index(ns: u64) -> usize {
    if ns < SUB_BUCKETS {
        return ns as usize;
    }
    let top = 63 - ns.leading_zeros(); // >= SUB_BITS here
    let shift = top - SUB_BITS;
    let major = (top - SUB_BITS + 1) as u64;
    let minor = (ns >> shift) & (SUB_BUCKETS - 1);
    (major * SUB_BUCKETS + minor) as usize
}

/// A representative (midpoint) nanosecond value for a bucket.
fn bucket_value(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB_BUCKETS {
        return idx;
    }
    let major = idx / SUB_BUCKETS - 1;
    let minor = idx % SUB_BUCKETS;
    let base = (SUB_BUCKETS + minor) << major;
    let width = 1u64 << major;
    base + width / 2
}

/// A concurrent log-bucketed histogram of nanosecond latencies.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one latency observation.
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) in nanoseconds, `0` when empty.
    /// Within the bucket resolution (~3% relative error); `max`
    /// in the snapshot is exact.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        // Rank of the target observation, 1-based, clamped into range.
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_value(i);
            }
        }
        self.max_ns.load(Ordering::Relaxed)
    }

    /// A point-in-time summary (concurrent recording may make the
    /// fields mutually off by in-flight increments; each field is
    /// itself consistent).
    pub fn snapshot(&self) -> LatencySnapshot {
        let count = self.count();
        LatencySnapshot {
            count,
            mean_ns: self
                .sum_ns
                .load(Ordering::Relaxed)
                .checked_div(count)
                .unwrap_or(0),
            p50_ns: self.quantile(0.50),
            p99_ns: self.quantile(0.99),
            p999_ns: self.quantile(0.999),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time latency summary, all nanoseconds.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_ns: u64,
    /// Median.
    pub p50_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Largest observation (exact).
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = LatencyHistogram::new();
        for ns in 0..SUB_BUCKETS {
            h.record(ns);
        }
        assert_eq!(h.count(), SUB_BUCKETS);
        assert_eq!(h.quantile(0.0), 0);
        // Below SUB_BUCKETS every value has its own bucket.
        assert_eq!(h.quantile(1.0), SUB_BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_within_bucket_resolution() {
        let h = LatencyHistogram::new();
        // 1..=1000 microseconds, one sample each.
        for us in 1..=1000u64 {
            h.record(us * 1000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        let within = |got: u64, want: u64| {
            let err = (got as f64 - want as f64).abs() / want as f64;
            assert!(err < 0.04, "got {got}, want ~{want} (err {err:.3})");
        };
        within(s.p50_ns, 500_000);
        within(s.p99_ns, 990_000);
        within(s.p999_ns, 999_000);
        assert_eq!(s.max_ns, 1_000_000);
        within(s.mean_ns, 500_500);
    }

    #[test]
    fn extreme_values_do_not_overflow_bucketing() {
        let h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.snapshot().max_ns, u64::MAX);
        assert!(h.quantile(1.0) > u64::MAX / 2);
    }

    #[test]
    fn bucket_value_lies_inside_its_bucket() {
        for ns in [0u64, 1, 31, 32, 33, 100, 1_000, 123_456, 10_u64.pow(9)] {
            let idx = bucket_index(ns);
            let rep = bucket_value(idx);
            assert_eq!(
                bucket_index(rep),
                idx,
                "representative of bucket({ns}) escaped its bucket"
            );
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = LatencyHistogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000 {
                        h.record(t * 1_000_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.snapshot().count, 4000);
    }
}
