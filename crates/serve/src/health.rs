//! Worker health checking: typed states, probe logic, and the
//! demotion/promotion state machine the fleet's router and supervisor
//! both consult.
//!
//! A fleet worker is useful only while it answers the protocol; a
//! worker that crashed, hung (SIGSTOP, deadlock), or wedged its worker
//! pool must stop receiving traffic *before* clients notice. The
//! health loop probes every worker on a fixed cadence — a `ping`
//! normally, a `stats` request every
//! [`HealthPolicy::stats_every`]-th probe (a worker can answer pings
//! from its reactor while its service workers are wedged; a stats
//! round trip proves the whole request path, and a stats response that
//! stops arriving is the staleness signal) — each over a fresh
//! connection with a hard [`HealthPolicy::timeout_ms`] deadline.
//!
//! The state machine is deliberately asymmetric: demotion is gradual
//! (one failed probe is suspicion, [`HealthPolicy::dead_after`]
//! consecutive failures are a verdict), promotion is instant (one
//! successful probe fully resets the tracker). The router keeps
//! routing to a [`HealthState::Degraded`] worker — a single dropped
//! probe on a busy box must not hemorrhage its shard's cache warmth —
//! but skips [`HealthState::Dead`] ones, failing their keyspace over
//! to the backup; the supervisor additionally force-restarts a worker
//! whose *process* is alive but whose health says dead (the hung-worker
//! shape a crash monitor alone never catches).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Cadence and thresholds for the fleet health loop.
#[derive(Clone, Debug)]
pub struct HealthPolicy {
    /// Milliseconds between probe rounds.
    pub interval_ms: u64,
    /// Per-probe deadline (connect + request + response).
    pub timeout_ms: u64,
    /// Consecutive probe failures before a worker is declared
    /// [`HealthState::Dead`] (below that it is merely degraded).
    pub dead_after: u32,
    /// Every Nth probe sends `stats` instead of `ping`, exercising the
    /// full admission→worker→response path instead of the reactor's
    /// inline pong. `0` disables stats probes.
    pub stats_every: u32,
}

impl Default for HealthPolicy {
    fn default() -> HealthPolicy {
        HealthPolicy {
            interval_ms: 500,
            timeout_ms: 1_000,
            dead_after: 3,
            stats_every: 4,
        }
    }
}

/// Where a worker stands in the health state machine.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// Spawned (or respawned) but not yet probed successfully — kept
    /// out of rotation until the first probe lands.
    Starting,
    /// Probes are landing; in rotation.
    Healthy,
    /// At least one recent probe failed, but fewer than
    /// [`HealthPolicy::dead_after`] in a row — still in rotation (the
    /// cache-warmth of a shard is worth a little suspicion), watched.
    Degraded,
    /// [`HealthPolicy::dead_after`] consecutive probes failed: out of
    /// rotation, keyspace failed over, supervisor restart incoming.
    Dead,
}

impl HealthState {
    /// The lowercase wire name used in fleet `stats` responses.
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Starting => "starting",
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Dead => "dead",
        }
    }
}

/// One worker's health bookkeeping: the current state plus lifetime
/// probe counters.
#[derive(Debug)]
pub struct HealthTracker {
    state: HealthState,
    consecutive_failures: u32,
    probes: u64,
    failures: u64,
    last_ok: Option<Instant>,
}

impl Default for HealthTracker {
    fn default() -> HealthTracker {
        HealthTracker::new()
    }
}

impl HealthTracker {
    /// A fresh tracker in [`HealthState::Starting`].
    pub fn new() -> HealthTracker {
        HealthTracker {
            state: HealthState::Starting,
            consecutive_failures: 0,
            probes: 0,
            failures: 0,
            last_ok: None,
        }
    }

    /// The current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Lifetime `(probes, failures)`.
    pub fn counts(&self) -> (u64, u64) {
        (self.probes, self.failures)
    }

    /// How long since the last successful probe (`None`: never).
    pub fn staleness(&self) -> Option<Duration> {
        self.last_ok.map(|t| t.elapsed())
    }

    /// Records a successful probe: full, immediate promotion to
    /// [`HealthState::Healthy`].
    pub fn record_success(&mut self) -> HealthState {
        self.probes += 1;
        self.consecutive_failures = 0;
        self.last_ok = Some(Instant::now());
        self.state = HealthState::Healthy;
        self.state
    }

    /// Records a failed probe: demotion to [`HealthState::Degraded`]
    /// on the first failure, [`HealthState::Dead`] once `dead_after`
    /// land in a row. A worker still [`HealthState::Starting`] goes
    /// straight to dead at the same threshold (a worker that never
    /// answered is no better than one that stopped).
    pub fn record_failure(&mut self, dead_after: u32) -> HealthState {
        self.probes += 1;
        self.failures += 1;
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        self.state = if self.consecutive_failures >= dead_after.max(1) {
            HealthState::Dead
        } else if self.state == HealthState::Starting {
            // Not yet proven alive; stay out of rotation, don't
            // pretend a degraded-but-working history exists.
            HealthState::Starting
        } else {
            HealthState::Degraded
        };
        self.state
    }

    /// Resets to [`HealthState::Starting`] — called when the
    /// supervisor respawns the worker, so stale history never vouches
    /// for a new process.
    pub fn reset(&mut self) {
        self.state = HealthState::Starting;
        self.consecutive_failures = 0;
        self.last_ok = None;
    }
}

/// What one probe sends.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ProbeKind {
    /// Reactor-inline liveness (`ping`).
    Ping,
    /// Full-path round trip (`stats` through the admission queue and a
    /// service worker).
    Stats,
}

/// Probes one worker once: fresh connection, one request, one
/// response, all under `timeout`. Returns the failure reason — the
/// caller owns the state machine.
///
/// # Errors
///
/// A human-readable reason: connect/write/read failure, timeout, or a
/// response that parses but is not `ok`.
pub fn probe(addr: SocketAddr, probe_kind: ProbeKind, timeout: Duration) -> Result<(), String> {
    let op = match probe_kind {
        ProbeKind::Ping => "ping",
        ProbeKind::Stats => "stats",
    };
    let stream = TcpStream::connect_timeout(&addr, timeout).map_err(|e| format!("connect: {e}"))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("read timeout: {e}"))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| format!("write timeout: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    writeln!(writer, "{{\"id\": 0, \"op\": \"{op}\"}}").map_err(|e| format!("write: {e}"))?;
    writer.flush().map_err(|e| format!("flush: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let n = reader
        .read_line(&mut line)
        .map_err(|e| format!("read: {e}"))?;
    if n == 0 {
        return Err("connection closed before response".to_string());
    }
    let resp = crate::protocol::parse_response(line.trim())
        .map_err(|e| format!("unparseable response: {e}"))?;
    if resp.ok {
        Ok(())
    } else {
        Err(format!(
            "{op} answered with error {}",
            resp.error.as_deref().unwrap_or("?")
        ))
    }
}

/// Which [`ProbeKind`] the `n`th probe (1-based) should send under a
/// policy: every `stats_every`th is a stats probe, the rest pings.
pub fn probe_kind_for(policy: &HealthPolicy, n: u64) -> ProbeKind {
    if policy.stats_every > 0 && n.is_multiple_of(u64::from(policy.stats_every)) {
        ProbeKind::Stats
    } else {
        ProbeKind::Ping
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demotion_is_gradual_promotion_is_instant() {
        let mut t = HealthTracker::new();
        assert_eq!(t.state(), HealthState::Starting);
        assert_eq!(t.record_success(), HealthState::Healthy);
        assert_eq!(t.record_failure(3), HealthState::Degraded);
        assert_eq!(t.record_failure(3), HealthState::Degraded);
        assert_eq!(t.record_failure(3), HealthState::Dead);
        assert_eq!(t.record_failure(3), HealthState::Dead, "dead stays dead");
        assert_eq!(
            t.record_success(),
            HealthState::Healthy,
            "one good probe fully promotes"
        );
        assert_eq!(t.counts(), (6, 4));
    }

    #[test]
    fn starting_worker_never_reports_degraded() {
        let mut t = HealthTracker::new();
        assert_eq!(t.record_failure(3), HealthState::Starting);
        assert_eq!(t.record_failure(3), HealthState::Starting);
        assert_eq!(
            t.record_failure(3),
            HealthState::Dead,
            "a worker that never answered is declared dead at the same threshold"
        );
    }

    #[test]
    fn reset_discards_history() {
        let mut t = HealthTracker::new();
        t.record_success();
        t.record_failure(1);
        assert_eq!(t.state(), HealthState::Dead);
        t.reset();
        assert_eq!(t.state(), HealthState::Starting);
        assert!(t.staleness().is_none(), "a new process has no history");
    }

    #[test]
    fn probe_schedule_interleaves_stats() {
        let policy = HealthPolicy {
            stats_every: 3,
            ..HealthPolicy::default()
        };
        let kinds: Vec<ProbeKind> = (1..=6).map(|n| probe_kind_for(&policy, n)).collect();
        assert_eq!(
            kinds,
            vec![
                ProbeKind::Ping,
                ProbeKind::Ping,
                ProbeKind::Stats,
                ProbeKind::Ping,
                ProbeKind::Ping,
                ProbeKind::Stats,
            ]
        );
        let none = HealthPolicy {
            stats_every: 0,
            ..HealthPolicy::default()
        };
        assert!((1..=8).all(|n| probe_kind_for(&none, n) == ProbeKind::Ping));
    }

    #[test]
    fn dead_after_zero_is_clamped() {
        let mut t = HealthTracker::new();
        t.record_success();
        assert_eq!(t.record_failure(0), HealthState::Dead);
    }

    #[test]
    fn probe_against_a_vacant_port_fails_fast() {
        // Bind-then-drop guarantees an unserved port.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let started = Instant::now();
        let err = probe(addr, ProbeKind::Ping, Duration::from_millis(500)).unwrap_err();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "probe respects its timeout"
        );
        assert!(!err.is_empty());
    }
}
