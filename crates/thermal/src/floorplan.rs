//! Register-file floorplan: the geometric layout the thermal state is
//! defined over.

use crate::constants;
use crate::error::ThermalError;
use serde::{Deserialize, Serialize};

/// A rectangular grid of register cells.
///
/// Cell indices are row-major: cell `(r, c)` has index `r * cols + c`.
///
/// # Examples
///
/// ```
/// use tadfa_thermal::Floorplan;
/// let fp = Floorplan::grid(8, 8);
/// assert_eq!(fp.num_cells(), 64);
/// assert_eq!(fp.index(1, 2), 10);
/// assert_eq!(fp.position(10), (1, 2));
/// assert_eq!(fp.neighbors(0).count(), 2); // corner cell
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Floorplan {
    rows: usize,
    cols: usize,
    cell_width: f64,
    cell_height: f64,
}

impl Floorplan {
    /// A `rows × cols` grid with the default 50 µm cells, error-first.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::EmptyFloorplan`] if either dimension is
    /// zero.
    pub fn try_grid(rows: usize, cols: usize) -> Result<Floorplan, ThermalError> {
        Floorplan::try_with_cell_size(
            rows,
            cols,
            constants::DEFAULT_CELL_WIDTH,
            constants::DEFAULT_CELL_HEIGHT,
        )
    }

    /// A grid with explicit cell dimensions in metres, error-first.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::EmptyFloorplan`] for a zero dimension and
    /// [`ThermalError::InvalidParam`] for a non-positive or non-finite
    /// cell size.
    pub fn try_with_cell_size(
        rows: usize,
        cols: usize,
        cell_width: f64,
        cell_height: f64,
    ) -> Result<Floorplan, ThermalError> {
        if rows == 0 || cols == 0 {
            return Err(ThermalError::EmptyFloorplan { rows, cols });
        }
        for (param, value) in [("cell_width", cell_width), ("cell_height", cell_height)] {
            if value <= 0.0 || !value.is_finite() {
                return Err(ThermalError::InvalidParam {
                    param,
                    value,
                    reason: "cell dimensions must be positive",
                });
            }
        }
        Ok(Floorplan {
            rows,
            cols,
            cell_width,
            cell_height,
        })
    }

    /// Legacy panicking wrapper over [`Floorplan::try_grid`]; prefer the
    /// error-first form in new code.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn grid(rows: usize, cols: usize) -> Floorplan {
        match Floorplan::try_grid(rows, cols) {
            Ok(fp) => fp,
            Err(e) => panic!("{e}"),
        }
    }

    /// Legacy panicking wrapper over [`Floorplan::try_with_cell_size`];
    /// prefer the error-first form in new code.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or a size is non-positive.
    pub fn with_cell_size(
        rows: usize,
        cols: usize,
        cell_width: f64,
        cell_height: f64,
    ) -> Floorplan {
        match Floorplan::try_with_cell_size(rows, cols, cell_width, cell_height) {
            Ok(fp) => fp,
            Err(e) => panic!("{e}"),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        self.rows * self.cols
    }

    /// Cell width in metres.
    pub fn cell_width(&self) -> f64 {
        self.cell_width
    }

    /// Cell height in metres.
    pub fn cell_height(&self) -> f64 {
        self.cell_height
    }

    /// Total silicon area in m².
    pub fn area(&self) -> f64 {
        self.cell_width * self.cell_height * self.num_cells() as f64
    }

    /// Row-major index of cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn index(&self, row: usize, col: usize) -> usize {
        assert!(
            row < self.rows && col < self.cols,
            "cell ({row},{col}) out of range"
        );
        row * self.cols + col
    }

    /// `(row, col)` of a cell index.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn position(&self, index: usize) -> (usize, usize) {
        assert!(index < self.num_cells(), "cell {index} out of range");
        (index / self.cols, index % self.cols)
    }

    /// The 4-connected (N/S/E/W) neighbours of a cell.
    pub fn neighbors(&self, index: usize) -> impl Iterator<Item = usize> + '_ {
        let (r, c) = self.position(index);
        let rows = self.rows;
        let cols = self.cols;
        [
            (r > 0).then(|| (r - 1) * cols + c),
            (r + 1 < rows).then(|| (r + 1) * cols + c),
            (c > 0).then(|| r * cols + c - 1),
            (c + 1 < cols).then(|| r * cols + c + 1),
        ]
        .into_iter()
        .flatten()
    }

    /// Manhattan distance between two cells, in cell units.
    pub fn manhattan(&self, a: usize, b: usize) -> usize {
        let (ra, ca) = self.position(a);
        let (rb, cb) = self.position(b);
        ra.abs_diff(rb) + ca.abs_diff(cb)
    }

    /// Chessboard colour of a cell: `true` for "black" cells
    /// (`(row + col)` even). The chessboard assignment policy of the
    /// paper's Fig. 1(c) allocates black cells first so that no two
    /// simultaneously used registers are adjacent.
    pub fn is_black(&self, index: usize) -> bool {
        let (r, c) = self.position(index);
        (r + c) % 2 == 0
    }

    /// Centre coordinates of a cell in metres (for plotting/export).
    pub fn center(&self, index: usize) -> (f64, f64) {
        let (r, c) = self.position(index);
        (
            (c as f64 + 0.5) * self.cell_width,
            (r as f64 + 0.5) * self.cell_height,
        )
    }
}

/// Mapping from physical registers onto floorplan cells.
///
/// The default layout is the identity: register `r` occupies cell `r` in
/// row-major order, matching how register files are physically arranged
/// as row/column arrays. A custom permutation supports layout studies.
///
/// # Examples
///
/// ```
/// use tadfa_thermal::{Floorplan, RegisterFile};
/// use tadfa_ir::PReg;
/// let rf = RegisterFile::new(Floorplan::grid(4, 8));
/// assert_eq!(rf.num_regs(), 32);
/// assert_eq!(rf.cell_of(PReg::new(9)), 9);
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct RegisterFile {
    floorplan: Floorplan,
    /// `cell_of[r]` = cell index of physical register `r`.
    placement: Vec<usize>,
}

impl RegisterFile {
    /// One register per cell, identity placement.
    pub fn new(floorplan: Floorplan) -> RegisterFile {
        let placement = (0..floorplan.num_cells()).collect();
        RegisterFile {
            floorplan,
            placement,
        }
    }

    /// Custom register→cell placement.
    ///
    /// # Panics
    ///
    /// Panics if any cell index is out of range or duplicated.
    pub fn with_placement(floorplan: Floorplan, placement: Vec<usize>) -> RegisterFile {
        let n = floorplan.num_cells();
        let mut seen = vec![false; n];
        for &c in &placement {
            assert!(c < n, "placement cell {c} out of range");
            assert!(!seen[c], "placement cell {c} duplicated");
            seen[c] = true;
        }
        RegisterFile {
            floorplan,
            placement,
        }
    }

    /// The floorplan of this register file.
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// Number of architectural registers.
    pub fn num_regs(&self) -> usize {
        self.placement.len()
    }

    /// Cell occupied by physical register `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn cell_of(&self, r: tadfa_ir::PReg) -> usize {
        self.placement[r.index()]
    }

    /// Physical distance between two registers in cell units.
    pub fn distance(&self, a: tadfa_ir::PReg, b: tadfa_ir::PReg) -> usize {
        self.floorplan.manhattan(self.cell_of(a), self.cell_of(b))
    }

    /// Registers whose cells are "black" in the chessboard colouring.
    pub fn black_registers(&self) -> Vec<tadfa_ir::PReg> {
        (0..self.num_regs())
            .filter(|&r| self.floorplan.is_black(self.placement[r]))
            .map(|r| tadfa_ir::PReg::new(r as u16))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tadfa_ir::PReg;

    #[test]
    fn indexing_roundtrip() {
        let fp = Floorplan::grid(3, 5);
        for i in 0..fp.num_cells() {
            let (r, c) = fp.position(i);
            assert_eq!(fp.index(r, c), i);
        }
    }

    #[test]
    fn neighbor_counts() {
        let fp = Floorplan::grid(3, 3);
        assert_eq!(fp.neighbors(fp.index(0, 0)).count(), 2); // corner
        assert_eq!(fp.neighbors(fp.index(0, 1)).count(), 3); // edge
        assert_eq!(fp.neighbors(fp.index(1, 1)).count(), 4); // interior
    }

    #[test]
    fn neighbors_are_symmetric() {
        let fp = Floorplan::grid(4, 4);
        for i in 0..fp.num_cells() {
            for j in fp.neighbors(i) {
                assert!(fp.neighbors(j).any(|k| k == i), "asymmetric {i}<->{j}");
            }
        }
    }

    #[test]
    fn manhattan_distance() {
        let fp = Floorplan::grid(4, 4);
        assert_eq!(fp.manhattan(fp.index(0, 0), fp.index(3, 3)), 6);
        assert_eq!(fp.manhattan(5, 5), 0);
    }

    #[test]
    fn chessboard_coloring_alternates() {
        let fp = Floorplan::grid(2, 2);
        assert!(fp.is_black(fp.index(0, 0)));
        assert!(!fp.is_black(fp.index(0, 1)));
        assert!(!fp.is_black(fp.index(1, 0)));
        assert!(fp.is_black(fp.index(1, 1)));
    }

    #[test]
    fn black_cells_are_never_adjacent() {
        let fp = Floorplan::grid(8, 8);
        for i in 0..fp.num_cells() {
            if fp.is_black(i) {
                for j in fp.neighbors(i) {
                    assert!(!fp.is_black(j), "black cells {i} and {j} adjacent");
                }
            }
        }
    }

    #[test]
    fn register_file_identity_and_distance() {
        let rf = RegisterFile::new(Floorplan::grid(4, 8));
        assert_eq!(rf.num_regs(), 32);
        assert_eq!(rf.cell_of(PReg::new(0)), 0);
        assert_eq!(rf.distance(PReg::new(0), PReg::new(31)), 3 + 7);
        assert_eq!(rf.black_registers().len(), 16);
    }

    #[test]
    fn custom_placement_validated() {
        let fp = Floorplan::grid(2, 2);
        let rf = RegisterFile::with_placement(fp, vec![3, 2, 1, 0]);
        assert_eq!(rf.cell_of(PReg::new(0)), 3);
    }

    #[test]
    #[should_panic(expected = "duplicated")]
    fn duplicate_placement_rejected() {
        let fp = Floorplan::grid(2, 2);
        let _ = RegisterFile::with_placement(fp, vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn empty_floorplan_rejected() {
        let _ = Floorplan::grid(0, 4);
    }

    #[test]
    fn try_constructors_are_error_first() {
        assert!(matches!(
            Floorplan::try_grid(0, 4),
            Err(ThermalError::EmptyFloorplan { rows: 0, cols: 4 })
        ));
        assert!(matches!(
            Floorplan::try_with_cell_size(2, 2, -1.0, 1e-5),
            Err(ThermalError::InvalidParam {
                param: "cell_width",
                ..
            })
        ));
        let fp = Floorplan::try_grid(3, 5).unwrap();
        assert_eq!(fp.num_cells(), 15);
    }

    #[test]
    fn geometry_accessors() {
        let fp = Floorplan::with_cell_size(2, 3, 1e-5, 2e-5);
        assert_eq!(fp.rows(), 2);
        assert_eq!(fp.cols(), 3);
        assert!((fp.area() - 6.0 * 1e-5 * 2e-5).abs() < 1e-18);
        let (x, y) = fp.center(0);
        assert!((x - 0.5e-5).abs() < 1e-12 && (y - 1e-5).abs() < 1e-12);
    }
}
