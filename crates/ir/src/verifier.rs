//! Structural and dataflow validity checks for functions.

use crate::callgraph::CallGraph;
use crate::cfg::Cfg;
use crate::entities::{BlockId, InstId, VReg};
use crate::function::Function;
use crate::inst::Opcode;
use crate::module::Module;
use std::error::Error;
use std::fmt;

/// A single verification failure.
#[derive(Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum VerifyError {
    /// A block has no terminator.
    MissingTerminator(BlockId),
    /// A terminator targets a block id outside the function.
    BadBranchTarget { block: BlockId, target: BlockId },
    /// An instruction's operand count does not match its opcode.
    BadOperandCount {
        inst: InstId,
        expected: usize,
        actual: usize,
    },
    /// An instruction is missing a required destination or has a spurious
    /// one.
    BadDestination { inst: InstId, expected: bool },
    /// An instruction references a register that was never allocated.
    UnknownRegister { inst: InstId, reg: VReg },
    /// A `Const` is missing its immediate.
    MissingImmediate(InstId),
    /// A memory instruction is missing its slot or references a bad slot.
    BadSlot(InstId),
    /// A register may be read before any definition reaches it.
    UseBeforeDef { block: BlockId, reg: VReg },
    /// A call is missing its callee name, or a non-call carries one.
    BadCallee(InstId),
    /// A call references a function not present in the module.
    UnknownCallee { function: String, callee: String },
    /// A call passes the wrong number of arguments for its callee.
    CallArityMismatch {
        function: String,
        callee: String,
        expected: usize,
        actual: usize,
    },
    /// The module's call graph contains a cycle (direct or mutual
    /// recursion); members are listed in module order.
    RecursiveCall { cycle: Vec<String> },
    /// The function has no blocks at all.
    Empty,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::MissingTerminator(b) => write!(f, "{b} has no terminator"),
            VerifyError::BadBranchTarget { block, target } => {
                write!(f, "{block} branches to nonexistent {target}")
            }
            VerifyError::BadOperandCount {
                inst,
                expected,
                actual,
            } => {
                write!(f, "{inst} expects {expected} operands, has {actual}")
            }
            VerifyError::BadDestination { inst, expected } => {
                if *expected {
                    write!(f, "{inst} is missing its destination")
                } else {
                    write!(f, "{inst} must not have a destination")
                }
            }
            VerifyError::UnknownRegister { inst, reg } => {
                write!(f, "{inst} references unallocated register {reg}")
            }
            VerifyError::MissingImmediate(i) => write!(f, "{i} (const) has no immediate"),
            VerifyError::BadSlot(i) => write!(f, "{i} has a missing or invalid memory slot"),
            VerifyError::UseBeforeDef { block, reg } => {
                write!(f, "{reg} may be used before definition in {block}")
            }
            VerifyError::BadCallee(i) => {
                write!(f, "{i} has a missing or spurious callee name")
            }
            VerifyError::UnknownCallee { function, callee } => {
                write!(f, "@{function} calls unknown function @{callee}")
            }
            VerifyError::CallArityMismatch {
                function,
                callee,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "@{function} calls @{callee} with {actual} arguments, expected {expected}"
                )
            }
            VerifyError::RecursiveCall { cycle } => {
                write!(f, "recursive call cycle: ")?;
                for (k, name) in cycle.iter().enumerate() {
                    if k > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "@{name}")?;
                }
                Ok(())
            }
            VerifyError::Empty => write!(f, "function has no blocks"),
        }
    }
}

impl Error for VerifyError {}

/// Verifies the structural invariants of a [`Function`].
///
/// Checks performed:
///
/// * every block ends in a terminator whose targets exist;
/// * operand counts, destinations, immediates and slots match each opcode;
/// * every referenced virtual register was allocated;
/// * no register can be read before a definition reaches it on some path
///   (a forward "definitely-assigned" dataflow, with parameters defined at
///   entry).
///
/// # Examples
///
/// ```
/// use tadfa_ir::{FunctionBuilder, Verifier};
/// let mut b = FunctionBuilder::new("ok");
/// let x = b.param();
/// let y = b.add(x, x);
/// b.ret(Some(y));
/// let f = b.finish();
/// assert!(Verifier::new(&f).run().is_ok());
/// ```
#[derive(Debug)]
pub struct Verifier<'f> {
    func: &'f Function,
}

impl<'f> Verifier<'f> {
    /// Creates a verifier for `func`.
    pub fn new(func: &'f Function) -> Verifier<'f> {
        Verifier { func }
    }

    /// Runs all checks, returning the first error found or a list of all
    /// errors via [`Verifier::run_all`].
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError`] discovered.
    pub fn run(&self) -> Result<(), VerifyError> {
        match self.run_all() {
            errors if errors.is_empty() => Ok(()),
            mut errors => Err(errors.remove(0)),
        }
    }

    /// Runs all checks and returns every failure.
    pub fn run_all(&self) -> Vec<VerifyError> {
        let f = self.func;
        let mut errors = Vec::new();
        if f.num_blocks() == 0 {
            return vec![VerifyError::Empty];
        }

        let nblocks = f.num_blocks();
        let nvregs = f.num_vregs();
        let nslots = f.slots().len();

        for bb in f.block_ids() {
            match f.terminator(bb) {
                None => errors.push(VerifyError::MissingTerminator(bb)),
                Some(t) => {
                    for target in t.successors() {
                        if target.index() >= nblocks {
                            errors.push(VerifyError::BadBranchTarget { block: bb, target });
                        }
                    }
                    for u in t.uses() {
                        if u.index() >= nvregs {
                            // Reuse UnknownRegister with a synthetic id of
                            // the first instruction for lack of one; report
                            // per-block instead.
                            errors.push(VerifyError::UseBeforeDef { block: bb, reg: u });
                        }
                    }
                }
            }
            for &id in f.block(bb).insts() {
                let inst = f.inst(id);
                // Variable-arity ops (calls) have no fixed operand count;
                // argument counts are checked against the callee signature
                // by `verify_module`.
                if !inst.op.has_variable_srcs() {
                    let expected = inst.op.num_srcs();
                    if inst.srcs.len() != expected {
                        errors.push(VerifyError::BadOperandCount {
                            inst: id,
                            expected,
                            actual: inst.srcs.len(),
                        });
                    }
                }
                if (inst.op == Opcode::Call) != inst.callee.is_some() {
                    errors.push(VerifyError::BadCallee(id));
                }
                if inst.op.has_dst() != inst.dst.is_some() {
                    errors.push(VerifyError::BadDestination {
                        inst: id,
                        expected: inst.op.has_dst(),
                    });
                }
                if inst.op.has_imm() && inst.imm.is_none() {
                    errors.push(VerifyError::MissingImmediate(id));
                }
                if inst.op.has_slot() {
                    match inst.slot {
                        Some(s) if s.index() < nslots => {}
                        _ => errors.push(VerifyError::BadSlot(id)),
                    }
                } else if inst.slot.is_some() {
                    errors.push(VerifyError::BadSlot(id));
                }
                for &u in inst.uses() {
                    if u.index() >= nvregs {
                        errors.push(VerifyError::UnknownRegister { inst: id, reg: u });
                    }
                }
                if let Some(d) = inst.def() {
                    if d.index() >= nvregs {
                        errors.push(VerifyError::UnknownRegister { inst: id, reg: d });
                    }
                }
            }
        }

        if errors.is_empty() {
            errors.extend(self.check_defined_before_use());
        }
        errors
    }

    /// Forward may-use-before-def analysis. A register is "definitely
    /// assigned" at a point if every path from entry to that point defines
    /// it. Reads of registers that are not definitely assigned are errors.
    fn check_defined_before_use(&self) -> Vec<VerifyError> {
        let f = self.func;
        let cfg = Cfg::compute(f);
        let n = f.num_blocks();
        let nv = f.num_vregs();
        let full: Vec<bool> = vec![true; nv];

        // defined_out[b]: set of vregs definitely assigned at the end of b.
        let mut defined_out: Vec<Vec<bool>> = vec![full.clone(); n];
        let mut entry_in = vec![false; nv];
        for &p in f.params() {
            entry_in[p.index()] = true;
        }

        let mut errors = Vec::new();
        let mut changed = true;
        while changed {
            changed = false;
            for &bb in cfg.rpo() {
                let mut state = if bb == f.entry() {
                    entry_in.clone()
                } else {
                    // Intersection over predecessors (definitely assigned).
                    let preds = cfg.preds(bb);
                    let mut acc = full.clone();
                    let mut any = false;
                    for &p in preds {
                        any = true;
                        for (a, d) in acc.iter_mut().zip(&defined_out[p.index()]) {
                            *a = *a && *d;
                        }
                    }
                    if !any {
                        // Reachable only via entry (shouldn't happen), be
                        // conservative.
                        vec![false; nv]
                    } else {
                        acc
                    }
                };
                for &id in f.block(bb).insts() {
                    let inst = f.inst(id);
                    if let Some(d) = inst.def() {
                        state[d.index()] = true;
                    }
                }
                if state != defined_out[bb.index()] {
                    defined_out[bb.index()] = state;
                    changed = true;
                }
            }
        }

        // Report: walk each reachable block with its entry state.
        for &bb in cfg.rpo() {
            let mut state = if bb == f.entry() {
                entry_in.clone()
            } else {
                let preds = cfg.preds(bb);
                let mut acc = full.clone();
                for &p in preds {
                    for (a, d) in acc.iter_mut().zip(&defined_out[p.index()]) {
                        *a = *a && *d;
                    }
                }
                if preds.is_empty() {
                    vec![false; nv]
                } else {
                    acc
                }
            };
            for &id in f.block(bb).insts() {
                let inst = f.inst(id);
                for &u in inst.uses() {
                    if !state[u.index()] {
                        errors.push(VerifyError::UseBeforeDef { block: bb, reg: u });
                        // Avoid cascading reports for the same register.
                        state[u.index()] = true;
                    }
                }
                if let Some(d) = inst.def() {
                    state[d.index()] = true;
                }
            }
            if let Some(t) = f.terminator(bb) {
                for u in t.uses() {
                    if !state[u.index()] {
                        errors.push(VerifyError::UseBeforeDef { block: bb, reg: u });
                    }
                }
            }
        }
        errors
    }
}

/// Verifies a [`Module`]: every function individually, then the
/// interprocedural invariants no single function can check.
///
/// Module-level checks:
///
/// * every `call` targets a function present in the module;
/// * every `call` passes exactly as many arguments as the callee has
///   parameters;
/// * the call graph is acyclic — recursion (direct or mutual) is
///   rejected, because interprocedural thermal summaries are computed
///   bottom-up and a cycle has no bottom-up order.
///
/// # Errors
///
/// Returns the first [`VerifyError`] discovered; use
/// [`verify_module_all`] for the full list.
///
/// # Examples
///
/// ```
/// use tadfa_ir::{parse_module, verify_module};
/// let m = parse_module(
///     "func @leaf(%0) {\nblock0:\n  ret %0\n}\n\n\
///      func @main(%0) {\nblock0:\n  %1 = call @leaf(%0)\n  ret %1\n}",
/// )
/// .unwrap();
/// assert!(verify_module(&m).is_ok());
/// ```
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    match verify_module_all(module) {
        errors if errors.is_empty() => Ok(()),
        mut errors => Err(errors.remove(0)),
    }
}

/// Runs every module-level check (see [`verify_module`]) and returns all
/// failures.
pub fn verify_module_all(module: &Module) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    for f in module.functions() {
        errors.extend(Verifier::new(f).run_all());
    }
    for f in module.functions() {
        for bb in f.block_ids() {
            for &id in f.block(bb).insts() {
                let inst = f.inst(id);
                if inst.op != Opcode::Call {
                    continue;
                }
                // A call without a callee name was already reported as
                // BadCallee by the per-function pass.
                let Some(callee) = inst.callee_name() else {
                    continue;
                };
                match module.function(callee) {
                    None => errors.push(VerifyError::UnknownCallee {
                        function: f.name().to_string(),
                        callee: callee.to_string(),
                    }),
                    Some(target) => {
                        let expected = target.params().len();
                        if inst.srcs.len() != expected {
                            errors.push(VerifyError::CallArityMismatch {
                                function: f.name().to_string(),
                                callee: callee.to_string(),
                                expected,
                                actual: inst.srcs.len(),
                            });
                        }
                    }
                }
            }
        }
    }
    let cg = CallGraph::build(module);
    for cycle in cg.recursive_sccs() {
        errors.push(VerifyError::RecursiveCall { cycle });
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{Inst, Opcode, Terminator};

    #[test]
    fn missing_terminator_reported() {
        let b = FunctionBuilder::new("open");
        let f = b.finish();
        let errors = Verifier::new(&f).run_all();
        assert!(matches!(errors[0], VerifyError::MissingTerminator(_)));
    }

    #[test]
    fn bad_branch_target_reported() {
        let mut f = Function::new("bad");
        let b0 = f.add_block();
        f.set_entry(b0);
        f.set_terminator(b0, Terminator::Jump(BlockId::new(7)));
        let errors = Verifier::new(&f).run_all();
        assert!(errors
            .iter()
            .any(|e| matches!(e, VerifyError::BadBranchTarget { .. })));
    }

    use crate::function::Function;

    #[test]
    fn malformed_instruction_reported() {
        let mut f = Function::new("mal");
        let b0 = f.add_block();
        f.set_entry(b0);
        let v = f.new_vreg();
        // Hand-build an add with one operand.
        f.push_inst(
            b0,
            Inst {
                op: Opcode::Add,
                dst: Some(v),
                srcs: vec![v],
                imm: None,
                slot: None,
                callee: None,
            },
        );
        f.set_terminator(b0, Terminator::Ret(None));
        let errors = Verifier::new(&f).run_all();
        assert!(errors.iter().any(|e| matches!(
            e,
            VerifyError::BadOperandCount {
                expected: 2,
                actual: 1,
                ..
            }
        )));
    }

    #[test]
    fn const_without_imm_reported() {
        let mut f = Function::new("k");
        let b0 = f.add_block();
        f.set_entry(b0);
        let v = f.new_vreg();
        f.push_inst(
            b0,
            Inst {
                op: Opcode::Const,
                dst: Some(v),
                srcs: vec![],
                imm: None,
                slot: None,
                callee: None,
            },
        );
        f.set_terminator(b0, Terminator::Ret(None));
        let errors = Verifier::new(&f).run_all();
        assert!(errors
            .iter()
            .any(|e| matches!(e, VerifyError::MissingImmediate(_))));
    }

    #[test]
    fn store_with_dst_reported() {
        let mut f = Function::new("sd");
        let b0 = f.add_block();
        f.set_entry(b0);
        let v = f.new_vreg();
        let s = f.add_slot("m", 4);
        f.push_inst(
            b0,
            Inst {
                op: Opcode::Store,
                dst: Some(v),
                srcs: vec![v, v],
                imm: None,
                slot: Some(s),
                callee: None,
            },
        );
        f.set_terminator(b0, Terminator::Ret(None));
        let errors = Verifier::new(&f).run_all();
        assert!(errors.iter().any(|e| matches!(
            e,
            VerifyError::BadDestination {
                expected: false,
                ..
            }
        )));
    }

    #[test]
    fn load_without_slot_reported() {
        let mut f = Function::new("ls");
        let b0 = f.add_block();
        f.set_entry(b0);
        let v = f.new_vreg();
        f.push_inst(
            b0,
            Inst {
                op: Opcode::Load,
                dst: Some(v),
                srcs: vec![v],
                imm: None,
                slot: None,
                callee: None,
            },
        );
        f.set_terminator(b0, Terminator::Ret(None));
        let errors = Verifier::new(&f).run_all();
        assert!(errors.iter().any(|e| matches!(e, VerifyError::BadSlot(_))));
    }

    #[test]
    fn use_before_def_on_one_path_reported() {
        // entry: br %0 -> left | right; left defines %1; join uses %1.
        let mut b = FunctionBuilder::new("ubd");
        let c = b.param();
        let left = b.new_block();
        let right = b.new_block();
        let join = b.new_block();
        b.branch(c, left, right);
        b.switch_to(left);
        let one = b.iconst(1);
        b.jump(join);
        b.switch_to(right);
        b.jump(join);
        b.switch_to(join);
        let _ = b.add(one, c); // `one` only defined on the left path
        b.ret(None);
        let f = b.finish();
        let errors = Verifier::new(&f).run_all();
        assert!(
            errors
                .iter()
                .any(|e| matches!(e, VerifyError::UseBeforeDef { .. })),
            "{errors:?}"
        );
    }

    #[test]
    fn loop_carried_defs_accepted() {
        // i defined before loop, updated in body: no false positive.
        let mut b = FunctionBuilder::new("lc");
        let n = b.param();
        let h = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let i = b.iconst(0);
        b.jump(h);
        b.switch_to(h);
        let d = b.cmpge(i, n);
        b.branch(d, exit, body);
        b.switch_to(body);
        let one = b.iconst(1);
        let i2 = b.add(i, one);
        b.mov_into(i, i2);
        b.jump(h);
        b.switch_to(exit);
        b.ret(Some(i));
        let f = b.finish();
        assert!(Verifier::new(&f).run().is_ok());
    }

    #[test]
    fn param_uses_are_defined() {
        let mut b = FunctionBuilder::new("p");
        let x = b.param();
        b.ret(Some(x));
        let f = b.finish();
        assert!(Verifier::new(&f).run().is_ok());
    }

    fn ret_param(name: &str) -> Function {
        let mut b = FunctionBuilder::new(name);
        let x = b.param();
        b.ret(Some(x));
        b.finish()
    }

    fn call_one(name: &str, callee: &str, nargs: usize) -> Function {
        let mut b = FunctionBuilder::new(name);
        let x = b.param();
        let r = b.call(callee, &vec![x; nargs]);
        b.ret(Some(r));
        b.finish()
    }

    #[test]
    fn calls_pass_function_level_checks() {
        let f = call_one("c", "helper", 3);
        assert!(Verifier::new(&f).run().is_ok());
    }

    #[test]
    fn call_without_callee_name_reported() {
        let mut f = Function::new("bad");
        let b0 = f.add_block();
        f.set_entry(b0);
        let v = f.new_vreg();
        f.push_inst(
            b0,
            Inst {
                op: Opcode::Call,
                dst: Some(v),
                srcs: vec![],
                imm: None,
                slot: None,
                callee: None,
            },
        );
        f.set_terminator(b0, Terminator::Ret(None));
        let errors = Verifier::new(&f).run_all();
        assert!(
            errors
                .iter()
                .any(|e| matches!(e, VerifyError::BadCallee(_))),
            "{errors:?}"
        );
    }

    #[test]
    fn non_call_with_callee_name_reported() {
        let mut f = Function::new("bad");
        let b0 = f.add_block();
        f.set_entry(b0);
        let v = f.new_vreg();
        f.push_inst(
            b0,
            Inst {
                op: Opcode::Const,
                dst: Some(v),
                srcs: vec![],
                imm: Some(1),
                slot: None,
                callee: Some("ghost".to_string()),
            },
        );
        f.set_terminator(b0, Terminator::Ret(None));
        let errors = Verifier::new(&f).run_all();
        assert!(
            errors
                .iter()
                .any(|e| matches!(e, VerifyError::BadCallee(_))),
            "{errors:?}"
        );
    }

    #[test]
    fn module_with_resolved_calls_verifies() {
        let m = crate::Module::from_functions([ret_param("leaf"), call_one("main", "leaf", 1)])
            .unwrap();
        assert!(verify_module(&m).is_ok());
        assert!(verify_module_all(&m).is_empty());
    }

    #[test]
    fn unknown_callee_rejected() {
        let m = crate::Module::from_functions([call_one("main", "ghost", 1)]).unwrap();
        let e = verify_module(&m).unwrap_err();
        assert_eq!(
            e,
            VerifyError::UnknownCallee {
                function: "main".to_string(),
                callee: "ghost".to_string(),
            }
        );
        assert!(e.to_string().contains("@ghost"), "{e}");
    }

    #[test]
    fn call_arity_mismatch_rejected() {
        let m = crate::Module::from_functions([ret_param("leaf"), call_one("main", "leaf", 2)])
            .unwrap();
        let e = verify_module(&m).unwrap_err();
        assert_eq!(
            e,
            VerifyError::CallArityMismatch {
                function: "main".to_string(),
                callee: "leaf".to_string(),
                expected: 1,
                actual: 2,
            }
        );
        assert!(e.to_string().contains("expected 1"), "{e}");
    }

    #[test]
    fn self_recursion_rejected() {
        let m = crate::Module::from_functions([call_one("loopy", "loopy", 1)]).unwrap();
        let e = verify_module(&m).unwrap_err();
        assert_eq!(
            e,
            VerifyError::RecursiveCall {
                cycle: vec!["loopy".to_string()],
            }
        );
        assert!(e.to_string().contains("@loopy"), "{e}");
    }

    #[test]
    fn mutual_recursion_rejected() {
        let m =
            crate::Module::from_functions([call_one("even", "odd", 1), call_one("odd", "even", 1)])
                .unwrap();
        let e = verify_module(&m).unwrap_err();
        assert_eq!(
            e,
            VerifyError::RecursiveCall {
                cycle: vec!["even".to_string(), "odd".to_string()],
            }
        );
    }

    #[test]
    fn error_display_is_informative() {
        let e = VerifyError::UseBeforeDef {
            block: BlockId::new(2),
            reg: VReg::new(7),
        };
        assert!(e.to_string().contains("%7"));
        assert!(e.to_string().contains("block2"));
    }

    use crate::entities::{BlockId, VReg};
}
