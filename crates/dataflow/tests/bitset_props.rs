//! Property tests for the dense bit set — the fact domain every
//! bit-vector analysis stands on.

use proptest::prelude::*;
use tadfa_dataflow::DenseBitSet;

const CAP: usize = 192; // three words, exercises boundaries

fn arb_set() -> impl Strategy<Value = DenseBitSet> {
    prop::collection::vec(0usize..CAP, 0..64).prop_map(|values| {
        let mut s = DenseBitSet::new(CAP);
        s.extend(values);
        s
    })
}

proptest! {
    #[test]
    fn union_is_commutative_and_idempotent(a in arb_set(), b in arb_set()) {
        let mut ab = a.clone();
        ab.union_with(&b);
        let mut ba = b.clone();
        ba.union_with(&a);
        prop_assert_eq!(&ab, &ba);
        // Idempotent.
        let mut again = ab.clone();
        prop_assert!(!again.union_with(&b));
        prop_assert_eq!(&again, &ab);
    }

    #[test]
    fn intersection_distributes_over_union(
        a in arb_set(), b in arb_set(), c in arb_set()
    ) {
        // a ∩ (b ∪ c) == (a ∩ b) ∪ (a ∩ c)
        let mut bc = b.clone();
        bc.union_with(&c);
        let mut lhs = a.clone();
        lhs.intersect_with(&bc);

        let mut ab = a.clone();
        ab.intersect_with(&b);
        let mut ac = a.clone();
        ac.intersect_with(&c);
        let mut rhs = ab;
        rhs.union_with(&ac);

        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn subtraction_then_union_restores_superset(a in arb_set(), b in arb_set()) {
        // (a − b) ∪ (a ∩ b) == a
        let mut diff = a.clone();
        diff.subtract(&b);
        let mut inter = a.clone();
        inter.intersect_with(&b);
        let mut back = diff;
        back.union_with(&inter);
        prop_assert_eq!(back, a);
    }

    #[test]
    fn count_matches_iterator_and_membership(a in arb_set()) {
        let elems: Vec<usize> = a.iter().collect();
        prop_assert_eq!(elems.len(), a.count());
        for &e in &elems {
            prop_assert!(a.contains(e));
        }
        // Sorted ascending, no duplicates.
        prop_assert!(elems.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn subset_relations(a in arb_set(), b in arb_set()) {
        let mut u = a.clone();
        u.union_with(&b);
        prop_assert!(a.is_subset(&u));
        prop_assert!(b.is_subset(&u));
        let mut i = a.clone();
        i.intersect_with(&b);
        prop_assert!(i.is_subset(&a));
        prop_assert!(i.is_subset(&b));
        let mut d = a.clone();
        d.subtract(&b);
        prop_assert!(d.is_disjoint(&b));
    }

    #[test]
    fn insert_remove_roundtrip(a in arb_set(), v in 0usize..CAP) {
        let mut s = a.clone();
        let was_in = s.contains(v);
        s.insert(v);
        prop_assert!(s.contains(v));
        prop_assert!(s.remove(v));
        prop_assert!(!s.contains(v));
        if was_in {
            prop_assert_eq!(s.count() + 1, a.count());
        } else {
            prop_assert_eq!(s.count(), a.count());
        }
    }
}
