//! The thermal state: per-cell temperatures plus the distance and summary
//! metrics every experiment reports.

use crate::floorplan::Floorplan;
use crate::lanes::{LANES, W8};
use serde::{Deserialize, Serialize};

/// Temperatures (Kelvin) of every floorplan cell at one point in time.
///
/// This is the dataflow *fact* of the paper's analysis — "a discrete set
/// of points" approximating the continuous thermal field (§3).
///
/// # Examples
///
/// ```
/// use tadfa_thermal::ThermalState;
/// let mut s = ThermalState::uniform(4, 318.15);
/// s.set(2, 330.0);
/// assert_eq!(s.peak(), 330.0);
/// assert!(s.mean() > 318.0);
/// ```
#[derive(PartialEq, Debug, Serialize, Deserialize)]
pub struct ThermalState {
    temps: Vec<f64>,
}

// Manual impl so `clone_from` reuses the destination's allocation
// (`Vec::clone_from` keeps the buffer; the trait default would drop and
// reallocate). The DFA's steady-state sweeps lean on this: every
// per-sweep `clone_from` into walker/entry/merge destinations must be
// a copy, not an allocation.
impl Clone for ThermalState {
    fn clone(&self) -> ThermalState {
        ThermalState {
            temps: self.temps.clone(),
        }
    }

    fn clone_from(&mut self, source: &ThermalState) {
        self.temps.clone_from(&source.temps);
    }
}

impl ThermalState {
    /// All cells at the same temperature.
    pub fn uniform(num_cells: usize, temp: f64) -> ThermalState {
        ThermalState {
            temps: vec![temp; num_cells],
        }
    }

    /// Wraps an explicit temperature vector.
    pub fn from_vec(temps: Vec<f64>) -> ThermalState {
        ThermalState { temps }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.temps.len()
    }

    /// Whether the state has no cells.
    pub fn is_empty(&self) -> bool {
        self.temps.is_empty()
    }

    /// Temperature of cell `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> f64 {
        self.temps[i]
    }

    /// Sets the temperature of cell `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, t: f64) {
        self.temps[i] = t;
    }

    /// The raw temperature slice.
    pub fn temps(&self) -> &[f64] {
        &self.temps
    }

    /// Mutable access to the raw temperatures (used by solvers).
    pub fn temps_mut(&mut self) -> &mut [f64] {
        &mut self.temps
    }

    /// Resets to `num_cells` cells all at `temp`, reusing the existing
    /// allocation when possible (the compiled steady-state solver's
    /// re-initialization path).
    pub fn reset_uniform(&mut self, num_cells: usize, temp: f64) {
        self.temps.clear();
        self.temps.resize(num_cells, temp);
    }

    /// Swaps the temperature vector with a caller-owned buffer — the
    /// compiled transient solver's zero-copy double-buffering.
    pub(crate) fn swap_buffer(&mut self, buf: &mut Vec<f64>) {
        std::mem::swap(&mut self.temps, buf);
    }

    /// Hottest cell temperature.
    pub fn peak(&self) -> f64 {
        self.temps.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Coolest cell temperature.
    pub fn min(&self) -> f64 {
        self.temps.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Hottest cell temperature inside `[start, end)` — the per-tile
    /// sensor a multi-core scheduler's DTM controller reads (each core
    /// is a contiguous cell range of the die state).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn peak_in(&self, start: usize, end: usize) -> f64 {
        self.temps[start..end]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Index of the hottest cell (first if tied).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &t) in self.temps.iter().enumerate() {
            if t > self.temps[best] {
                best = i;
            }
        }
        best
    }

    /// Mean temperature.
    pub fn mean(&self) -> f64 {
        if self.temps.is_empty() {
            return f64::NAN;
        }
        self.temps.iter().sum::<f64>() / self.temps.len() as f64
    }

    /// Population standard deviation — the spatial-uniformity metric
    /// (chessboard should minimise it).
    pub fn stddev(&self) -> f64 {
        if self.temps.is_empty() {
            return f64::NAN;
        }
        let m = self.mean();
        (self.temps.iter().map(|t| (t - m) * (t - m)).sum::<f64>() / self.temps.len() as f64).sqrt()
    }

    /// Steepest temperature difference between 4-connected neighbour
    /// cells — the paper's "steep thermal gradients" reliability metric.
    ///
    /// # Panics
    ///
    /// Panics if `fp` has a different number of cells.
    pub fn max_gradient(&self, fp: &Floorplan) -> f64 {
        assert_eq!(
            fp.num_cells(),
            self.temps.len(),
            "floorplan/state size mismatch"
        );
        let mut g: f64 = 0.0;
        for i in 0..self.temps.len() {
            for j in fp.neighbors(i) {
                g = g.max((self.temps[i] - self.temps[j]).abs());
            }
        }
        g
    }

    /// L∞ distance to another state — the per-instruction "change in
    /// thermal state" compared against δ in Fig. 2.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[inline]
    pub fn linf_distance(&self, other: &ThermalState) -> f64 {
        assert_eq!(self.temps.len(), other.temps.len(), "state size mismatch");
        self.temps
            .iter()
            .zip(&other.temps)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Fused [`linf_distance`](ThermalState::linf_distance) +
    /// `clone_from`: returns the L∞ distance to `other` while copying
    /// `other`'s temperatures into `self`, in one pass and without
    /// allocating. The fixpoint's per-instruction bookkeeping
    /// (compare-against-previous, then remember) runs through this.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[inline]
    pub fn linf_update_from(&mut self, other: &ThermalState) -> f64 {
        ThermalState::linf_update_slices(&mut self.temps, &other.temps)
    }

    /// [`linf_update_from`](ThermalState::linf_update_from) over raw
    /// slices — the one implementation of the fixpoint's fused
    /// compare-and-copy, shared by every state store (including the
    /// DFA's flat per-instruction matrix) so the bit-identity-critical
    /// fold exists exactly once.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[inline]
    pub fn linf_update_slices(prev: &mut [f64], new: &[f64]) -> f64 {
        assert_eq!(prev.len(), new.len(), "state size mismatch");
        // Explicit 8-wide lanes break the serial `max` dependency chain
        // (the fixpoint's single hottest non-solver pass). `f64::max`
        // is exactly associative and commutative on the non-NaN values
        // it keeps, so the lane split cannot change the result; the
        // per-lane `(a − b).abs()` is the scalar expression verbatim
        // (negation and sign-clear are exact).
        let mut acc = W8::splat(0.0);
        let mut scalar = 0.0f64;
        let n = prev.len();
        let mut i = 0;
        while i + LANES <= n {
            let nv = W8::read(&new[i..]);
            let pv = W8::read(&prev[i..]);
            acc = acc.max(nv.sub(pv).abs());
            nv.write(&mut prev[i..]);
            i += LANES;
        }
        for (a, &b) in prev[i..].iter_mut().zip(&new[i..]) {
            scalar = scalar.max((*a - b).abs());
            *a = b;
        }
        acc.reduce_max().max(scalar)
    }

    /// Root-mean-square distance to another state (accuracy metric for
    /// prediction-vs-simulation comparisons).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn rms_distance(&self, other: &ThermalState) -> f64 {
        assert_eq!(self.temps.len(), other.temps.len(), "state size mismatch");
        if self.temps.is_empty() {
            return 0.0;
        }
        (self
            .temps
            .iter()
            .zip(&other.temps)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / self.temps.len() as f64)
            .sqrt()
    }

    /// Pearson correlation with another state (shape-similarity metric;
    /// `NaN` if either state is spatially constant).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn pearson(&self, other: &ThermalState) -> f64 {
        assert_eq!(self.temps.len(), other.temps.len(), "state size mismatch");
        let n = self.temps.len() as f64;
        let ma = self.mean();
        let mb = other.mean();
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for (a, b) in self.temps.iter().zip(&other.temps) {
            cov += (a - ma) * (b - mb);
            va += (a - ma) * (a - ma);
            vb += (b - mb) * (b - mb);
        }
        cov / n / ((va / n).sqrt() * (vb / n).sqrt())
    }

    /// Element-wise maximum with another state (the conservative merge of
    /// the thermal DFA).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn max_with(&mut self, other: &ThermalState) {
        assert_eq!(self.temps.len(), other.temps.len(), "state size mismatch");
        for (a, b) in self.temps.iter_mut().zip(&other.temps) {
            *a = a.max(*b);
        }
    }

    /// Accumulates `other * weight` into `self` (used by averaging
    /// merges).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn add_scaled(&mut self, other: &ThermalState, weight: f64) {
        assert_eq!(self.temps.len(), other.temps.len(), "state size mismatch");
        for (a, b) in self.temps.iter_mut().zip(&other.temps) {
            *a += b * weight;
        }
    }

    /// Multiplies every cell by `factor`.
    pub fn scale(&mut self, factor: f64) {
        for t in &mut self.temps {
            *t *= factor;
        }
    }
}

/// Summary statistics of one thermal map — the row format of every
/// experiment table.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct MapStats {
    /// Hottest cell, K.
    pub peak: f64,
    /// Coolest cell, K.
    pub min: f64,
    /// Mean temperature, K.
    pub mean: f64,
    /// Spatial standard deviation, K.
    pub stddev: f64,
    /// Steepest neighbour-to-neighbour difference, K.
    pub max_gradient: f64,
}

impl MapStats {
    /// Computes all summary statistics of `state` over `fp`.
    pub fn of(state: &ThermalState, fp: &Floorplan) -> MapStats {
        MapStats {
            peak: state.peak(),
            min: state.min(),
            mean: state.mean(),
            stddev: state.stddev(),
            max_gradient: state.max_gradient(fp),
        }
    }

    /// Peak-to-valley spread, K.
    pub fn range(&self) -> f64 {
        self.peak - self.min
    }
}

impl std::fmt::Display for MapStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "peak {:.2} K  min {:.2} K  mean {:.2} K  σ {:.3} K  ∇max {:.3} K",
            self.peak, self.min, self.mean, self.stddev, self.max_gradient
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_state_stats() {
        let s = ThermalState::uniform(16, 300.0);
        assert_eq!(s.peak(), 300.0);
        assert_eq!(s.min(), 300.0);
        assert_eq!(s.mean(), 300.0);
        assert_eq!(s.stddev(), 0.0);
        let fp = Floorplan::grid(4, 4);
        assert_eq!(s.max_gradient(&fp), 0.0);
    }

    #[test]
    fn hotspot_metrics() {
        let fp = Floorplan::grid(2, 2);
        let mut s = ThermalState::uniform(4, 300.0);
        s.set(3, 310.0);
        assert_eq!(s.peak(), 310.0);
        assert_eq!(s.argmax(), 3);
        assert_eq!(s.max_gradient(&fp), 10.0);
        assert!((s.mean() - 302.5).abs() < 1e-12);
        let stats = MapStats::of(&s, &fp);
        assert_eq!(stats.range(), 10.0);
        assert!(stats.stddev > 4.0 && stats.stddev < 4.5);
    }

    #[test]
    fn peak_in_reads_only_the_requested_tile() {
        let mut s = ThermalState::uniform(8, 300.0);
        s.set(1, 330.0); // core 0 hotspot
        s.set(6, 311.0); // core 1 hotspot
        assert_eq!(s.peak_in(0, 4), 330.0);
        assert_eq!(s.peak_in(4, 8), 311.0);
        assert_eq!(s.peak_in(0, 8), s.peak());
    }

    #[test]
    fn distances() {
        let a = ThermalState::from_vec(vec![300.0, 301.0, 302.0]);
        let b = ThermalState::from_vec(vec![300.0, 303.0, 302.5]);
        assert_eq!(a.linf_distance(&b), 2.0);
        assert!((a.rms_distance(&b) - ((0.0 + 4.0 + 0.25f64) / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(a.linf_distance(&a), 0.0);
    }

    #[test]
    fn linf_update_from_measures_then_copies() {
        let mut a = ThermalState::from_vec(vec![300.0, 301.0, 302.0]);
        let b = ThermalState::from_vec(vec![300.0, 303.0, 302.5]);
        let d = a.linf_update_from(&b);
        assert_eq!(d, 2.0, "matches linf_distance");
        assert_eq!(a.temps(), b.temps(), "and copies");
        assert_eq!(a.linf_update_from(&b), 0.0);
    }

    #[test]
    fn pearson_correlation_detects_shape() {
        let a = ThermalState::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        let mut b = a.clone();
        b.scale(2.0);
        assert!((a.pearson(&b) - 1.0).abs() < 1e-12);
        let inv = ThermalState::from_vec(vec![4.0, 3.0, 2.0, 1.0]);
        assert!((a.pearson(&inv) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_operations() {
        let mut a = ThermalState::from_vec(vec![300.0, 310.0]);
        let b = ThermalState::from_vec(vec![305.0, 305.0]);
        a.max_with(&b);
        assert_eq!(a.temps(), &[305.0, 310.0]);

        let mut acc = ThermalState::uniform(2, 0.0);
        acc.add_scaled(&b, 0.5);
        acc.add_scaled(&b, 0.5);
        assert_eq!(acc.temps(), &[305.0, 305.0]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn distance_size_mismatch_panics() {
        let a = ThermalState::uniform(2, 300.0);
        let b = ThermalState::uniform(3, 300.0);
        let _ = a.linf_distance(&b);
    }

    #[test]
    fn display_stats() {
        let fp = Floorplan::grid(1, 2);
        let s = ThermalState::from_vec(vec![300.0, 310.0]);
        let text = MapStats::of(&s, &fp).to_string();
        assert!(text.contains("peak 310.00"));
    }
}
