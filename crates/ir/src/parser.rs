//! Parser for the textual IR format produced by the printer.
//!
//! The grammar (one item per line, `#` starts a comment):
//!
//! ```text
//! func @name(%0, %1) {
//!   slot data[64]
//! block0:
//!   %2 = const 10
//!   %3 = add %0, %1
//!   %4 = load data[%2]
//!   store data[%2], %3
//!   nop
//!   br %3, block1, block2
//! block1:
//!   jump block0
//! block2:
//!   ret %4
//! }
//! ```

use crate::entities::{BlockId, MemSlot, VReg};
use crate::function::Function;
use crate::inst::{Inst, Opcode, Terminator};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error produced when parsing textual IR fails.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Parses a single function from its textual form.
///
/// Virtual register numbers in the text are preserved: `%7` in the text is
/// `VReg::new(7)` in the result, and the function's register count is one
/// past the highest number mentioned.
///
/// # Errors
///
/// Returns a [`ParseError`] carrying the 1-based line number on malformed
/// input: unknown mnemonics, bad operand counts, unknown slots or labels,
/// missing terminators, duplicate block labels.
///
/// # Examples
///
/// ```
/// let src = "func @id(%0) {\nblock0:\n  ret %0\n}";
/// let f = tadfa_ir::parse_function(src)?;
/// assert_eq!(f.name(), "id");
/// assert_eq!(f.num_blocks(), 1);
/// # Ok::<(), tadfa_ir::ParseError>(())
/// ```
pub fn parse_function(src: &str) -> Result<Function, ParseError> {
    let mut lines = src
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, strip_comment(l).trim()))
        .filter(|(_, l)| !l.is_empty());

    let (header_line, header) = match lines.next() {
        Some(x) => x,
        None => return err(0, "empty input"),
    };
    let (name, params) = parse_header(header_line, header)?;

    let mut func = Function::new(name);
    let mut max_vreg: i64 = -1;
    for p in &params {
        max_vreg = max_vreg.max(p.index() as i64);
    }

    // First pass: collect block labels and slot declarations in order so
    // forward references resolve.
    let body: Vec<(usize, &str)> = lines.collect();
    let mut block_names: HashMap<String, BlockId> = HashMap::new();
    let mut slot_names: HashMap<String, MemSlot> = HashMap::new();
    let mut saw_close = false;
    for &(ln, line) in &body {
        if saw_close {
            return err(ln, "content after closing '}'");
        }
        if line == "}" {
            saw_close = true;
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let label = label.trim();
            if block_names.contains_key(label) {
                return err(ln, format!("duplicate block label '{label}'"));
            }
            let bb = func.add_block();
            block_names.insert(label.to_string(), bb);
        } else if let Some(rest) = line.strip_prefix("slot ") {
            let (sname, size) = parse_slot_decl(ln, rest)?;
            if slot_names.contains_key(&sname) {
                return err(ln, format!("duplicate slot '{sname}'"));
            }
            let slot = func.add_slot(sname.clone(), size);
            slot_names.insert(sname, slot);
        }
    }
    if !saw_close {
        return err(
            body.last().map(|&(l, _)| l).unwrap_or(header_line),
            "missing closing '}'",
        );
    }
    if block_names.is_empty() {
        return err(header_line, "function has no blocks");
    }

    // Second pass: fill blocks.
    let mut current: Option<BlockId> = None;
    let mut first_block: Option<BlockId> = None;
    for &(ln, line) in &body {
        if line == "}" {
            break;
        }
        if let Some(label) = line.strip_suffix(':') {
            let bb = block_names[label.trim()];
            if first_block.is_none() {
                first_block = Some(bb);
            }
            current = Some(bb);
            continue;
        }
        if line.starts_with("slot ") {
            continue;
        }
        let bb = match current {
            Some(bb) => bb,
            None => return err(ln, "instruction before any block label"),
        };
        if func.terminator(bb).is_some() {
            return err(ln, "instruction after block terminator");
        }
        match parse_line(ln, line, &block_names, &slot_names)? {
            Parsed::Inst(inst) => {
                track_max(&inst, &mut max_vreg);
                func.push_inst(bb, inst);
            }
            Parsed::Term(t) => {
                for u in t.uses() {
                    max_vreg = max_vreg.max(u.index() as i64);
                }
                func.set_terminator(bb, t);
            }
        }
    }

    // Reserve vreg numbers up to the maximum mentioned.
    while (func.num_vregs() as i64) <= max_vreg {
        func.new_vreg();
    }
    func.set_params(params);
    let entry = first_block.expect("checked: at least one block");
    func.set_entry(entry);
    Ok(func)
}

/// Parses a whole module: any number of `func @name(...) { ... }`
/// definitions separated by blank lines or comments.
///
/// Function order in the text is preserved. Reported error lines are
/// relative to the whole module source.
///
/// # Errors
///
/// Returns a [`ParseError`] for malformed functions (as
/// [`parse_function`] would), for text outside any function body, and
/// for duplicate function names.
///
/// # Examples
///
/// ```
/// let src = "\
/// func @leaf(%0) {
/// block0:
///   ret %0
/// }
///
/// func @main(%0) {
/// block0:
///   %1 = call @leaf(%0)
///   ret %1
/// }
/// ";
/// let m = tadfa_ir::parse_module(src)?;
/// assert_eq!(m.len(), 2);
/// assert!(m.function("leaf").is_some());
/// # Ok::<(), tadfa_ir::ParseError>(())
/// ```
pub fn parse_module(src: &str) -> Result<crate::Module, ParseError> {
    let mut module = crate::Module::new();
    // Split the source into chunks, one per top-level `func` header,
    // tracking each chunk's starting line so errors keep module-relative
    // line numbers.
    let mut chunk_start: Option<usize> = None; // 0-based line index
    let mut depth_closed = true;
    let lines: Vec<&str> = src.lines().collect();
    let mut chunks: Vec<(usize, usize)> = Vec::new(); // (start, end) 0-based, end exclusive
    for (i, raw) in lines.iter().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with("func ") || line.starts_with("func@") {
            if !depth_closed {
                return err(i + 1, "function header before previous '}'");
            }
            chunk_start = Some(i);
            depth_closed = false;
        } else if chunk_start.is_none() {
            return err(i + 1, format!("text outside any function: '{line}'"));
        } else if line == "}" {
            if depth_closed {
                return err(i + 1, "unmatched '}'");
            }
            chunks.push((chunk_start.expect("inside a function"), i + 1));
            depth_closed = true;
        }
    }
    if !depth_closed {
        return err(lines.len(), "missing closing '}'");
    }
    for (start, end) in chunks {
        let chunk = lines[start..end].join("\n");
        let f = parse_function(&chunk).map_err(|e| ParseError {
            line: e.line + start,
            message: e.message,
        })?;
        let name = f.name().to_string();
        if module.push(f).is_err() {
            return err(start + 1, format!("duplicate function '@{name}'"));
        }
    }
    Ok(module)
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn track_max(inst: &Inst, max_vreg: &mut i64) {
    if let Some(d) = inst.def() {
        *max_vreg = (*max_vreg).max(d.index() as i64);
    }
    for u in inst.uses() {
        *max_vreg = (*max_vreg).max(u.index() as i64);
    }
}

fn parse_header(ln: usize, line: &str) -> Result<(String, Vec<VReg>), ParseError> {
    let rest = match line.strip_prefix("func @") {
        Some(r) => r,
        None => return err(ln, "expected 'func @name(...) {'"),
    };
    let open = match rest.find('(') {
        Some(i) => i,
        None => return err(ln, "expected '(' in function header"),
    };
    let name = rest[..open].trim().to_string();
    if name.is_empty() {
        return err(ln, "empty function name");
    }
    let close = match rest.find(')') {
        Some(i) => i,
        None => return err(ln, "expected ')' in function header"),
    };
    if !rest[close + 1..].trim_start().starts_with('{') {
        return err(ln, "expected '{' after parameter list");
    }
    let params_src = rest[open + 1..close].trim();
    let mut params = Vec::new();
    if !params_src.is_empty() {
        for p in params_src.split(',') {
            params.push(parse_vreg(ln, p.trim())?);
        }
    }
    Ok((name, params))
}

fn parse_slot_decl(ln: usize, rest: &str) -> Result<(String, usize), ParseError> {
    // rest looks like `name[size]`
    let open = match rest.find('[') {
        Some(i) => i,
        None => return err(ln, "expected '[' in slot declaration"),
    };
    let close = match rest.find(']') {
        Some(i) => i,
        None => return err(ln, "expected ']' in slot declaration"),
    };
    let name = rest[..open].trim().to_string();
    if name.is_empty() {
        return err(ln, "empty slot name");
    }
    let size: usize = match rest[open + 1..close].trim().parse() {
        Ok(s) => s,
        Err(_) => return err(ln, "invalid slot size"),
    };
    Ok((name, size))
}

fn parse_vreg(ln: usize, tok: &str) -> Result<VReg, ParseError> {
    let digits = match tok.strip_prefix('%') {
        Some(d) => d,
        None => return err(ln, format!("expected virtual register, got '{tok}'")),
    };
    match digits.parse::<u32>() {
        Ok(n) => Ok(VReg::new(n)),
        Err(_) => err(ln, format!("invalid register number '{tok}'")),
    }
}

fn parse_block_ref(
    ln: usize,
    tok: &str,
    blocks: &HashMap<String, BlockId>,
) -> Result<BlockId, ParseError> {
    match blocks.get(tok.trim()) {
        Some(&bb) => Ok(bb),
        None => err(ln, format!("unknown block label '{tok}'")),
    }
}

enum Parsed {
    Inst(Inst),
    Term(Terminator),
}

fn parse_line(
    ln: usize,
    line: &str,
    blocks: &HashMap<String, BlockId>,
    slots: &HashMap<String, MemSlot>,
) -> Result<Parsed, ParseError> {
    // Terminators.
    if let Some(rest) = line.strip_prefix("jump ") {
        return Ok(Parsed::Term(Terminator::Jump(parse_block_ref(
            ln, rest, blocks,
        )?)));
    }
    if let Some(rest) = line.strip_prefix("br ") {
        let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
        if parts.len() != 3 {
            return err(ln, "br expects 'br %c, blockA, blockB'");
        }
        return Ok(Parsed::Term(Terminator::Branch {
            cond: parse_vreg(ln, parts[0])?,
            then_dest: parse_block_ref(ln, parts[1], blocks)?,
            else_dest: parse_block_ref(ln, parts[2], blocks)?,
        }));
    }
    if line == "ret" {
        return Ok(Parsed::Term(Terminator::Ret(None)));
    }
    if let Some(rest) = line.strip_prefix("ret ") {
        return Ok(Parsed::Term(Terminator::Ret(Some(parse_vreg(
            ln,
            rest.trim(),
        )?))));
    }
    if line == "nop" {
        return Ok(Parsed::Inst(Inst::nop()));
    }
    // Store: `store name[%i], %v`
    if let Some(rest) = line.strip_prefix("store ") {
        let comma = match rest.rfind(',') {
            Some(i) => i,
            None => return err(ln, "store expects 'store name[%i], %v'"),
        };
        let (slot, index) = parse_mem_ref(ln, rest[..comma].trim(), slots)?;
        let value = parse_vreg(ln, rest[comma + 1..].trim())?;
        return Ok(Parsed::Inst(Inst::store(slot, index, value)));
    }
    // Everything else: `%d = <op> ...`
    let eq = match line.find('=') {
        Some(i) => i,
        None => return err(ln, format!("unrecognised statement '{line}'")),
    };
    let dst = parse_vreg(ln, line[..eq].trim())?;
    let rhs = line[eq + 1..].trim();
    if let Some(rest) = rhs.strip_prefix("const ") {
        let imm: i64 = match rest.trim().parse() {
            Ok(v) => v,
            Err(_) => return err(ln, format!("invalid constant '{rest}'")),
        };
        return Ok(Parsed::Inst(Inst::konst(dst, imm)));
    }
    if let Some(rest) = rhs.strip_prefix("load ") {
        let (slot, index) = parse_mem_ref(ln, rest.trim(), slots)?;
        return Ok(Parsed::Inst(Inst::load(dst, slot, index)));
    }
    // Call: `%d = call @name(%a, %b)`
    if let Some(rest) = rhs.strip_prefix("call ") {
        let rest = rest.trim();
        let rest = match rest.strip_prefix('@') {
            Some(r) => r,
            None => return err(ln, format!("call expects '@callee(...)', got '{rest}'")),
        };
        let open = match rest.find('(') {
            Some(i) => i,
            None => return err(ln, "expected '(' after callee name"),
        };
        let close = match rest.rfind(')') {
            Some(i) if i >= open => i,
            _ => return err(ln, "expected closing ')' in call"),
        };
        let callee = rest[..open].trim();
        if callee.is_empty() {
            return err(ln, "empty callee name");
        }
        if !rest[close + 1..].trim().is_empty() {
            return err(ln, "unexpected text after call argument list");
        }
        let args_src = rest[open + 1..close].trim();
        let args: Vec<VReg> = if args_src.is_empty() {
            Vec::new()
        } else {
            args_src
                .split(',')
                .map(|a| parse_vreg(ln, a.trim()))
                .collect::<Result<_, _>>()?
        };
        return Ok(Parsed::Inst(Inst::call(dst, callee, args)));
    }
    let (mnemonic, args) = match rhs.find(' ') {
        Some(i) => (&rhs[..i], rhs[i + 1..].trim()),
        None => (rhs, ""),
    };
    let op = match Opcode::from_mnemonic(mnemonic) {
        Some(op) => op,
        None => return err(ln, format!("unknown opcode '{mnemonic}'")),
    };
    if op.has_variable_srcs() {
        return err(ln, format!("{op} expects '{op} @callee(...)' syntax"));
    }
    let srcs: Vec<VReg> = if args.is_empty() {
        Vec::new()
    } else {
        args.split(',')
            .map(|a| parse_vreg(ln, a.trim()))
            .collect::<Result<_, _>>()?
    };
    if srcs.len() != op.num_srcs() {
        return err(
            ln,
            format!("{op} expects {} sources, got {}", op.num_srcs(), srcs.len()),
        );
    }
    if !op.has_dst() {
        return err(ln, format!("{op} does not produce a value"));
    }
    Ok(Parsed::Inst(Inst {
        op,
        dst: Some(dst),
        srcs,
        imm: None,
        slot: None,
        callee: None,
    }))
}

fn parse_mem_ref(
    ln: usize,
    tok: &str,
    slots: &HashMap<String, MemSlot>,
) -> Result<(MemSlot, VReg), ParseError> {
    let open = match tok.find('[') {
        Some(i) => i,
        None => return err(ln, format!("expected 'name[%i]', got '{tok}'")),
    };
    let close = match tok.find(']') {
        Some(i) => i,
        None => return err(ln, format!("expected closing ']' in '{tok}'")),
    };
    let name = tok[..open].trim();
    let slot = match slots.get(name) {
        Some(&s) => s,
        None => return err(ln, format!("unknown slot '{name}'")),
    };
    let index = parse_vreg(ln, tok[open + 1..close].trim())?;
    Ok((slot, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verifier::Verifier;

    const ROUNDTRIP_SRC: &str = "\
func @kernel(%0, %1) {
  slot data[64]
block0:
  %2 = const 10
  %3 = add %0, %1
  %4 = load data[%2]
  store data[%2], %3
  nop
  br %3, block1, block2
block1:
  %5 = mul %4, %3
  jump block2
block2:
  ret %4
}
";

    #[test]
    fn parses_and_verifies() {
        let f = parse_function(ROUNDTRIP_SRC).unwrap();
        assert_eq!(f.name(), "kernel");
        assert_eq!(f.num_blocks(), 3);
        assert_eq!(f.params().len(), 2);
        assert_eq!(f.slots().len(), 1);
        assert!(Verifier::new(&f).run().is_ok());
    }

    #[test]
    fn print_parse_print_is_stable() {
        let f1 = parse_function(ROUNDTRIP_SRC).unwrap();
        let text1 = f1.to_string();
        let f2 = parse_function(&text1).unwrap();
        let text2 = f2.to_string();
        assert_eq!(text1, text2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "\
# a full-line comment
func @c(%0) {

block0:   # trailing comment
  %1 = mov %0   # copy
  ret %1
}
";
        let f = parse_function(src).unwrap();
        assert_eq!(f.num_insts(), 1);
    }

    #[test]
    fn forward_block_references_resolve() {
        let src = "func @f(%0) {\nblock0:\n  jump later\nlater:\n  ret\n}";
        let f = parse_function(src).unwrap();
        assert_eq!(f.num_blocks(), 2);
    }

    #[test]
    fn ret_without_value() {
        let f = parse_function("func @v() {\nblock0:\n  ret\n}").unwrap();
        assert!(matches!(
            f.terminator(f.entry()),
            Some(Terminator::Ret(None))
        ));
    }

    fn expect_err(src: &str, needle: &str) {
        let e = parse_function(src).unwrap_err();
        assert!(
            e.message.contains(needle),
            "expected error containing '{needle}', got '{}' (line {})",
            e.message,
            e.line
        );
    }

    #[test]
    fn error_corpus() {
        expect_err("", "empty input");
        expect_err("fn @x() {\nblock0:\n ret\n}", "expected 'func");
        expect_err(
            "func @x() {\nblock0:\n  %1 = frob %0\n  ret\n}",
            "unknown opcode",
        );
        expect_err(
            "func @x() {\nblock0:\n  %1 = add %0\n  ret\n}",
            "expects 2 sources",
        );
        expect_err(
            "func @x() {\nblock0:\n  jump nowhere\n}",
            "unknown block label",
        );
        expect_err("func @x() {\nblock0:\n  ret\n", "missing closing");
        expect_err(
            "func @x() {\nblock0:\nblock0:\n  ret\n}",
            "duplicate block label",
        );
        expect_err(
            "func @x() {\n  %1 = const 2\nblock0:\n  ret\n}",
            "before any block",
        );
        expect_err(
            "func @x() {\nblock0:\n  ret\n  %1 = const 2\n}",
            "after block terminator",
        );
        expect_err(
            "func @x() {\nblock0:\n  %1 = load buf[%0]\n  ret\n}",
            "unknown slot",
        );
        expect_err(
            "func @x() {\nblock0:\n  %1 = const abc\n  ret\n}",
            "invalid constant",
        );
        expect_err("func @x() {\nblock0:\n  br %0, a\n}", "br expects");
        expect_err("func @x() {\n}", "no blocks");
    }

    #[test]
    fn line_numbers_are_reported() {
        let e = parse_function("func @x() {\nblock0:\n  %1 = bogus %0\n  ret\n}").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn vreg_numbering_is_preserved() {
        let f = parse_function("func @p(%5) {\nblock0:\n  %9 = mov %5\n  ret %9\n}").unwrap();
        assert_eq!(f.num_vregs(), 10);
        assert_eq!(f.params()[0], VReg::new(5));
    }
}
