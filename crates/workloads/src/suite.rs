//! The standard workload suite used by examples, integration tests and
//! the experiment binaries.

use crate::generator::{generate, GeneratorConfig};
use crate::kernels::{
    bubble_sort, butterfly, checksum, dot_product, fibonacci, fir, histogram, matmul, popcount,
    saxpy, stencil, Workload,
};

/// The ten hand-built kernels at their canonical sizes.
pub fn standard_suite() -> Vec<Workload> {
    vec![
        matmul(5),
        fir(16, 4),
        dot_product(24),
        fibonacci(),
        checksum(32),
        bubble_sort(12),
        stencil(20),
        saxpy(16),
        histogram(64),
        butterfly(),
        popcount(),
    ]
}

/// A pressure ladder of generated programs: one per requested pressure
/// level, sharing every other generator parameter. The E2 input.
pub fn pressure_ladder(levels: &[usize], seed: u64) -> Vec<(usize, tadfa_ir::Function)> {
    levels
        .iter()
        .map(|&p| {
            let f = generate(&GeneratorConfig {
                seed: seed.wrapping_add(p as u64),
                pressure: p,
                ..GeneratorConfig::default()
            });
            (p, f)
        })
        .collect()
}

/// A batch of irregular programs for convergence stressing (E3).
pub fn irregular_batch(count: usize, seed: u64) -> Vec<tadfa_ir::Function> {
    (0..count)
        .map(|k| {
            generate(&GeneratorConfig {
                seed: seed.wrapping_add(k as u64).wrapping_mul(0x9E37_79B9),
                segments: 8,
                loops: 3,
                exprs_per_segment: 10,
                pressure: 10,
                memory: true,
                ..GeneratorConfig::default()
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tadfa_ir::Verifier;
    use tadfa_sim::Interpreter;

    #[test]
    fn suite_has_eleven_distinct_kernels() {
        let suite = standard_suite();
        assert_eq!(suite.len(), 11);
        let names: std::collections::BTreeSet<&str> = suite.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 11, "names unique");
    }

    #[test]
    fn whole_suite_verifies_and_runs() {
        for w in standard_suite() {
            assert!(Verifier::new(&w.func).run().is_ok(), "{}", w.name);
            let mut interp = Interpreter::new(&w.func).with_fuel(50_000_000);
            for (slot, data) in &w.preload {
                interp = interp.with_slot_data(*slot, data.clone());
            }
            let r = interp.run(&w.args).unwrap();
            if let Some(e) = w.expected {
                assert_eq!(r.ret, Some(e), "{}", w.name);
            }
        }
    }

    #[test]
    fn pressure_ladder_is_ascending() {
        let ladder = pressure_ladder(&[2, 8, 14], 42);
        assert_eq!(ladder.len(), 3);
        assert_eq!(ladder[0].0, 2);
        assert_eq!(ladder[2].0, 14);
        for (_, f) in &ladder {
            assert!(Verifier::new(f).run().is_ok());
        }
    }

    #[test]
    fn irregular_batch_verifies() {
        for f in irregular_batch(5, 7) {
            assert!(Verifier::new(&f).run().is_ok());
        }
    }
}
