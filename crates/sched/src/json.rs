//! A minimal JSON reader for the machine-readable artifacts this
//! workspace exchanges with CI: scenario specs, scenario reports, and
//! the `BENCH_*.json` files the perf-trend gate compares.
//!
//! The build container has no crates.io access, so instead of
//! `serde_json` this is a small recursive-descent parser over the JSON
//! grammar (objects, arrays, strings with the standard escapes,
//! numbers, booleans, null). Object member order is preserved — report
//! diffs stay byte-stable.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always an `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, members in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Escapes a string into a JSON string literal (quotes, backslashes,
/// control characters) — the one escaping rule every JSON writer in
/// this workspace shares, so reports and bench files can never drift
/// byte-wise from each other.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number with Rust's shortest round-trip
/// formatting; non-finite values become `null` (JSON has no NaN/∞).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A parse failure with its byte offset.
#[derive(Clone, PartialEq, Debug)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first problem.
pub fn parse(src: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(format!("malformed number '{text}'")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("malformed \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by any file
                            // this workspace writes; map them to the
                            // replacement character instead of failing.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(self.err(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(b) if b < 0x80 => {
                    // ASCII fast path: no UTF-8 validation per byte.
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(lead) => {
                    // Multi-byte UTF-8 sequences pass through verbatim;
                    // validate only the one sequence, not the whole
                    // remaining document.
                    let len = match lead {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    let seq = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push_str(seq);
                    self.pos += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_report_shapes() {
        let v = parse(
            r#"{"name": "q", "cores": 4, "ok": true, "none": null,
                "xs": [1, -2.5, 3e-4], "nested": {"s": "a\"b\n"}}"#,
        )
        .unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("q"));
        assert_eq!(v.get("cores").unwrap().as_f64(), Some(4.0));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("none"), Some(&JsonValue::Null));
        let xs = v.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[2].as_f64(), Some(3e-4));
        assert_eq!(
            v.get("nested").unwrap().get("s").unwrap().as_str(),
            Some("a\"b\n")
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a"]);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "{\"a\": 1} x",
            "\"unterminated",
            "{\"a\": 00x}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn roundtrips_unicode_and_escapes() {
        let v = parse("\"h\\u0041t é\"").unwrap();
        assert_eq!(v.as_str(), Some("hAt é"));
    }
}
