//! Register access traces — the raw material of feedback-driven thermal
//! evaluation.

use serde::{Deserialize, Serialize};
use tadfa_ir::PReg;

/// Direction of a register-file access.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum AccessKind {
    /// Register read (operand fetch).
    Read,
    /// Register write (result write-back).
    Write,
}

/// One register-file access at a specific cycle.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AccessEvent {
    /// Cycle the access occurs in.
    pub cycle: u64,
    /// The physical register touched.
    pub reg: PReg,
    /// Read or write.
    pub kind: AccessKind,
}

/// A chronological register access trace.
///
/// # Examples
///
/// ```
/// use tadfa_sim::{AccessTrace, AccessEvent, AccessKind};
/// use tadfa_ir::PReg;
///
/// let mut t = AccessTrace::new();
/// t.push(AccessEvent { cycle: 0, reg: PReg::new(1), kind: AccessKind::Read });
/// t.push(AccessEvent { cycle: 3, reg: PReg::new(1), kind: AccessKind::Write });
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.reads_of(PReg::new(1)), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct AccessTrace {
    events: Vec<AccessEvent>,
}

impl AccessTrace {
    /// An empty trace.
    pub fn new() -> AccessTrace {
        AccessTrace::default()
    }

    /// Appends an event. Events must be pushed in non-decreasing cycle
    /// order (the interpreter guarantees this).
    pub fn push(&mut self, event: AccessEvent) {
        debug_assert!(
            self.events.last().is_none_or(|e| e.cycle <= event.cycle),
            "trace events out of order"
        );
        self.events.push(event);
    }

    /// All events in chronological order.
    pub fn events(&self) -> &[AccessEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The last cycle mentioned, or 0 for an empty trace.
    pub fn last_cycle(&self) -> u64 {
        self.events.last().map_or(0, |e| e.cycle)
    }

    /// Read count of one register.
    pub fn reads_of(&self, reg: PReg) -> u64 {
        self.events
            .iter()
            .filter(|e| e.reg == reg && e.kind == AccessKind::Read)
            .count() as u64
    }

    /// Write count of one register.
    pub fn writes_of(&self, reg: PReg) -> u64 {
        self.events
            .iter()
            .filter(|e| e.reg == reg && e.kind == AccessKind::Write)
            .count() as u64
    }

    /// `(reads, writes)` per register index, sized to cover the largest
    /// register mentioned (or `num_regs` if larger).
    pub fn counts(&self, num_regs: usize) -> (Vec<u64>, Vec<u64>) {
        let max_reg = self
            .events
            .iter()
            .map(|e| e.reg.index() + 1)
            .max()
            .unwrap_or(0)
            .max(num_regs);
        let mut reads = vec![0u64; max_reg];
        let mut writes = vec![0u64; max_reg];
        for e in &self.events {
            match e.kind {
                AccessKind::Read => reads[e.reg.index()] += 1,
                AccessKind::Write => writes[e.reg.index()] += 1,
            }
        }
        (reads, writes)
    }

    /// Iterates over `[start, end)` cycle windows, yielding per-register
    /// `(reads, writes)` for each window — the co-simulator's input.
    pub fn windows(&self, window: u64, num_regs: usize) -> Windows<'_> {
        assert!(window > 0, "window must be positive");
        Windows {
            trace: self,
            window,
            num_regs,
            pos: 0,
            next_start: 0,
        }
    }

    /// The register with the most total accesses, if any.
    pub fn hottest_reg(&self) -> Option<PReg> {
        let (reads, writes) = self.counts(0);
        (0..reads.len())
            .max_by_key(|&i| reads[i] + writes[i])
            .filter(|&i| reads[i] + writes[i] > 0)
            .map(|i| PReg::new(i as u16))
    }
}

/// Iterator over fixed-size cycle windows of a trace, produced by
/// [`AccessTrace::windows`].
#[derive(Debug)]
pub struct Windows<'a> {
    trace: &'a AccessTrace,
    window: u64,
    num_regs: usize,
    pos: usize,
    next_start: u64,
}

/// Per-window access summary.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WindowCounts {
    /// First cycle of the window (inclusive).
    pub start: u64,
    /// One past the last cycle of the window.
    pub end: u64,
    /// Reads per register index.
    pub reads: Vec<u64>,
    /// Writes per register index.
    pub writes: Vec<u64>,
}

impl Iterator for Windows<'_> {
    type Item = WindowCounts;

    fn next(&mut self) -> Option<WindowCounts> {
        if self.pos >= self.trace.events.len() {
            return None;
        }
        let start = self.next_start;
        let end = start + self.window;
        let mut reads = vec![0u64; self.num_regs];
        let mut writes = vec![0u64; self.num_regs];
        while self.pos < self.trace.events.len() {
            let e = self.trace.events[self.pos];
            if e.cycle >= end {
                break;
            }
            match e.kind {
                AccessKind::Read => reads[e.reg.index()] += 1,
                AccessKind::Write => writes[e.reg.index()] += 1,
            }
            self.pos += 1;
        }
        self.next_start = end;
        Some(WindowCounts {
            start,
            end,
            reads,
            writes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(cycle: u64, reg: u16, kind: AccessKind) -> AccessEvent {
        AccessEvent {
            cycle,
            reg: PReg::new(reg),
            kind,
        }
    }

    #[test]
    fn counts_per_register() {
        let mut t = AccessTrace::new();
        t.push(mk(0, 0, AccessKind::Read));
        t.push(mk(0, 0, AccessKind::Read));
        t.push(mk(1, 0, AccessKind::Write));
        t.push(mk(2, 3, AccessKind::Write));
        let (r, w) = t.counts(4);
        assert_eq!(r, vec![2, 0, 0, 0]);
        assert_eq!(w, vec![1, 0, 0, 1]);
        assert_eq!(t.reads_of(PReg::new(0)), 2);
        assert_eq!(t.writes_of(PReg::new(3)), 1);
        assert_eq!(t.last_cycle(), 2);
        assert_eq!(t.hottest_reg(), Some(PReg::new(0)));
    }

    #[test]
    fn windows_partition_the_trace() {
        let mut t = AccessTrace::new();
        for c in 0..10 {
            t.push(mk(c, (c % 2) as u16, AccessKind::Read));
        }
        let ws: Vec<WindowCounts> = t.windows(4, 2).collect();
        assert_eq!(ws.len(), 3);
        assert_eq!(ws[0].start, 0);
        assert_eq!(ws[0].end, 4);
        assert_eq!(ws[0].reads.iter().sum::<u64>(), 4);
        assert_eq!(ws[2].reads.iter().sum::<u64>(), 2);
        // Total events preserved.
        let total: u64 = ws.iter().map(|w| w.reads.iter().sum::<u64>()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn empty_trace_behaviour() {
        let t = AccessTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.last_cycle(), 0);
        assert_eq!(t.hottest_reg(), None);
        assert_eq!(t.windows(10, 4).count(), 0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let t = AccessTrace::new();
        let _ = t.windows(0, 1);
    }
}
