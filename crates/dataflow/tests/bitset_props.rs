//! Property tests for the dense bit set — the fact domain every
//! bit-vector analysis stands on.
//!
//! (Seeded-loop style: the offline build has no proptest, so cases are
//! drawn from the workspace's deterministic `rand` stub.)

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tadfa_dataflow::DenseBitSet;

const CAP: usize = 192; // three words, exercises boundaries
const CASES: usize = 64;

fn arb_set(rng: &mut StdRng) -> DenseBitSet {
    let n = rng.gen_range(0usize..64);
    let mut s = DenseBitSet::new(CAP);
    s.extend((0..n).map(|_| rng.gen_range(0usize..CAP)));
    s
}

#[test]
fn union_is_commutative_and_idempotent() {
    let mut rng = StdRng::seed_from_u64(0xB1);
    for case in 0..CASES {
        let a = arb_set(&mut rng);
        let b = arb_set(&mut rng);
        let mut ab = a.clone();
        ab.union_with(&b);
        let mut ba = b.clone();
        ba.union_with(&a);
        assert_eq!(&ab, &ba, "case {case}");
        // Idempotent.
        let mut again = ab.clone();
        assert!(!again.union_with(&b), "case {case}");
        assert_eq!(&again, &ab, "case {case}");
    }
}

#[test]
fn intersection_distributes_over_union() {
    let mut rng = StdRng::seed_from_u64(0xB2);
    for case in 0..CASES {
        let a = arb_set(&mut rng);
        let b = arb_set(&mut rng);
        let c = arb_set(&mut rng);
        // a ∩ (b ∪ c) == (a ∩ b) ∪ (a ∩ c)
        let mut bc = b.clone();
        bc.union_with(&c);
        let mut lhs = a.clone();
        lhs.intersect_with(&bc);

        let mut ab = a.clone();
        ab.intersect_with(&b);
        let mut ac = a.clone();
        ac.intersect_with(&c);
        let mut rhs = ab;
        rhs.union_with(&ac);

        assert_eq!(lhs, rhs, "case {case}");
    }
}

#[test]
fn subtraction_then_union_restores_superset() {
    let mut rng = StdRng::seed_from_u64(0xB3);
    for case in 0..CASES {
        let a = arb_set(&mut rng);
        let b = arb_set(&mut rng);
        // (a − b) ∪ (a ∩ b) == a
        let mut diff = a.clone();
        diff.subtract(&b);
        let mut inter = a.clone();
        inter.intersect_with(&b);
        let mut back = diff;
        back.union_with(&inter);
        assert_eq!(back, a, "case {case}");
    }
}

#[test]
fn count_matches_iterator_and_membership() {
    let mut rng = StdRng::seed_from_u64(0xB4);
    for case in 0..CASES {
        let a = arb_set(&mut rng);
        let elems: Vec<usize> = a.iter().collect();
        assert_eq!(elems.len(), a.count(), "case {case}");
        for &e in &elems {
            assert!(a.contains(e), "case {case}");
        }
        // Sorted ascending, no duplicates.
        assert!(elems.windows(2).all(|w| w[0] < w[1]), "case {case}");
    }
}

#[test]
fn subset_relations() {
    let mut rng = StdRng::seed_from_u64(0xB5);
    for case in 0..CASES {
        let a = arb_set(&mut rng);
        let b = arb_set(&mut rng);
        let mut u = a.clone();
        u.union_with(&b);
        assert!(a.is_subset(&u), "case {case}");
        assert!(b.is_subset(&u), "case {case}");
        let mut i = a.clone();
        i.intersect_with(&b);
        assert!(i.is_subset(&a), "case {case}");
        assert!(i.is_subset(&b), "case {case}");
        let mut d = a.clone();
        d.subtract(&b);
        assert!(d.is_disjoint(&b), "case {case}");
    }
}

#[test]
fn insert_remove_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xB6);
    for case in 0..CASES {
        let a = arb_set(&mut rng);
        let v = rng.gen_range(0usize..CAP);
        let mut s = a.clone();
        let was_in = s.contains(v);
        s.insert(v);
        assert!(s.contains(v), "case {case}");
        assert!(s.remove(v), "case {case}");
        assert!(!s.contains(v), "case {case}");
        if was_in {
            assert_eq!(s.count() + 1, a.count(), "case {case}");
        } else {
            assert_eq!(s.count(), a.count(), "case {case}");
        }
    }
}
