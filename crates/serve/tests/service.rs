//! Acceptance tests for the persistent analysis service:
//!
//! * **golden equality** — a warm server answers every committed
//!   scenario with the fingerprint its committed golden report
//!   records, cold and warm, serially and under concurrent handling
//!   (the tentpole's determinism contract, in-process);
//! * **backpressure** — with no workers draining, requests beyond the
//!   admission queue's capacity get an immediate `queue-full` error
//!   (never a hang), and the backlog still drains once workers start;
//! * **protocol edges** — malformed lines, unknown scenarios, and
//!   expired deadlines all come back as clean, correlated errors;
//! * **end to end** — the real `tadfa-load` binary replays the
//!   committed scenarios against a spawned `tadfa-serve` in pipe mode
//!   at 1 and 4 client concurrency (exactly what the CI smoke job
//!   runs).

use std::io::Cursor;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use tadfa_serve::protocol::{kind, parse_request, parse_response};
use tadfa_serve::{Server, ServerConfig, Sink};

/// The committed scenario specs, shared with the offline CLI and CI.
fn scenario_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn server(queue_capacity: usize, service_workers: usize) -> Server {
    Server::load(&ServerConfig {
        scenario_dir: scenario_dir(),
        queue_capacity,
        service_workers,
        ..ServerConfig::default()
    })
    .expect("committed scenarios load")
}

/// The `fingerprint` field of a committed golden report.
fn golden_fingerprint(stem: &str) -> String {
    let path = scenario_dir().join("golden").join(format!("{stem}.json"));
    let text = std::fs::read_to_string(&path).expect("golden readable");
    tadfa_sched::json::parse(&text)
        .expect("golden parses")
        .get("fingerprint")
        .and_then(|v| v.as_str().map(str::to_string))
        .expect("golden has a fingerprint")
}

fn run_request(id: u64, stem: &str, workers: Option<usize>) -> tadfa_serve::Request {
    let workers = workers.map_or(String::new(), |w| format!(", \"workers\": {w}"));
    parse_request(&format!(
        "{{\"id\": {id}, \"op\": \"run-scenario\", \"scenario\": \"{stem}\"{workers}}}"
    ))
    .expect("well-formed request")
}

/// A sink capturing every response line for assertions.
fn capture() -> (Sink, Arc<Mutex<Vec<u8>>>) {
    #[derive(Clone)]
    struct Shared(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let buf = Arc::new(Mutex::new(Vec::new()));
    (tadfa_serve::sink(Shared(Arc::clone(&buf))), buf)
}

fn captured_lines(buf: &Arc<Mutex<Vec<u8>>>) -> Vec<String> {
    String::from_utf8(buf.lock().unwrap().clone())
        .expect("utf8 responses")
        .lines()
        .map(str::to_string)
        .collect()
}

#[test]
fn warm_concurrent_service_matches_offline_goldens() {
    let server = server(64, 2);
    let stems: Vec<String> = server
        .scenario_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert!(
        stems.len() >= 5,
        "committed scenario set present: {stems:?}"
    );

    // Cold pass, then a cache-warm pass with a different per-request
    // worker count: every fingerprint equals the committed golden.
    for round in 0..2 {
        for (i, stem) in stems.iter().enumerate() {
            let workers = if round == 0 { None } else { Some(1) };
            let line = server.handle(&run_request(i as u64, stem, workers), Instant::now());
            let resp = parse_response(&line).expect("response parses");
            assert!(resp.ok, "round {round} {stem}: {line}");
            assert_eq!(
                resp.fingerprint.as_deref().expect("fingerprint present"),
                golden_fingerprint(stem),
                "round {round} {stem}"
            );
        }
    }

    // Concurrent pass: 4 client threads hammer the same warm server;
    // every response still matches its golden byte for byte.
    std::thread::scope(|scope| {
        for t in 0..4 {
            let server = &server;
            let stems = &stems;
            scope.spawn(move || {
                for (i, stem) in stems.iter().enumerate() {
                    let id = (100 + t * stems.len() + i) as u64;
                    let line = server.handle(&run_request(id, stem, None), Instant::now());
                    let resp = parse_response(&line).expect("response parses");
                    assert!(resp.ok, "thread {t} {stem}: {line}");
                    assert_eq!(
                        resp.fingerprint.as_deref().unwrap(),
                        golden_fingerprint(stem),
                        "thread {t} {stem}"
                    );
                }
            });
        }
    });

    // The warm passes actually hit the cache.
    let stats = server.handle(
        &parse_request(r#"{"id": 999, "op": "stats"}"#).unwrap(),
        Instant::now(),
    );
    let stats = parse_response(&stats).unwrap();
    let scenarios = stats.doc.get("scenarios").unwrap().as_array().unwrap();
    assert_eq!(scenarios.len(), stems.len());
    let total_hits: f64 = scenarios
        .iter()
        .map(|s| {
            s.get("cache")
                .and_then(|c| c.get("hits"))
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0)
        })
        .sum();
    assert!(total_hits > 0.0, "warm rounds hit the solve cache");
}

#[test]
fn backpressure_rejects_cleanly_and_backlog_still_drains() {
    // Capacity 2, and crucially no workers draining while requests
    // flood in: everything beyond 2 must be rejected immediately.
    let server = server(2, 1);
    let stem = server.scenario_names()[0].to_string();
    let flood: String = (0..10)
        .map(|i| format!("{{\"id\": {i}, \"op\": \"run-scenario\", \"scenario\": \"{stem}\"}}\n"))
        .collect();
    let (out, buf) = capture();
    let shutdown = server
        .attach(Cursor::new(flood.into_bytes()), &out)
        .expect("in-memory reader");
    assert!(!shutdown, "EOF, not shutdown");

    let rejected = captured_lines(&buf);
    assert_eq!(rejected.len(), 8, "10 requests, 2 slots: {rejected:?}");
    for line in &rejected {
        let resp = parse_response(line).expect("rejection parses");
        assert!(!resp.ok);
        assert_eq!(resp.error.as_deref(), Some(kind::QUEUE_FULL));
        assert!(resp.id.is_some(), "rejections stay correlated: {line}");
    }
    let q = server.queue_stats();
    assert_eq!((q.accepted, q.rejected, q.depth), (2, 8, 2));

    // Once workers start and the queue closes, the admitted backlog
    // drains to completion — rejected requests lost nothing but a slot.
    let workers = server.start_workers(1);
    server.close();
    for w in workers {
        w.join().expect("worker exits at close");
    }
    let all = captured_lines(&buf);
    assert_eq!(all.len(), 10, "every request answered exactly once");
    let ok_count = all.iter().filter(|l| parse_response(l).unwrap().ok).count();
    assert_eq!(ok_count, 2, "both admitted requests completed");
    assert_eq!(server.queue_stats().depth, 0);

    // A request arriving after close is told the service is going
    // away — not "retry later".
    let late = format!("{{\"id\": 99, \"op\": \"run-scenario\", \"scenario\": \"{stem}\"}}\n");
    let (out, buf) = capture();
    server.attach(Cursor::new(late.into_bytes()), &out).unwrap();
    let lines = captured_lines(&buf);
    let resp = parse_response(&lines[0]).unwrap();
    assert_eq!(resp.error.as_deref(), Some(kind::SHUTTING_DOWN));
}

#[test]
fn protocol_edges_answer_with_correlated_errors() {
    let server = server(8, 1);
    let stem = server.scenario_names()[0].to_string();

    // Unknown scenario.
    let line = server.handle(&run_request(1, "no-such-scenario", None), Instant::now());
    let resp = parse_response(&line).unwrap();
    assert!(!resp.ok);
    assert_eq!(resp.error.as_deref(), Some(kind::UNKNOWN_SCENARIO));
    assert!(
        resp.message.unwrap().contains(&stem),
        "error lists what is loaded"
    );

    // Expired deadline: clean error, and the server still works after.
    let req = parse_request(&format!(
        "{{\"id\": 2, \"op\": \"run-scenario\", \"scenario\": \"{stem}\", \"deadline_ms\": 0}}"
    ))
    .unwrap();
    // Admitted an hour ago, so the 0 ms deadline has long passed.
    let admitted = Instant::now() - std::time::Duration::from_secs(3600);
    let resp = parse_response(&server.handle(&req, admitted)).unwrap();
    assert_eq!(resp.error.as_deref(), Some(kind::DEADLINE_EXCEEDED));
    let resp =
        parse_response(&server.handle(&run_request(3, &stem, None), Instant::now())).unwrap();
    assert!(resp.ok, "deadline abandonment leaves the engine healthy");

    // Malformed lines through the reader: correlated when possible.
    let input = "not json\n{\"id\": 7, \"op\": \"nope\"}\n{\"id\": 8, \"op\": \"ping\"}\n";
    let (out, buf) = capture();
    server
        .attach(Cursor::new(input.as_bytes().to_vec()), &out)
        .unwrap();
    let lines = captured_lines(&buf);
    assert_eq!(lines.len(), 3);
    let bad = parse_response(&lines[0]).unwrap();
    assert_eq!(
        (bad.id, bad.error.as_deref()),
        (None, Some(kind::BAD_REQUEST))
    );
    let bad = parse_response(&lines[1]).unwrap();
    assert_eq!(
        (bad.id, bad.error.as_deref()),
        (Some(7), Some(kind::BAD_REQUEST))
    );
    let pong = parse_response(&lines[2]).unwrap();
    assert!(pong.ok, "ping bypasses the queue: {}", lines[2]);
}

#[test]
fn analyze_reuses_a_scenario_environment_deterministically() {
    let server = server(8, 1);
    let stem = server.scenario_names()[0].to_string();
    let source = "func @probe(%0) {\nblock0:\n  %1 = mul %0, %0\n  %2 = add %1, %0\n  ret %2\n}\n";
    let line = format!(
        "{{\"id\": 1, \"op\": \"analyze\", \"scenario\": \"{stem}\", \"source\": {}}}",
        tadfa_sched::json::escape(source)
    );
    let req = parse_request(&line).unwrap();
    let a = parse_response(&server.handle(&req, Instant::now())).unwrap();
    assert!(a.ok, "analyze succeeds");
    assert_eq!(a.doc.get("function").unwrap().as_str(), Some("probe"));
    assert!(a.doc.get("peak_k").unwrap().as_f64().unwrap() > 0.0);
    // Same source, warm cache: identical fingerprint.
    let b = parse_response(&server.handle(&req, Instant::now())).unwrap();
    assert_eq!(a.fingerprint, b.fingerprint);

    // Unparseable source is an analysis error, not a panic.
    let req = parse_request(&format!(
        "{{\"id\": 2, \"op\": \"analyze\", \"scenario\": \"{stem}\", \"source\": \"garbage\"}}"
    ))
    .unwrap();
    let resp = parse_response(&server.handle(&req, Instant::now())).unwrap();
    assert_eq!(resp.error.as_deref(), Some(kind::ANALYSIS_FAILED));
}

#[test]
fn analyze_module_summarises_callees_and_reports_summary_stats() {
    let server = server(8, 1);
    let stem = server.scenario_names()[0].to_string();
    let source = "func @hot(%0) {\nblock0:\n  %1 = mul %0, %0\n  %2 = mul %1, %1\n  ret %2\n}\n\n\
                  func @caller(%0) {\nblock0:\n  %1 = call @hot(%0)\n  %2 = add %1, %0\n  ret %2\n}\n";
    let line = format!(
        "{{\"id\": 1, \"op\": \"analyze-module\", \"scenario\": \"{stem}\", \"source\": {}}}",
        tadfa_sched::json::escape(source)
    );
    let req = parse_request(&line).unwrap();
    let a = parse_response(&server.handle(&req, Instant::now())).unwrap();
    assert!(a.ok, "analyze-module succeeds: {a:?}");
    let names: Vec<&str> = a
        .doc
        .get("functions")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_str().unwrap())
        .collect();
    assert_eq!(names, ["hot", "caller"], "module order");
    assert!(a.doc.get("peak_k").unwrap().as_f64().unwrap() > 0.0);
    assert_eq!(a.doc.get("converged").unwrap().as_bool(), Some(true));
    // Same module, warm cache: identical fingerprint.
    let b = parse_response(&server.handle(&req, Instant::now())).unwrap();
    assert_eq!(a.fingerprint, b.fingerprint);

    // A recursive module is a clean analysis error, not a hang.
    let rec = "func @loop(%0) {\nblock0:\n  %1 = call @loop(%0)\n  ret %1\n}\n";
    let req = parse_request(&format!(
        "{{\"id\": 2, \"op\": \"analyze-module\", \"scenario\": \"{stem}\", \"source\": {}}}",
        tadfa_sched::json::escape(rec)
    ))
    .unwrap();
    let resp = parse_response(&server.handle(&req, Instant::now())).unwrap();
    assert_eq!(resp.error.as_deref(), Some(kind::ANALYSIS_FAILED));
    assert!(resp.message.unwrap().contains("recursi"), "names the cycle");

    // The stats response surfaces the summary-cache counters and the
    // module-analyze count.
    let stats = server.handle(
        &parse_request(r#"{"id": 9, "op": "stats"}"#).unwrap(),
        Instant::now(),
    );
    let stats = parse_response(&stats).unwrap();
    let scenarios = stats.doc.get("scenarios").unwrap().as_array().unwrap();
    let env = scenarios
        .iter()
        .find(|s| s.get("name").and_then(|v| v.as_str()) == Some(stem.as_str()))
        .expect("stats lists the scenario");
    assert_eq!(
        env.get("module_analyzes").and_then(|v| v.as_f64()),
        Some(2.0)
    );
    let cache = env.get("cache").unwrap();
    assert!(cache.get("summary_stores").unwrap().as_f64().unwrap() >= 1.0);
    assert!(
        cache.get("summary_hits").unwrap().as_f64().unwrap() >= 1.0,
        "the warm repeat reused the memoized summary"
    );
}

/// The CI smoke job, in-tree: the real binaries, pipe mode, 1 and 4
/// client concurrency, every committed scenario, golden-diffed.
#[test]
fn load_client_replays_goldens_through_a_spawned_server() {
    let scenarios = scenario_dir();
    for concurrency in ["1", "4"] {
        let status = std::process::Command::new(env!("CARGO_BIN_EXE_tadfa-load"))
            .arg("--spawn")
            .arg(env!("CARGO_BIN_EXE_tadfa-serve"))
            .arg("--scenarios")
            .arg(&scenarios)
            .args(["--concurrency", concurrency, "--repeat", "2"])
            .status()
            .expect("tadfa-load spawns");
        assert!(
            status.success(),
            "tadfa-load --concurrency {concurrency} failed: {status}"
        );
    }
}
