//! Compact binary codec for cache spill records.
//!
//! The persistent solve-cache tier (the service's on-disk segment
//! files) round-trips whole [`ThermalDfaResult`]s and
//! [`ThermalSummary`]s through this codec. The encoding is **exact**:
//! every `f64` travels as its IEEE-754 bit pattern
//! (`to_bits`/`from_bits`), so a result loaded from disk is
//! byte-identical to the result that was spilled — the same
//! bit-identity contract the in-memory cache keeps
//! (quantum 0), extended across process restarts.
//!
//! The format is deliberately dumb: little-endian fixed-width
//! integers, length-prefixed sequences, no compression, no
//! self-description beyond a per-record version byte. Robustness
//! against torn or corrupted files lives one layer up, in the
//! service's segment store (checksummed records); this layer only
//! needs to refuse, with a typed [`CodecError`], anything that does
//! not decode cleanly — it must never panic on hostile bytes, which
//! the decoder's bounds-checked reads guarantee.
//!
//! [`ThermalDfaResult`]: crate::ThermalDfaResult
//! [`ThermalSummary`]: crate::ThermalSummary

use std::fmt;

/// The codec version stamped into every spill record. Bump on any
/// layout change: old segments then decode as [`CodecError::Version`]
/// and are skipped (re-solved and re-spilled), never misread.
pub const CODEC_VERSION: u8 = 1;

/// A decode failure — always an error value, never a panic, because
/// the bytes may come from a truncated or bit-flipped segment file.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// The buffer ended before the value being read.
    Truncated {
        /// Bytes the read needed.
        need: usize,
        /// Bytes that remained.
        have: usize,
    },
    /// An enum/option tag byte held an undefined value.
    BadTag(u8),
    /// A length prefix was implausible (would overrun the buffer).
    BadLength(u64),
    /// The record was written by an incompatible codec version.
    Version(u8),
    /// Bytes remained after the value decoded — the record frame and
    /// the payload disagree about its size.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { need, have } => {
                write!(f, "record truncated: needed {need} bytes, had {have}")
            }
            CodecError::BadTag(t) => write!(f, "undefined tag byte {t:#04x}"),
            CodecError::BadLength(n) => write!(f, "implausible length prefix {n}"),
            CodecError::Version(v) => write!(
                f,
                "codec version {v} is not the supported version {CODEC_VERSION}"
            ),
            CodecError::TrailingBytes(n) => {
                write!(f, "{n} trailing byte(s) after a complete record")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// An append-only little-endian byte sink.
#[derive(Default, Debug)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u128`.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its exact IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// A bounds-checked little-endian byte source over untrusted input.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of buffer.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when fewer than 4 bytes remain.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when fewer than 8 bytes remain.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a little-endian `u128`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when fewer than 16 bytes remain.
    pub fn get_u128(&mut self) -> Result<u128, CodecError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("16")))
    }

    /// Reads an `f64` from its exact bit pattern.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when fewer than 8 bytes remain.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Validates a sequence length prefix against the bytes that are
    /// actually present: each element needs at least `min_elem_bytes`,
    /// so a flipped high bit in a length cannot trigger a huge
    /// allocation before the truncation is noticed.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadLength`] when the claimed length cannot fit.
    pub fn checked_len(&self, n: u64, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let need = (n as usize).checked_mul(min_elem_bytes.max(1));
        match need {
            Some(need) if need <= self.remaining() => Ok(n as usize),
            _ => Err(CodecError::BadLength(n)),
        }
    }

    /// Asserts the buffer is fully consumed.
    ///
    /// # Errors
    ///
    /// [`CodecError::TrailingBytes`] when bytes remain.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_widths() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_u128(0x0123_4567_89AB_CDEF_0123_4567_89AB_CDEF);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(
            r.get_u128().unwrap(),
            0x0123_4567_89AB_CDEF_0123_4567_89AB_CDEF
        );
        // Exact bits: -0.0 stays -0.0, NaN keeps its payload.
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f64().unwrap().to_bits(), f64::NAN.to_bits());
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.put_u32(5);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u64(), Err(CodecError::Truncated { need: 8, have: 4 }));
        let mut r = ByteReader::new(&bytes[..2]);
        assert!(matches!(r.get_u32(), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn length_prefixes_are_sanity_checked() {
        let r = ByteReader::new(&[0u8; 16]);
        assert_eq!(r.checked_len(2, 8), Ok(2));
        assert_eq!(r.checked_len(3, 8), Err(CodecError::BadLength(3)));
        assert_eq!(
            r.checked_len(u64::MAX, 8),
            Err(CodecError::BadLength(u64::MAX))
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.finish(), Err(CodecError::TrailingBytes(3)));
    }
}
