//! Spill-code rewriting: demoting virtual registers to memory slots.
//!
//! Spilling is also one of the paper's *thermal* optimizations ("the
//! greatest benefit will be achieved by spilling these critical variables
//! to memory", §4); `tadfa-opt` reuses this rewriter for that purpose.

use tadfa_ir::{Function, Inst, VReg};

/// Rewrites `func` so that each register in `spilled` lives in its own
/// memory slot:
///
/// * a `store` is inserted after every definition (and at function entry
///   for spilled parameters);
/// * every use is replaced by a fresh temporary fed by a `load` inserted
///   just before the using instruction (or before the terminator).
///
/// The spilled register's live range shrinks to the def→store pairs; the
/// temporaries live for one or two instructions each.
///
/// Returns the number of instructions inserted.
pub fn rewrite_spills(func: &mut Function, spilled: &[VReg]) -> usize {
    let mut inserted = 0;
    for &v in spilled {
        let slot = func.add_slot(format!("spill.{}", v.index()), 1);

        for bb in func.block_ids().collect::<Vec<_>>() {
            let mut pos = 0;
            while pos < func.block(bb).insts().len() {
                let id = func.block(bb).insts()[pos];
                let uses_v = func.inst(id).uses().contains(&v);
                if uses_v {
                    let t_idx = func.new_vreg();
                    let t_val = func.new_vreg();
                    func.insert_inst(bb, pos, Inst::konst(t_idx, 0));
                    func.insert_inst(bb, pos + 1, Inst::load(t_val, slot, t_idx));
                    inserted += 2;
                    pos += 2;
                    func.inst_mut(id).replace_uses(v, t_val);
                }
                if func.inst(id).def() == Some(v) {
                    // Rename the definition to a fresh register so the
                    // spilled value's live range is fully shredded: with
                    // hull-based intervals a multi-def register would
                    // otherwise keep a function-spanning range and be
                    // re-spilled forever.
                    let t_def = func.new_vreg();
                    func.inst_mut(id).replace_def(v, t_def);
                    let t_idx = func.new_vreg();
                    func.insert_inst(bb, pos + 1, Inst::konst(t_idx, 0));
                    func.insert_inst(bb, pos + 2, Inst::store(slot, t_idx, t_def));
                    inserted += 2;
                    pos += 2;
                }
                pos += 1;
            }
            // Terminator uses.
            if let Some(t) = func.terminator(bb) {
                if t.uses().contains(&v) {
                    let t_idx = func.new_vreg();
                    let t_val = func.new_vreg();
                    let end = func.block(bb).insts().len();
                    func.insert_inst(bb, end, Inst::konst(t_idx, 0));
                    func.insert_inst(bb, end + 1, Inst::load(t_val, slot, t_idx));
                    inserted += 2;
                    func.terminator_mut(bb)
                        .expect("checked above")
                        .replace_uses(v, t_val);
                }
            }
        }

        // Spilled parameters must be stored on entry. Done after the use
        // rewriting so this store (which legitimately reads `v`) is not
        // itself rewritten.
        if func.params().contains(&v) {
            let entry = func.entry();
            let t_idx = func.new_vreg();
            func.insert_inst(entry, 0, Inst::konst(t_idx, 0));
            func.insert_inst(entry, 1, Inst::store(slot, t_idx, v));
            inserted += 2;
        }
    }
    inserted
}

#[cfg(test)]
mod tests {
    use super::*;
    use tadfa_ir::{Cfg, FunctionBuilder, Opcode, Verifier};

    #[test]
    fn spilled_value_roundtrips_through_memory() {
        let mut b = FunctionBuilder::new("s");
        let x = b.param();
        let y = b.add(x, x);
        let z = b.add(y, x);
        b.ret(Some(z));
        let mut f = b.finish();

        let n = rewrite_spills(&mut f, &[x]);
        assert!(n >= 6, "store at entry + loads before both uses");
        assert!(Verifier::new(&f).run().is_ok(), "{f}");
        // x appears only in the entry store now.
        let uses_of_x: usize = f
            .inst_ids_in_layout_order()
            .iter()
            .map(|&(_, id)| f.inst(id).uses().iter().filter(|&&u| u == x).count())
            .sum();
        assert_eq!(uses_of_x, 1, "only the entry store reads x directly");
        assert!(f.slot_by_name("spill.0").is_some());
    }

    #[test]
    fn def_gets_store_after_it() {
        let mut b = FunctionBuilder::new("d");
        let a = b.param();
        let v = b.add(a, a);
        let w = b.add(v, a);
        b.ret(Some(w));
        let mut f = b.finish();
        rewrite_spills(&mut f, &[v]);
        assert!(Verifier::new(&f).run().is_ok(), "{f}");
        // Pattern: ... add(def v) ; const ; store ... load before use.
        let entry = f.entry();
        let ops: Vec<Opcode> = f
            .block(entry)
            .insts()
            .iter()
            .map(|&i| f.inst(i).op)
            .collect();
        let def_pos = ops.iter().position(|&o| o == Opcode::Add).unwrap();
        assert_eq!(ops[def_pos + 1], Opcode::Const);
        assert_eq!(ops[def_pos + 2], Opcode::Store);
        assert!(ops.contains(&Opcode::Load));
    }

    #[test]
    fn terminator_use_is_reloaded() {
        let mut b = FunctionBuilder::new("t");
        let x = b.param();
        b.ret(Some(x));
        let mut f = b.finish();
        rewrite_spills(&mut f, &[x]);
        assert!(Verifier::new(&f).run().is_ok(), "{f}");
        // The ret now uses a fresh temp, not x.
        let t = f.terminator(f.entry()).unwrap();
        assert_ne!(t.uses(), vec![x]);
        let entry_ops: Vec<Opcode> = f
            .block(f.entry())
            .insts()
            .iter()
            .map(|&i| f.inst(i).op)
            .collect();
        assert_eq!(entry_ops.last(), Some(&Opcode::Load));
    }

    #[test]
    fn branch_condition_is_reloaded() {
        let mut b = FunctionBuilder::new("br");
        let c = b.param();
        let t = b.new_block();
        let e = b.new_block();
        b.branch(c, t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        let mut f = b.finish();
        rewrite_spills(&mut f, &[c]);
        assert!(Verifier::new(&f).run().is_ok(), "{f}");
    }

    #[test]
    fn spill_in_loop_keeps_semantics_structure() {
        let mut b = FunctionBuilder::new("l");
        let n = b.param();
        let h = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let i = b.iconst(0);
        b.jump(h);
        b.switch_to(h);
        let d = b.cmpge(i, n);
        b.branch(d, exit, body);
        b.switch_to(body);
        let one = b.iconst(1);
        let i2 = b.add(i, one);
        b.mov_into(i, i2);
        b.jump(h);
        b.switch_to(exit);
        b.ret(Some(i));
        let mut f = b.finish();
        let before_blocks = f.num_blocks();
        rewrite_spills(&mut f, &[i]);
        assert!(Verifier::new(&f).run().is_ok(), "{f}");
        assert_eq!(f.num_blocks(), before_blocks, "no control-flow changes");
        // The CFG is untouched.
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.num_reachable(), 4);
    }

    #[test]
    fn multiple_spills_get_distinct_slots() {
        let mut b = FunctionBuilder::new("m");
        let a = b.param();
        let x = b.add(a, a);
        let y = b.add(a, x);
        let z = b.add(x, y);
        b.ret(Some(z));
        let mut f = b.finish();
        rewrite_spills(&mut f, &[x, y]);
        assert!(Verifier::new(&f).run().is_ok());
        assert!(f.slot_by_name(&format!("spill.{}", x.index())).is_some());
        assert!(f.slot_by_name(&format!("spill.{}", y.index())).is_some());
        assert_eq!(f.slots().len(), 2);
    }
}
