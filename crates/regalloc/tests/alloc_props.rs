//! Property tests for the allocators: on randomly shaped functions,
//! every policy must produce interference-free assignments, and spill
//! rewriting must preserve structure.

use proptest::prelude::*;
use tadfa_ir::{Function, FunctionBuilder, Verifier, VReg};
use tadfa_regalloc::{
    allocate_coloring, allocate_linear_scan, policy_by_name, validate_assignment,
    RegAllocConfig, POLICY_NAMES,
};
use tadfa_thermal::{Floorplan, RegisterFile};

/// A random function: `width` values computed from two params, folded
/// with optional loop and diamond segments.
fn build(width: usize, with_loop: bool, with_diamond: bool, ops: &[usize]) -> Function {
    let mut b = FunctionBuilder::new("prop");
    let x = b.param();
    let y = b.param();
    let mut vals = vec![x, y];
    for (i, &op) in ops.iter().enumerate().take(width) {
        let a = vals[i % vals.len()];
        let c = vals[(i * 3 + 1) % vals.len()];
        let v = match op % 5 {
            0 => b.add(a, c),
            1 => b.sub(a, c),
            2 => b.mul(a, c),
            3 => b.and(a, c),
            _ => b.xor(a, c),
        };
        vals.push(v);
    }
    let mut acc = vals[vals.len() - 1];

    if with_diamond {
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.cmplt(acc, x);
        b.branch(c, t, e);
        b.switch_to(t);
        let v1 = b.add(acc, x);
        b.mov_into(acc, v1);
        b.jump(j);
        b.switch_to(e);
        let v2 = b.sub(acc, y);
        b.mov_into(acc, v2);
        b.jump(j);
        b.switch_to(j);
    }

    if with_loop {
        let h = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let n = b.iconst(5);
        let i = b.iconst(0);
        b.jump(h);
        b.switch_to(h);
        let done = b.cmpge(i, n);
        b.branch(done, exit, body);
        b.switch_to(body);
        let a2 = b.add(acc, i);
        b.mov_into(acc, a2);
        let one = b.iconst(1);
        let i2 = b.add(i, one);
        b.mov_into(i, i2);
        b.jump(h);
        b.switch_to(exit);
    }

    b.ret(Some(acc));
    b.finish()
}

fn arb_shape() -> impl Strategy<Value = (usize, bool, bool, Vec<usize>)> {
    (
        1usize..14,
        any::<bool>(),
        any::<bool>(),
        prop::collection::vec(0usize..5, 14),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Linear scan: every policy, every shape → verifier-clean function
    /// and interference-free assignment.
    #[test]
    fn linear_scan_always_valid((w, l, d, ops) in arb_shape(), policy_idx in 0usize..6) {
        let func = build(w, l, d, &ops);
        prop_assert!(Verifier::new(&func).run().is_ok());

        let rf = RegisterFile::new(Floorplan::grid(4, 4));
        let name = POLICY_NAMES[policy_idx % POLICY_NAMES.len()];
        let mut policy = policy_by_name(name, &rf, 3).expect("known policy");
        let mut f = func.clone();
        let alloc = allocate_linear_scan(&mut f, &rf, policy.as_mut(), &RegAllocConfig::default());
        let alloc = match alloc {
            Ok(a) => a,
            Err(e) => return Err(TestCaseError::fail(format!("{name}: {e}"))),
        };
        prop_assert!(Verifier::new(&f).run().is_ok());
        prop_assert!(validate_assignment(&f, &alloc.assignment).is_empty());

        // Every referenced register got a physical home.
        for (_bb, id) in f.inst_ids_in_layout_order() {
            let inst = f.inst(id);
            for &u in inst.uses() {
                prop_assert!(alloc.assignment.preg_of(u).is_some(), "{name}: {u} unassigned");
            }
            if let Some(dd) = inst.def() {
                prop_assert!(alloc.assignment.preg_of(dd).is_some());
            }
        }
    }

    /// Graph coloring agrees: valid assignments on the same shapes.
    #[test]
    fn coloring_always_valid((w, l, d, ops) in arb_shape()) {
        let func = build(w, l, d, &ops);
        let rf = RegisterFile::new(Floorplan::grid(4, 4));
        let mut policy = policy_by_name("first-free", &rf, 3).expect("known policy");
        let mut f = func.clone();
        let alloc = match allocate_coloring(&mut f, &rf, policy.as_mut(), &RegAllocConfig::default()) {
            Ok(a) => a,
            Err(e) => return Err(TestCaseError::fail(e.to_string())),
        };
        prop_assert!(validate_assignment(&f, &alloc.assignment).is_empty());
    }

    /// Spill rewriting on arbitrary live registers keeps the function
    /// verifier-clean.
    #[test]
    fn spill_rewrite_keeps_functions_valid((w, l, d, ops) in arb_shape(), which in 0usize..4) {
        let mut func = build(w, l, d, &ops);
        let v = VReg::new((which % func.num_vregs().max(1)) as u32);
        tadfa_regalloc::rewrite_spills(&mut func, &[v]);
        prop_assert!(Verifier::new(&func).run().is_ok(), "{func}");
    }
}
