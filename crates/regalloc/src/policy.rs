//! Register assignment policies — the subject of the paper's Fig. 1.
//!
//! When the allocator has established *which* values get registers, the
//! policy decides *which physical register* each value receives. "The
//! compiler maintains an ordered list of registers and selects the first
//! one in the list that is free. As the list is always traversed in
//! order, the same small set of registers is chosen again and again"
//! (§2) — that is [`FirstFree`], the hot-spot-producing default. The
//! alternatives reproduce Fig. 1(b) ([`RandomPolicy`]) and Fig. 1(c)
//! ([`Chessboard`]), plus the spreading policies §4 motivates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tadfa_ir::{PReg, VReg};
use tadfa_thermal::RegisterFile;

/// Context handed to a policy at each assignment decision.
#[derive(Debug)]
pub struct ChoiceContext<'a> {
    /// The register file (geometry + placement).
    pub rf: &'a RegisterFile,
    /// The virtual register being assigned.
    pub vreg: VReg,
    /// Physical registers currently holding live values.
    pub active: &'a [PReg],
    /// Linearised program point of the assignment (monotone within one
    /// allocation run).
    pub point: u32,
}

/// A register assignment policy: given the free list, pick one.
///
/// Policies may keep state (cursors, RNGs, heat estimates); allocation
/// calls [`AssignmentPolicy::choose`] once per value and reports releases
/// so stateful policies can track occupancy.
pub trait AssignmentPolicy: std::fmt::Debug {
    /// Short name used in reports ("first-free", "chessboard", …).
    fn name(&self) -> &'static str;

    /// Chooses one of the free registers.
    ///
    /// `free` is non-empty and sorted ascending.
    fn choose(&mut self, free: &[PReg], ctx: &ChoiceContext<'_>) -> PReg;

    /// Notification that `r` was released (its value died). Default:
    /// ignored.
    fn on_release(&mut self, r: PReg) {
        let _ = r;
    }

    /// Resets internal state so the policy can be reused across runs.
    fn reset(&mut self) {}
}

/// Fig. 1(a): always the lowest-numbered free register.
#[derive(Clone, Debug, Default)]
pub struct FirstFree;

impl AssignmentPolicy for FirstFree {
    fn name(&self) -> &'static str {
        "first-free"
    }

    fn choose(&mut self, free: &[PReg], _ctx: &ChoiceContext<'_>) -> PReg {
        free[0]
    }
}

/// Fig. 1(b): a uniformly random free register (seeded, reproducible).
#[derive(Clone, Debug)]
pub struct RandomPolicy {
    rng: StdRng,
    seed: u64,
}

impl RandomPolicy {
    /// A random policy with the given seed.
    pub fn new(seed: u64) -> RandomPolicy {
        RandomPolicy {
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }
}

impl AssignmentPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn choose(&mut self, free: &[PReg], _ctx: &ChoiceContext<'_>) -> PReg {
        free[self.rng.gen_range(0..free.len())]
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

/// Fig. 1(c): registers on "black" cells of the chessboard colouring,
/// taken in rotation so that "accesses are distributed uniformly across a
/// large surface" (§2) and no two simultaneously used registers are
/// physically adjacent — while black cells last. Falls back to rotating
/// through white cells under pressure, which is exactly the §2 caveat the
/// pressure-sweep experiment measures.
#[derive(Clone, Debug, Default)]
pub struct Chessboard {
    cursor: usize,
}

impl AssignmentPolicy for Chessboard {
    fn name(&self) -> &'static str {
        "chessboard"
    }

    fn choose(&mut self, free: &[PReg], ctx: &ChoiceContext<'_>) -> PReg {
        let fp = ctx.rf.floorplan();
        let n = ctx.rf.num_regs();
        // Rotate through the free black cells; only when none remain,
        // rotate through whatever is left.
        let blacks: Vec<PReg> = free
            .iter()
            .copied()
            .filter(|&r| fp.is_black(ctx.rf.cell_of(r)))
            .collect();
        let candidates: &[PReg] = if blacks.is_empty() { free } else { &blacks };
        let pick = candidates
            .iter()
            .copied()
            .find(|r| r.index() >= self.cursor)
            .unwrap_or(candidates[0]);
        self.cursor = (pick.index() + 1) % n;
        pick
    }

    fn reset(&mut self) {
        self.cursor = 0;
    }
}

/// Cycles through the register file: the next free register at or after
/// a moving cursor. Spreads accesses in time without geometry awareness.
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl AssignmentPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn choose(&mut self, free: &[PReg], ctx: &ChoiceContext<'_>) -> PReg {
        let n = ctx.rf.num_regs();
        let pick = free
            .iter()
            .copied()
            .find(|r| r.index() >= self.cursor)
            .unwrap_or(free[0]);
        self.cursor = (pick.index() + 1) % n;
        pick
    }

    fn reset(&mut self) {
        self.cursor = 0;
    }
}

/// Chooses the free register maximising the minimum floorplan distance to
/// all currently active registers — the "assign them to registers in
/// disparate regions of the RF" idea of §4.
#[derive(Clone, Debug, Default)]
pub struct FarthestSpread;

impl AssignmentPolicy for FarthestSpread {
    fn name(&self) -> &'static str {
        "farthest-spread"
    }

    fn choose(&mut self, free: &[PReg], ctx: &ChoiceContext<'_>) -> PReg {
        if ctx.active.is_empty() {
            // No reference points: start from the centre of the array.
            let fp = ctx.rf.floorplan();
            let centre = fp.index(fp.rows() / 2, fp.cols() / 2);
            return free
                .iter()
                .copied()
                .min_by_key(|&r| fp.manhattan(ctx.rf.cell_of(r), centre))
                .expect("free list is non-empty");
        }
        free.iter()
            .copied()
            .max_by_key(|&r| {
                ctx.active
                    .iter()
                    .map(|&a| ctx.rf.distance(r, a))
                    .min()
                    .unwrap_or(usize::MAX)
            })
            .expect("free list is non-empty")
    }
}

/// Chooses the free register whose cell has the lowest heat score.
///
/// The score vector comes from outside — typically the thermal DFA's
/// predicted map (`tadfa-core`) or a running occupancy estimate — making
/// this the "coldest-first" policy that closes the paper's loop from
/// analysis back into assignment.
#[derive(Clone, Debug)]
pub struct ColdestFirst {
    /// Heat score per floorplan cell (higher = hotter). Not temperatures
    /// per se; any monotone heat proxy works.
    scores: Vec<f64>,
    /// The scores the policy was constructed with; [`AssignmentPolicy::reset`]
    /// restores them so each allocation run is independent of its
    /// predecessors (the batch-determinism contract of `Session::analyze`).
    initial_scores: Vec<f64>,
    /// Heat added to a cell's score when it is chosen (models the heating
    /// the new tenant will cause, so successive picks spread out).
    self_heat: f64,
}

impl ColdestFirst {
    /// A coldest-first policy over the given per-cell scores.
    ///
    /// # Panics
    ///
    /// Panics if `self_heat` is negative.
    pub fn new(scores: Vec<f64>, self_heat: f64) -> ColdestFirst {
        assert!(self_heat >= 0.0, "self-heat must be non-negative");
        ColdestFirst {
            initial_scores: scores.clone(),
            scores,
            self_heat,
        }
    }

    /// A cold-start instance: all cells equally cold, pure occupancy
    /// spreading.
    pub fn uniform(num_cells: usize, self_heat: f64) -> ColdestFirst {
        ColdestFirst::new(vec![0.0; num_cells], self_heat)
    }

    /// Current score of a cell.
    pub fn score(&self, cell: usize) -> f64 {
        self.scores[cell]
    }
}

impl AssignmentPolicy for ColdestFirst {
    fn name(&self) -> &'static str {
        "coldest-first"
    }

    fn choose(&mut self, free: &[PReg], ctx: &ChoiceContext<'_>) -> PReg {
        let pick = free
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let sa = self.scores[ctx.rf.cell_of(a)];
                let sb = self.scores[ctx.rf.cell_of(b)];
                sa.partial_cmp(&sb).unwrap().then(a.cmp(&b))
            })
            .expect("free list is non-empty");
        let cell = ctx.rf.cell_of(pick);
        self.scores[cell] += self.self_heat;
        pick
    }

    fn reset(&mut self) {
        self.scores.copy_from_slice(&self.initial_scores);
    }
}

/// Constructs each built-in policy by name — the CLI surface of the
/// experiment binaries. Seeded policies use `seed`.
///
/// Known names: `first-free`, `random`, `chessboard`, `round-robin`,
/// `farthest-spread`, `coldest-first`.
pub fn policy_by_name(
    name: &str,
    rf: &RegisterFile,
    seed: u64,
) -> Option<Box<dyn AssignmentPolicy>> {
    Some(match name {
        "first-free" => Box::new(FirstFree),
        "random" => Box::new(RandomPolicy::new(seed)),
        "chessboard" => Box::new(Chessboard::default()),
        "round-robin" => Box::new(RoundRobin::default()),
        "farthest-spread" => Box::new(FarthestSpread),
        "coldest-first" => Box::new(ColdestFirst::uniform(rf.floorplan().num_cells(), 1.0)),
        _ => return None,
    })
}

/// The names accepted by [`policy_by_name`], in canonical order.
pub const POLICY_NAMES: [&str; 6] = [
    "first-free",
    "random",
    "chessboard",
    "round-robin",
    "farthest-spread",
    "coldest-first",
];

#[cfg(test)]
mod tests {
    use super::*;
    use tadfa_thermal::Floorplan;

    fn rf_4x4() -> RegisterFile {
        RegisterFile::new(Floorplan::grid(4, 4))
    }

    fn free_all(n: usize) -> Vec<PReg> {
        (0..n).map(|i| PReg::new(i as u16)).collect()
    }

    fn ctx<'a>(rf: &'a RegisterFile, active: &'a [PReg]) -> ChoiceContext<'a> {
        ChoiceContext {
            rf,
            vreg: VReg::new(0),
            active,
            point: 0,
        }
    }

    #[test]
    fn first_free_always_picks_lowest() {
        let rf = rf_4x4();
        let mut p = FirstFree;
        let free = free_all(16);
        for _ in 0..3 {
            assert_eq!(p.choose(&free, &ctx(&rf, &[])), PReg::new(0));
        }
        assert_eq!(p.name(), "first-free");
    }

    #[test]
    fn random_is_reproducible_and_varied() {
        let rf = rf_4x4();
        let free = free_all(16);
        let mut p1 = RandomPolicy::new(42);
        let mut p2 = RandomPolicy::new(42);
        let picks1: Vec<PReg> = (0..10).map(|_| p1.choose(&free, &ctx(&rf, &[]))).collect();
        let picks2: Vec<PReg> = (0..10).map(|_| p2.choose(&free, &ctx(&rf, &[]))).collect();
        assert_eq!(picks1, picks2, "same seed, same picks");
        let distinct: std::collections::BTreeSet<_> = picks1.iter().collect();
        assert!(distinct.len() > 3, "should spread across the file");
        p1.reset();
        assert_eq!(p1.choose(&free, &ctx(&rf, &[])), picks1[0]);
    }

    #[test]
    fn chessboard_prefers_black_cells_and_rotates() {
        let rf = rf_4x4();
        let mut p = Chessboard::default();
        let free = free_all(16);
        let a = p.choose(&free, &ctx(&rf, &[]));
        let b = p.choose(&free, &ctx(&rf, &[]));
        let c = p.choose(&free, &ctx(&rf, &[]));
        for pick in [a, b, c] {
            assert!(rf.floorplan().is_black(rf.cell_of(pick)));
        }
        assert_ne!(a, b, "rotation distributes across black cells");
        assert_ne!(b, c);
        // Only white cells free: falls back gracefully.
        let whites: Vec<PReg> = free_all(16)
            .into_iter()
            .filter(|&r| !rf.floorplan().is_black(rf.cell_of(r)))
            .collect();
        let pick = p.choose(&whites, &ctx(&rf, &[]));
        assert!(!rf.floorplan().is_black(rf.cell_of(pick)));
        p.reset();
        assert_eq!(p.choose(&free, &ctx(&rf, &[])), a);
    }

    #[test]
    fn round_robin_cycles() {
        let rf = rf_4x4();
        let mut p = RoundRobin::default();
        let free = free_all(16);
        let a = p.choose(&free, &ctx(&rf, &[]));
        let b = p.choose(&free, &ctx(&rf, &[]));
        let c = p.choose(&free, &ctx(&rf, &[]));
        assert_eq!(a, PReg::new(0));
        assert_eq!(b, PReg::new(1));
        assert_eq!(c, PReg::new(2));
        p.reset();
        assert_eq!(p.choose(&free, &ctx(&rf, &[])), PReg::new(0));
    }

    #[test]
    fn round_robin_wraps_and_skips_busy() {
        let rf = rf_4x4();
        let mut p = RoundRobin { cursor: 15 };
        // Only r3 and r15 free; cursor at 15 picks r15 then wraps to r3.
        let free = vec![PReg::new(3), PReg::new(15)];
        assert_eq!(p.choose(&free, &ctx(&rf, &[])), PReg::new(15));
        assert_eq!(p.choose(&free, &ctx(&rf, &[])), PReg::new(3));
    }

    #[test]
    fn farthest_spread_maximises_min_distance() {
        let rf = rf_4x4();
        let mut p = FarthestSpread;
        // r0 (corner cell 0) active: the farthest free cell is 15.
        let active = [PReg::new(0)];
        let free = free_all(16)[1..].to_vec();
        let pick = p.choose(&free, &ctx(&rf, &active));
        assert_eq!(pick, PReg::new(15));
    }

    #[test]
    fn coldest_first_spreads_when_uniform() {
        let rf = rf_4x4();
        let mut p = ColdestFirst::uniform(16, 1.0);
        let free = free_all(16);
        let a = p.choose(&free, &ctx(&rf, &[]));
        let b = p.choose(&free, &ctx(&rf, &[]));
        assert_ne!(a, b, "self-heat pushes the second pick elsewhere");
        assert!(p.score(rf.cell_of(a)) > 0.0);
    }

    #[test]
    fn coldest_first_avoids_preheated_cells() {
        let rf = rf_4x4();
        let mut scores = vec![0.0; 16];
        scores[0] = 100.0; // cell 0 is hot
        let mut p = ColdestFirst::new(scores, 0.0);
        let free = vec![PReg::new(0), PReg::new(5)];
        assert_eq!(p.choose(&free, &ctx(&rf, &[])), PReg::new(5));
    }

    #[test]
    fn coldest_first_reset_restores_initial_scores() {
        let rf = rf_4x4();
        let mut scores = vec![0.0; 16];
        scores[3] = 7.5;
        let mut p = ColdestFirst::new(scores, 1.0);
        let free = free_all(16);
        let first = p.choose(&free, &ctx(&rf, &[]));
        let _ = p.choose(&free, &ctx(&rf, &[]));
        p.reset();
        assert_eq!(p.score(rf.cell_of(first)), 0.0, "self-heat cleared");
        assert_eq!(p.score(3), 7.5, "constructed scores survive reset");
        assert_eq!(
            p.choose(&free, &ctx(&rf, &[])),
            first,
            "reset makes the pick sequence repeat"
        );
    }

    #[test]
    fn policy_by_name_covers_all() {
        let rf = rf_4x4();
        for name in POLICY_NAMES {
            let p = policy_by_name(name, &rf, 1).unwrap();
            assert_eq!(p.name(), name);
        }
        assert!(policy_by_name("bogus", &rf, 1).is_none());
    }
}
