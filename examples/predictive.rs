//! The paper's "more ambitious possibility": predict the thermal map
//! *before* register allocation, then let the prediction drive the
//! assignment — no thermal-simulation feedback loop anywhere.
//!
//! Run: `cargo run --example predictive`

use tadfa::prelude::*;
use tadfa::sim::{simulate_trace, CosimConfig};

fn main() -> Result<(), TadfaError> {
    let w = tadfa::workloads::matmul(5);
    let mut session = Session::builder()
        .floorplan(8, 8)
        .predictive_config(PredictiveConfig {
            prior: PlacementPrior::FirstFree,
            ..PredictiveConfig::default()
        })
        .build()?;
    println!("predictive (pre-assignment) analysis on '{}'\n", w.name);

    // 1. Predict, with no assignment in hand: loop-weighted access
    //    frequencies + a rehearsal of the expected allocator behaviour.
    let prediction = session.predict(&w.func)?;

    println!("predicted hottest variables (before any assignment!):");
    for (v, score) in prediction.ranked.iter().take(5) {
        println!("  {v}: {score:.3e}");
    }
    println!("\npredicted map (auto-scaled):");
    print!(
        "{}",
        render_ascii_auto(
            &prediction.expected_map,
            session.register_file().floorplan()
        )
    );

    // 2. Use the prediction: coldest-first assignment over the predicted
    //    cell scores, installed as the session's policy.
    let mut scores = prediction.cell_scores();
    let max = scores.iter().cloned().fold(0.0f64, f64::max);
    if max > 0.0 {
        for s in &mut scores {
            *s /= max;
        }
    }
    session.set_policy(Box::new(ColdestFirst::new(scores, 0.25)));
    let report = session.analyze(&w.func)?;

    // 3. Check the result against ground truth.
    let mut interp = Interpreter::new(&report.func)
        .with_assignment(&report.assignment)
        .with_fuel(50_000_000);
    for (slot, data) in &w.preload {
        interp = interp.with_slot_data(*slot, data.clone());
    }
    let exec = interp.run(&w.args).expect("matmul runs");
    let rf = session.register_file();
    let model = ThermalModel::new(rf.floorplan().clone(), session.rc_params());
    let measured = simulate_trace(
        &exec.trace,
        rf,
        &model,
        &session.power_model(),
        &CosimConfig::default(),
    )
    .peak_map;

    let stats = MapStats::of(&measured, rf.floorplan());
    println!("\nmeasured map after prediction-driven assignment:");
    print!("{}", render_ascii_auto(&measured, rf.floorplan()));
    println!(
        "\npeak {:.2} K, σ {:.3} K — compare `cargo run -p tadfa-bench --bin predictive_eval`",
        stats.peak, stats.stddev
    );

    let acc = compare_maps(&prediction.expected_map, &measured, rf.floorplan());
    println!(
        "prediction vs measurement: RMS {:.3} K, Pearson {:.3}, hotspot distance {} cells",
        acc.rms, acc.pearson, acc.hotspot_distance
    );
    Ok(())
}
