//! Acceptance tests for the multi-core scenario subsystem:
//!
//! * **decomposition** — a K-core die with zero coupling reproduces K
//!   independent single-core solves bit-for-bit (the block-diagonal
//!   contract of `MultiCoreFloorplan`);
//! * **worker invariance** — scenario results (and their rendered JSON
//!   reports) are byte-identical at any engine worker count;
//! * **golden stability** — every committed `scenarios/` spec still
//!   produces its committed golden report, byte for byte (the same
//!   check CI's golden-report job runs via `tadfa check`);
//! * **physics** — inter-core coupling actually moves heat between
//!   cores and changes the scenario fingerprint.

use std::path::Path;
use tadfa::prelude::*;
use tadfa::sched::{
    load_spec, render_report, run_scenario, suite_tasks, MultiCoreFloorplan, ScenarioConfig,
};

/// With no coupling edges, per-core slices of a die transient are
/// bit-identical to independent single-core solves, for every core
/// count/shape tried and distinct per-core power patterns.
#[test]
fn zero_coupling_die_reproduces_independent_single_cores() {
    let rc = RcParams::default();
    for (cores, rows, cols) in [(2, 3, 4), (3, 4, 4), (5, 2, 3)] {
        let per = rows * cols;
        let die = MultiCoreFloorplan::new(cores, rows, cols, rc, None).unwrap();
        let solver = die.compile();
        let single_model = ThermalModel::new(Floorplan::grid(rows, cols), rc);
        let single = CompiledModel::with_kernel(&single_model, KernelKind::Csr);

        // A distinct deterministic power pattern per core.
        let mut die_power = vec![0.0; die.num_cells()];
        let mut core_powers: Vec<Vec<f64>> = Vec::new();
        for k in 0..cores {
            let mut p = vec![0.0; per];
            p[k % per] += 1e-3 * (k + 1) as f64;
            p[(3 * k + 1) % per] += 0.4e-3;
            for (i, &w) in p.iter().enumerate() {
                die_power[k * per + i] = w;
            }
            core_powers.push(p);
        }

        let mut die_state = die.ambient_state();
        let mut single_states: Vec<ThermalState> =
            (0..cores).map(|_| single.ambient_state()).collect();
        let mut die_scratch = StepScratch::new();
        let mut single_scratch = StepScratch::new();
        for dt in [2e-6, 1e-4, 3e-3] {
            solver.step_into(&mut die_state, &die_power, dt, &mut die_scratch);
            for (k, s) in single_states.iter_mut().enumerate() {
                single.step_into(s, &core_powers[k], dt, &mut single_scratch);
            }
            for (k, s) in single_states.iter().enumerate() {
                let a: Vec<u64> = die_state.temps()[k * per..(k + 1) * per]
                    .iter()
                    .map(|t| t.to_bits())
                    .collect();
                let b: Vec<u64> = s.temps().iter().map(|t| t.to_bits()).collect();
                assert_eq!(a, b, "{cores}x{rows}x{cols} core {k} dt={dt}");
            }
        }
    }
}

/// Steady state decomposes too when every core carries the same load:
/// the die-wide Gauss–Seidel residual then equals each core's own, so
/// sweep counts — and therefore every intermediate value — match the
/// single-core solve exactly.
#[test]
fn zero_coupling_steady_state_matches_replicated_single_core() {
    let rc = RcParams::default();
    let (cores, rows, cols) = (4, 3, 3);
    let per = rows * cols;
    let die = MultiCoreFloorplan::new(cores, rows, cols, rc, None).unwrap();
    let mut core_power = vec![0.0; per];
    core_power[1] = 1e-3;
    core_power[7] = 0.5e-3;
    let die_power: Vec<f64> = (0..cores).flat_map(|_| core_power.clone()).collect();

    let single_model = ThermalModel::new(Floorplan::grid(rows, cols), rc);
    let single =
        CompiledModel::with_kernel(&single_model, KernelKind::Csr).steady_state(&core_power);
    let die_ss = die.compile().steady_state(&die_power);
    let want: Vec<u64> = single.temps().iter().map(|t| t.to_bits()).collect();
    for k in 0..cores {
        let got: Vec<u64> = die_ss.temps()[k * per..(k + 1) * per]
            .iter()
            .map(|t| t.to_bits())
            .collect();
        assert_eq!(got, want, "core {k}");
    }
}

fn scenario(workers: usize, coupling: Option<f64>) -> ScenarioConfig {
    let die = MultiCoreFloorplan::new(4, 4, 4, RcParams::default(), coupling).unwrap();
    let mut cfg = ScenarioConfig::new(
        "invariance",
        die,
        suite_tasks(6, 5e-4, 1e-3),
        "thermal-balanced",
    );
    cfg.workers = workers;
    cfg
}

/// The acceptance criterion in executable form: the whole scenario —
/// scheduling decisions, migrations, die temperatures, and the rendered
/// JSON report — is byte-identical across runs and worker counts.
#[test]
fn scenario_reports_are_worker_count_invariant() {
    let base = run_scenario(&scenario(1, Some(40.0))).unwrap();
    let base_report = render_report(&base);
    for workers in [2, 4, 9] {
        let r = run_scenario(&scenario(workers, Some(40.0))).unwrap();
        assert_eq!(r.fingerprint(), base.fingerprint(), "workers={workers}");
        assert_eq!(render_report(&r), base_report, "workers={workers}");
        assert_eq!(r.assignments, base.assignments);
        assert_eq!(r.migrations, base.migrations);
    }
}

/// Coupling is not cosmetic: the same scenario with and without
/// inter-core coupling disagrees on die temperatures (heat crosses core
/// boundaries) and therefore on the scenario fingerprint.
#[test]
fn coupling_changes_the_die_outcome() {
    let coupled = run_scenario(&scenario(2, Some(10.0))).unwrap();
    let uncoupled = run_scenario(&scenario(2, None)).unwrap();
    // Same analysis and scheduling inputs...
    assert_eq!(coupled.assignments, uncoupled.assignments);
    // ...different die physics.
    assert!(coupled.die.transient_peak < uncoupled.die.transient_peak);
    assert_ne!(coupled.fingerprint(), uncoupled.fingerprint());
}

/// Every committed scenario spec reproduces its committed golden report
/// byte for byte — the in-tree twin of CI's golden-report job.
#[test]
fn committed_scenarios_match_their_golden_reports() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut checked = 0;
    let mut entries: Vec<_> = std::fs::read_dir(root.join("scenarios"))
        .expect("scenarios/ exists")
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    for path in entries {
        if !matches!(
            path.extension().and_then(|e| e.to_str()),
            Some("toml" | "json")
        ) {
            continue;
        }
        let cfg = load_spec(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let result = run_scenario(&cfg).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let golden = root.join("scenarios/golden").join(format!(
            "{}.json",
            path.file_stem().and_then(|s| s.to_str()).unwrap()
        ));
        let expected = std::fs::read_to_string(&golden)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", golden.display()));
        assert_eq!(
            render_report(&result),
            expected,
            "golden drift for {} — regenerate with `tadfa run {} --out {}`",
            path.display(),
            path.display(),
            golden.display()
        );
        checked += 1;
    }
    assert!(
        checked >= 10,
        "expected ≥10 committed scenarios (incl. covert/DTM family), found {checked}"
    );
}

/// The golden gate refuses fast-mode specs: committed fingerprints are
/// exact-solver contracts, so a scenario requesting the
/// reassociation-permitting `solver = "fast"` must be rejected by
/// `tadfa check` unless `--allow-fast` is passed — and every committed
/// spec must itself be exact-mode, or the golden job would refuse it.
#[test]
fn golden_gate_rejects_fast_mode_unless_opted_in() {
    use tadfa::sched::golden_gate_guard;

    let die = MultiCoreFloorplan::new(2, 4, 4, RcParams::default(), Some(40.0)).unwrap();
    let mut cfg = ScenarioConfig::new("fast-spec", die, suite_tasks(4, 5e-4, 1e-3), "coolest-core");
    assert_eq!(cfg.dfa.solver_mode, SolverMode::Exact);
    assert!(
        golden_gate_guard(&cfg, false).is_ok(),
        "exact always passes"
    );

    cfg.dfa.solver_mode = SolverMode::Fast;
    let err = golden_gate_guard(&cfg, false).expect_err("fast must be refused");
    assert!(
        err.contains("--allow-fast"),
        "refusal names the escape hatch: {err}"
    );
    assert!(
        golden_gate_guard(&cfg, true).is_ok(),
        "--allow-fast gates fast deliberately"
    );

    // Committed specs stay exact-mode so the golden job accepts them.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for path in std::fs::read_dir(root.join("scenarios"))
        .expect("scenarios/ exists")
        .map(|e| e.unwrap().path())
        .filter(|p| {
            matches!(
                p.extension().and_then(|e| e.to_str()),
                Some("toml" | "json")
            )
        })
    {
        let cfg = load_spec(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            golden_gate_guard(&cfg, false).is_ok(),
            "committed spec {} would be refused by the golden gate",
            path.display()
        );
    }
}
