//! Compiled solver plans: allocation-free, stencil-specialized RC
//! stepping.
//!
//! [`ThermalModel::step`] and [`ThermalModel::steady_state`] are correct
//! but built for readability: every call heap-allocates its working
//! buffer, re-derives the conductances and the stability limit, and
//! walks [`Floorplan::neighbors`](crate::Floorplan::neighbors) — an
//! iterator that performs a division per cell to recover `(row, col)`.
//! Inside the thermal-DFA fixpoint those costs are paid once per
//! instruction per sweep and dominate whole-program analysis time.
//!
//! A [`CompiledModel`] is built **once** per model and amortizes all of
//! it:
//!
//! * per-cell coefficient tables (`g_vert`, `g_lat`, the Gauss–Seidel
//!   denominators) and the sub-step limit are precomputed;
//! * the 4-connected adjacency is flattened into a CSR table
//!   (`row_ptr`/`col_idx`) for the generic fallback kernel;
//! * on the rectangular grids every [`Floorplan`](crate::Floorplan)
//!   describes, the default **grid-stencil kernel** drops the adjacency
//!   table entirely: neighbours are `i ± 1` and `i ± cols`, and the
//!   interior/boundary loops are split so the interior loop is
//!   branch-free and auto-vectorizable;
//! * transient stepping is allocation-free: the caller owns a
//!   [`StepScratch`] whose buffer is recycled by pointer swap.
//!
//! # Bit-identity contract
//!
//! Every kernel preserves the *exact floating-point operation order* of
//! the naive solvers in [`crate::ThermalModel`]: neighbour contributions
//! accumulate in the same N/S/W/E order `neighbors` yields, the
//! Gauss–Seidel denominator is folded term by term at compile time the
//! way the naive sweep folds it per cell, and derived quantities
//! (`1/R`, the stability limit) are computed by the same expressions.
//! Consequently compiled results are **bit-identical** to the naive
//! solvers' — asserted cell-by-cell (`f64::to_bits`) by
//! `crates/thermal/tests/kernel_identity.rs` and suite-wide via
//! `ThermalReport::fingerprint` in `tests/solver_identity.rs`.
//!
//! # Example
//!
//! ```
//! use tadfa_thermal::{CompiledModel, Floorplan, RcParams, StepScratch, ThermalModel};
//!
//! let model = ThermalModel::new(Floorplan::grid(8, 8), RcParams::default());
//! let solver = model.compile();
//! let mut power = vec![0.0; 64];
//! power[27] = 1e-3;
//!
//! // Allocation-free stepping: the scratch buffer is reused forever.
//! let mut scratch = StepScratch::default();
//! let mut fast = model.ambient_state();
//! let mut naive = model.ambient_state();
//! for _ in 0..10 {
//!     solver.step_into(&mut fast, &power, 1e-4, &mut scratch);
//!     model.step(&mut naive, &power, 1e-4);
//! }
//! assert_eq!(fast.temps(), naive.temps()); // bit-identical
//! ```

use crate::error::ThermalError;
use crate::lanes::{LANES, W8};
use crate::rc::{RcParams, ThermalModel};
use crate::state::ThermalState;

/// Numeric contract a solve runs under.
///
/// The default, [`SolverMode::Exact`], preserves the naive solvers'
/// floating-point operation order bit for bit — the contract every
/// fingerprint, golden report, and cache key in the workspace is built
/// on (see `docs/DETERMINISM.md`).
///
/// [`SolverMode::Fast`] is the opt-in reassociation-permitting variant:
/// it may precompute `h / cap` (turning the per-cell `h·flow/cap`
/// divide into a multiply) and reciprocal Gauss–Seidel denominators.
/// Results stay deterministic for a fixed build/machine but are **not**
/// bit-identical to `Exact`; the divergence is bounded (asserted at
/// ≤ 1e-9 K per transient step sequence and ≤ 1e-5 K per steady solve
/// in this crate's tests) and golden gates refuse it unless explicitly
/// requested.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum SolverMode {
    /// Bit-exact kernels — the fingerprint-stable default.
    #[default]
    Exact,
    /// Reassociation-permitting kernels with a bounded-divergence
    /// contract. Never used unless explicitly configured.
    Fast,
}

impl SolverMode {
    /// The spec/JSON spelling (`"exact"` / `"fast"`).
    pub fn as_str(self) -> &'static str {
        match self {
            SolverMode::Exact => "exact",
            SolverMode::Fast => "fast",
        }
    }

    /// Parses the spec/JSON spelling accepted by scenario files.
    pub fn parse(s: &str) -> Option<SolverMode> {
        match s {
            "exact" => Some(SolverMode::Exact),
            "fast" => Some(SolverMode::Fast),
            _ => None,
        }
    }
}

/// Which inner kernel a [`CompiledModel`] executes.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum KernelKind {
    /// Grid-stencil kernel: neighbours addressed as `i ± 1` / `i ± cols`
    /// with split interior/boundary loops. The default — every
    /// [`Floorplan`](crate::Floorplan) is a rectangular grid.
    Stencil,
    /// Generic CSR kernel over the flattened adjacency table. The
    /// fallback for irregular topologies (and the cross-check in the
    /// bit-identity tests).
    Csr,
}

/// Caller-owned scratch for [`CompiledModel::step_into`] /
/// [`ThermalModel::step_into`].
///
/// Holds the transient solver's `next`-temperatures buffer (and, for
/// the multi-sub-step leaky path, a dense power staging buffer) so
/// repeated stepping never allocates. One scratch serves models of any
/// size (buffers are resized on first use per size); the thermal DFA
/// keeps one inside its `DfaScratch` per worker.
#[derive(Clone, Debug, Default)]
pub struct StepScratch {
    pub(crate) next: Vec<f64>,
    /// Dense `access + leakage` staging for the sub-stepped leaky path.
    dense_power: Vec<f64>,
    /// Maintained-all-zero scatter target for the single-sub-step sparse
    /// path: deposits are scattered in, the fused kernel runs over it,
    /// and the touched cells are re-zeroed — O(accesses) bookkeeping for
    /// a dense-power kernel pass.
    sparse_power: Vec<f64>,
}

impl StepScratch {
    /// A fresh scratch (empty buffers; sized lazily on first use).
    pub fn new() -> StepScratch {
        StepScratch::default()
    }

    pub(crate) fn ensure(&mut self, n: usize) {
        if self.next.len() != n {
            self.next.clear();
            self.next.resize(n, 0.0);
        }
    }
}

/// The linearised leakage model in kernel-ready form — the same
/// coefficients as `PowerModel`'s leakage, evaluated with the identical
/// expression (`(per_cell · (1 + coeff · (T − T_ref))).max(0)`), so the
/// fused leaky kernels stay bit-identical to "add leakage, then step".
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct LeakageParams {
    /// Leakage power per cell at the reference temperature, W.
    pub per_cell: f64,
    /// Fractional leakage increase per Kelvin above the reference.
    pub temp_coeff: f64,
    /// Reference temperature of the linearisation, K.
    pub reference_temp: f64,
}

/// `PowerModel::leakage_at`, verbatim.
#[inline(always)]
fn leak_at(lp: &LeakageParams, t: f64) -> f64 {
    (lp.per_cell * (1.0 + lp.temp_coeff * (t - lp.reference_temp))).max(0.0)
}

/// The zero leakage model the non-leaky kernel instantiations take
/// (and, being `!LEAKY`, never read).
const NO_LEAK: LeakageParams = LeakageParams {
    per_cell: 0.0,
    temp_coeff: 0.0,
    reference_temp: 0.0,
};

/// A precomputed sub-step schedule: how many explicit-Euler sub-steps a
/// given `dt` needs under a model's stability limit, and their size.
/// Callers that step with the same `dt` many times (the thermal DFA
/// steps each instruction's `dt` once per sweep) build this once via
/// [`CompiledModel::schedule`] instead of re-deriving it per call.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct StepSchedule {
    /// Sub-steps to run (0 for `dt == 0`).
    n_sub: u32,
    /// Sub-step size, seconds.
    h: f64,
}

impl StepSchedule {
    /// Number of explicit-Euler sub-steps the schedule runs.
    pub fn n_sub(&self) -> u32 {
        self.n_sub
    }

    /// The sub-step size, seconds (0.0 when `n_sub` is 0).
    pub fn sub_step(&self) -> f64 {
        self.h
    }

    /// Reassembles a schedule from its raw parts — the persistence
    /// round-trip constructor. The parts must come from
    /// [`StepSchedule::n_sub`] / [`StepSchedule::sub_step`] of a
    /// schedule built for the *same* compiled model, or stepping with
    /// it can violate the model's stability limit.
    pub fn from_raw(n_sub: u32, sub_step: f64) -> StepSchedule {
        StepSchedule { n_sub, h: sub_step }
    }
}

/// Tolerance and sweep budget of the Gauss–Seidel steady-state solver.
///
/// The defaults reproduce the historical hard-coded values (1 µK L∞
/// update, 100 000 sweeps).
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct SteadyStateOptions {
    /// Stop once no cell's update exceeds this, Kelvin.
    pub tolerance: f64,
    /// Give up (reporting non-convergence) after this many sweeps.
    pub max_sweeps: usize,
}

impl Default for SteadyStateOptions {
    fn default() -> SteadyStateOptions {
        SteadyStateOptions {
            tolerance: 1e-6,
            max_sweeps: 100_000,
        }
    }
}

/// How a Gauss–Seidel steady-state solve ended.
///
/// Replaces the historical silent behaviour (a `debug_assert!` that
/// vanished in release builds): iteration count and convergence status
/// are always recorded and returned.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct SteadyStateStats {
    /// Sweeps executed.
    pub sweeps: usize,
    /// Whether the final sweep's L∞ update beat the tolerance.
    pub converged: bool,
    /// The final sweep's L∞ update, Kelvin (∞ if no sweep ran).
    pub residual: f64,
}

impl SteadyStateStats {
    /// The pre-iteration value: zero sweeps, unconverged, ∞ residual.
    pub(crate) fn start() -> SteadyStateStats {
        SteadyStateStats {
            sweeps: 0,
            converged: false,
            residual: f64::INFINITY,
        }
    }
}

/// A solver plan compiled from a [`ThermalModel`]: flattened CSR
/// adjacency, per-cell coefficient tables, and stencil-specialized
/// kernels. Build once (cheap, O(cells)), share behind an `Arc`, reuse
/// for every solve — see the [module docs](self).
#[derive(Clone, Debug)]
pub struct CompiledModel {
    rows: usize,
    cols: usize,
    n: usize,
    g_vert: f64,
    g_lat: f64,
    cap: f64,
    ambient: f64,
    max_stable_dt: f64,
    kernel: KernelKind,
    /// CSR row offsets into `col_idx`, `n + 1` entries.
    row_ptr: Vec<u32>,
    /// Flattened neighbour lists in the naive solver's N/S/W/E order.
    col_idx: Vec<u32>,
    /// Per-cell Gauss–Seidel denominator, folded term by term exactly
    /// as the naive sweep folds it (`g_vert`, then `+ g_lat` per
    /// neighbour) so quotients stay bit-identical.
    gs_den: Vec<f64>,
    /// Per-cell reciprocal of `gs_den` — only the opt-in
    /// [`SolverMode::Fast`] steady sweep reads it.
    gs_rden: Vec<f64>,
    /// Per-edge conductances parallel to `col_idx` — populated only by
    /// [`CompiledModel::from_weighted_graph`]. Empty means every edge
    /// carries the uniform `g_lat` (the grid constructors), and the
    /// kernels run their historical, bit-identical uniform loops.
    edge_g: Vec<f64>,
    /// Model-constant lane splats, broadcast once at compile time so
    /// per-step [`LaneCtx`] construction only splats the step- and
    /// leakage-dependent values.
    lanes: ModelLanes,
}

impl CompiledModel {
    /// Compiles `model` with the default (stencil) kernel.
    pub fn new(model: &ThermalModel) -> CompiledModel {
        CompiledModel::with_kernel(model, KernelKind::Stencil)
    }

    /// Compiles `model` with an explicit kernel — the hook the
    /// bit-identity tests and kernel benches use to force the CSR path.
    pub fn with_kernel(model: &ThermalModel, kernel: KernelKind) -> CompiledModel {
        let fp = model.floorplan();
        let params = model.params();
        let n = fp.num_cells();
        assert!(n < u32::MAX as usize, "floorplan too large for CSR plan");
        // Same expressions as the naive solvers, so the derived values
        // share their exact bit patterns.
        let g_vert = 1.0 / params.vertical_resistance;
        let g_lat = 1.0 / params.lateral_resistance;

        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(4 * n);
        let mut gs_den = Vec::with_capacity(n);
        row_ptr.push(0u32);
        for i in 0..n {
            let mut den = g_vert;
            for j in fp.neighbors(i) {
                col_idx.push(j as u32);
                den += g_lat;
            }
            row_ptr.push(col_idx.len() as u32);
            gs_den.push(den);
        }
        let gs_rden = gs_den.iter().map(|&d| 1.0 / d).collect();

        CompiledModel {
            rows: fp.rows(),
            cols: fp.cols(),
            n,
            g_vert,
            g_lat,
            cap: params.cell_capacitance,
            ambient: params.ambient,
            max_stable_dt: model.max_stable_dt(),
            kernel,
            row_ptr,
            col_idx,
            gs_den,
            gs_rden,
            edge_g: Vec::new(),
            lanes: ModelLanes::new(g_vert, g_lat, params.ambient, params.cell_capacitance),
        }
    }

    /// Compiles a solver plan over an **explicit weighted graph**: cell
    /// `i`'s lateral neighbours are `neighbors[i]`, each `(cell,
    /// conductance)` pair folded in list order. This is how irregular
    /// topologies — multi-core dies whose inter-core coupling edges
    /// carry a different conductance than the intra-core lateral edges —
    /// reuse the CSR fallback kernel; the plan always executes
    /// [`KernelKind::Csr`].
    ///
    /// The caller owns the stability analysis: `max_stable_dt` must be
    /// at or below the true explicit-Euler limit `0.5·C / max_i(G_i)`
    /// of the weighted graph (the constructor checks positivity, not
    /// tightness). Passing the value derived from the same expressions
    /// as [`ThermalModel::max_stable_dt`] keeps sub-step schedules —
    /// and therefore results — bit-identical to per-component plans
    /// when the graph decomposes into uncoupled grids.
    ///
    /// Zero-conductance edges must be **omitted**, not listed with
    /// weight `0.0`: an absent edge contributes no floating-point
    /// operation, which is what makes an uncoupled multi-core plan
    /// bit-identical to independent single-core plans.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParam`] if `params` fail
    /// validation, `max_stable_dt` is non-positive/non-finite, a
    /// neighbour index is out of range, or an edge conductance is
    /// non-positive/non-finite; [`ThermalError::EmptyFloorplan`] for an
    /// empty graph.
    pub fn from_weighted_graph(
        params: &RcParams,
        neighbors: &[Vec<(u32, f64)>],
        max_stable_dt: f64,
    ) -> Result<CompiledModel, ThermalError> {
        params.checked()?;
        let n = neighbors.len();
        if n == 0 {
            return Err(ThermalError::EmptyFloorplan { rows: 0, cols: 0 });
        }
        assert!(n < u32::MAX as usize, "graph too large for CSR plan");
        if max_stable_dt <= 0.0 || !max_stable_dt.is_finite() {
            return Err(ThermalError::InvalidParam {
                param: "max_stable_dt",
                value: max_stable_dt,
                reason: "must be positive and finite",
            });
        }
        let g_vert = 1.0 / params.vertical_resistance;
        let g_lat = 1.0 / params.lateral_resistance;

        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut edge_g = Vec::new();
        let mut gs_den = Vec::with_capacity(n);
        row_ptr.push(0u32);
        for adj in neighbors {
            let mut den = g_vert;
            for &(j, g) in adj {
                if (j as usize) >= n {
                    return Err(ThermalError::InvalidParam {
                        param: "neighbor",
                        value: j as f64,
                        reason: "edge endpoint out of range",
                    });
                }
                if g <= 0.0 || !g.is_finite() {
                    return Err(ThermalError::InvalidParam {
                        param: "edge_conductance",
                        value: g,
                        reason: "must be positive and finite (omit absent edges)",
                    });
                }
                col_idx.push(j);
                edge_g.push(g);
                den += g;
            }
            row_ptr.push(col_idx.len() as u32);
            gs_den.push(den);
        }
        let gs_rden = gs_den.iter().map(|&d| 1.0 / d).collect();

        Ok(CompiledModel {
            // The stencil kernel never runs on a weighted plan; the
            // nominal 1×n shape only satisfies the struct invariants.
            rows: 1,
            cols: n,
            n,
            g_vert,
            g_lat,
            cap: params.cell_capacitance,
            ambient: params.ambient,
            max_stable_dt,
            kernel: KernelKind::Csr,
            row_ptr,
            col_idx,
            gs_den,
            gs_rden,
            edge_g,
            lanes: ModelLanes::new(g_vert, g_lat, params.ambient, params.cell_capacitance),
        })
    }

    /// The kernel this plan executes.
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.n
    }

    /// Ambient temperature, K.
    pub fn ambient(&self) -> f64 {
        self.ambient
    }

    /// The precomputed explicit-Euler stability limit, seconds.
    pub fn max_stable_dt(&self) -> f64 {
        self.max_stable_dt
    }

    /// A state with every cell at ambient.
    pub fn ambient_state(&self) -> ThermalState {
        ThermalState::uniform(self.n, self.ambient)
    }

    /// Precomputes the sub-step schedule for `dt` — the exact `n_sub`
    /// and `h` [`step_into`](CompiledModel::step_into) would derive.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative.
    pub fn schedule(&self, dt: f64) -> StepSchedule {
        assert!(dt >= 0.0, "negative time step");
        if dt == 0.0 {
            return StepSchedule { n_sub: 0, h: 0.0 };
        }
        let n_sub = (dt / self.max_stable_dt).ceil().max(1.0) as usize;
        StepSchedule {
            n_sub: n_sub.try_into().expect("sub-step count fits in u32"),
            h: dt / n_sub as f64,
        }
    }

    /// Advances `state` by `dt` seconds under `power`, sub-stepping as
    /// needed for stability — [`ThermalModel::step`] without the per-call
    /// allocation and neighbour-iterator overhead, bit-identical to it.
    ///
    /// # Panics
    ///
    /// Panics if `power`/`state` sizes mismatch the model or `dt` is
    /// negative.
    #[inline]
    pub fn step_into(
        &self,
        state: &mut ThermalState,
        power: &[f64],
        dt: f64,
        scratch: &mut StepScratch,
    ) {
        self.step_scheduled_into(state, power, &self.schedule(dt), scratch);
    }

    /// [`step_into`](CompiledModel::step_into) under a precomputed
    /// [`StepSchedule`] — skips the per-call sub-step derivation.
    #[inline]
    pub fn step_scheduled_into(
        &self,
        state: &mut ThermalState,
        power: &[f64],
        sched: &StepSchedule,
        scratch: &mut StepScratch,
    ) {
        assert_eq!(power.len(), self.n, "power vector size mismatch");
        assert_eq!(state.len(), self.n, "state size mismatch");
        debug_assert!(power.iter().all(|&p| p >= 0.0), "negative power");
        if sched.n_sub == 0 {
            return;
        }
        scratch.ensure(self.n);
        self.run_substeps::<false, false>(
            state,
            power,
            &NO_LEAK,
            sched.n_sub as usize,
            sched.h,
            &mut scratch.next,
            None,
        );
    }

    /// [`step_into`](CompiledModel::step_into) under temperature-dependent
    /// leakage: advances `state` exactly as "add `leak` of the *current*
    /// state to `power`, then step" would — bit for bit — without ever
    /// materialising the dense power vector in the common single-sub-step
    /// case. The caller's `power` holds only the sparse access power, so
    /// its owner can keep resetting it in O(accesses).
    ///
    /// With sub-stepping (`dt` above the stability limit), leakage must
    /// stay frozen at the pre-step temperatures to match the reference
    /// semantics; that path stages `power + leak` into the scratch's
    /// dense buffer once and runs the plain kernel over it.
    ///
    /// # Panics
    ///
    /// As [`step_into`](CompiledModel::step_into).
    #[inline]
    pub fn step_leaky_into(
        &self,
        state: &mut ThermalState,
        power: &[f64],
        dt: f64,
        leak: &LeakageParams,
        scratch: &mut StepScratch,
    ) {
        self.step_leaky_scheduled_into(state, power, &self.schedule(dt), leak, scratch);
    }

    /// [`step_leaky_into`](CompiledModel::step_leaky_into) under a
    /// precomputed [`StepSchedule`] — skips the per-call sub-step
    /// derivation (the thermal DFA's innermost call).
    #[inline]
    pub fn step_leaky_scheduled_into(
        &self,
        state: &mut ThermalState,
        power: &[f64],
        sched: &StepSchedule,
        leak: &LeakageParams,
        scratch: &mut StepScratch,
    ) {
        assert_eq!(power.len(), self.n, "power vector size mismatch");
        assert_eq!(state.len(), self.n, "state size mismatch");
        debug_assert!(power.iter().all(|&p| p >= 0.0), "negative power");
        if sched.n_sub == 0 {
            return;
        }

        let n_sub = sched.n_sub as usize;
        let h = sched.h;
        scratch.ensure(self.n);
        if n_sub == 1 {
            // One sub-step: the "current" temperatures are the pre-step
            // temperatures, so leakage can fold into the kernel.
            self.run_substeps::<true, false>(state, power, leak, n_sub, h, &mut scratch.next, None);
        } else {
            // Freeze leakage at the pre-step state, then step plainly.
            let dense = &mut scratch.dense_power;
            dense.clear();
            dense.extend(
                power
                    .iter()
                    .zip(state.temps())
                    .map(|(&p, &t)| p + leak_at(leak, t)),
            );
            self.run_substeps::<false, false>(
                state,
                dense,
                &NO_LEAK,
                n_sub,
                h,
                &mut scratch.next,
                None,
            );
        }
    }

    /// Advances `state` under **sparse** access power: `deposits` lists
    /// the `(cell, watts)` pairs (each cell at most once, watts
    /// pre-summed); every unlisted cell has zero access power. With
    /// `leak`, temperature-dependent leakage is fused into the kernel.
    ///
    /// This is the thermal DFA's innermost call: on the single-sub-step
    /// path the deposits are scattered into a maintained-all-zero dense
    /// buffer, one fused kernel pass runs over it, and the touched
    /// cells are re-zeroed — O(accesses) bookkeeping around a single
    /// grid pass. Bit-identical to scattering the deposits into a dense
    /// zero vector (adding leakage) and calling the dense entry points,
    /// because `0.0 + x` is exact.
    ///
    /// # Panics
    ///
    /// Panics if `state` has the wrong size or a deposit cell is out of
    /// range.
    #[inline]
    pub fn step_sparse_into(
        &self,
        state: &mut ThermalState,
        deposits: &[(u32, f64)],
        sched: &StepSchedule,
        leak: Option<&LeakageParams>,
        scratch: &mut StepScratch,
    ) {
        self.step_sparse_mode_into(state, deposits, sched, leak, SolverMode::Exact, scratch);
    }

    /// [`step_sparse_into`](CompiledModel::step_sparse_into) under an
    /// explicit [`SolverMode`]. `Exact` is bit-identical to the naive
    /// solvers; `Fast` obeys the bounded-divergence contract on
    /// [`SolverMode`].
    ///
    /// # Examples
    ///
    /// ```
    /// use tadfa_thermal::{Floorplan, RcParams, SolverMode, StepScratch, ThermalModel};
    ///
    /// let model = ThermalModel::new(Floorplan::grid(4, 4), RcParams::default());
    /// let solver = model.compile();
    /// let sched = solver.schedule(1e-4);
    /// let mut scratch = StepScratch::new();
    ///
    /// let mut exact = model.ambient_state();
    /// let mut fast = model.ambient_state();
    /// for _ in 0..100 {
    ///     solver.step_sparse_mode_into(
    ///         &mut exact, &[(5, 1e-3)], &sched, None, SolverMode::Exact, &mut scratch);
    ///     solver.step_sparse_mode_into(
    ///         &mut fast, &[(5, 1e-3)], &sched, None, SolverMode::Fast, &mut scratch);
    /// }
    /// // Fast reassociates (h·flow/cap → flow·(h/cap)) but stays within
    /// // the documented divergence bound of the exact trajectory.
    /// let diff = exact.linf_distance(&fast);
    /// assert!(diff <= 1e-9, "divergence {diff}");
    /// ```
    ///
    /// # Panics
    ///
    /// As [`step_sparse_into`](CompiledModel::step_sparse_into).
    #[inline]
    pub fn step_sparse_mode_into(
        &self,
        state: &mut ThermalState,
        deposits: &[(u32, f64)],
        sched: &StepSchedule,
        leak: Option<&LeakageParams>,
        mode: SolverMode,
        scratch: &mut StepScratch,
    ) {
        match (leak, mode) {
            (Some(lp), SolverMode::Exact) => {
                self.sparse_impl::<true, false, false>(state, deposits, sched, lp, scratch, &mut [])
            }
            (Some(lp), SolverMode::Fast) => {
                self.sparse_impl::<true, false, true>(state, deposits, sched, lp, scratch, &mut [])
            }
            (None, SolverMode::Exact) => self.sparse_impl::<false, false, false>(
                state,
                deposits,
                sched,
                &NO_LEAK,
                scratch,
                &mut [],
            ),
            (None, SolverMode::Fast) => self.sparse_impl::<false, false, true>(
                state,
                deposits,
                sched,
                &NO_LEAK,
                scratch,
                &mut [],
            ),
        };
    }

    /// [`step_sparse_mode_into`](CompiledModel::step_sparse_mode_into)
    /// with the fixpoint's compare-and-copy **fused into the kernel**:
    /// advances `state`, then returns the L∞ distance between the new
    /// temperatures and `prev` while overwriting `prev` with them — all
    /// in the same pass over the grid.
    ///
    /// Exactly equivalent (bit for bit, including the returned change)
    /// to calling the untracked entry and then
    /// [`ThermalState::linf_update_slices`]`(prev, state.temps())`: the
    /// per-lane `max` folds it splits off are exactly associative. With
    /// sub-stepping, only the final sub-step is tracked — the
    /// intermediate temperatures never existed for the untracked +
    /// `linf` composition either.
    ///
    /// # Examples
    ///
    /// ```
    /// use tadfa_thermal::{Floorplan, RcParams, SolverMode, StepScratch, ThermalModel,
    ///                     ThermalState};
    ///
    /// let model = ThermalModel::new(Floorplan::grid(4, 4), RcParams::default());
    /// let solver = model.compile();
    /// let sched = solver.schedule(1e-4);
    /// let mut scratch = StepScratch::new();
    ///
    /// let mut tracked = model.ambient_state();
    /// let mut prev = vec![solver.ambient(); 16];
    /// let change = solver.step_sparse_tracked_into(
    ///     &mut tracked, &[(5, 1e-3)], &sched, None, SolverMode::Exact,
    ///     &mut scratch, &mut prev);
    ///
    /// // Bit-identical to stepping untracked and folding separately.
    /// let mut plain = model.ambient_state();
    /// let mut prev2 = vec![solver.ambient(); 16];
    /// solver.step_sparse_into(&mut plain, &[(5, 1e-3)], &sched, None, &mut scratch);
    /// let expect = ThermalState::linf_update_slices(&mut prev2, plain.temps());
    /// assert_eq!(tracked.temps(), plain.temps());
    /// assert_eq!(change.to_bits(), expect.to_bits());
    /// assert_eq!(prev, prev2);
    /// ```
    ///
    /// # Panics
    ///
    /// As [`step_sparse_into`](CompiledModel::step_sparse_into), plus if
    /// `prev.len()` differs from the cell count.
    #[allow(clippy::too_many_arguments)] // the DFA's innermost call: every arg is hot-path state
    #[inline]
    pub fn step_sparse_tracked_into(
        &self,
        state: &mut ThermalState,
        deposits: &[(u32, f64)],
        sched: &StepSchedule,
        leak: Option<&LeakageParams>,
        mode: SolverMode,
        scratch: &mut StepScratch,
        prev: &mut [f64],
    ) -> f64 {
        assert_eq!(prev.len(), self.n, "prev size mismatch");
        match (leak, mode) {
            (Some(lp), SolverMode::Exact) => {
                self.sparse_impl::<true, true, false>(state, deposits, sched, lp, scratch, prev)
            }
            (Some(lp), SolverMode::Fast) => {
                self.sparse_impl::<true, true, true>(state, deposits, sched, lp, scratch, prev)
            }
            (None, SolverMode::Exact) => self
                .sparse_impl::<false, true, false>(state, deposits, sched, &NO_LEAK, scratch, prev),
            (None, SolverMode::Fast) => self
                .sparse_impl::<false, true, true>(state, deposits, sched, &NO_LEAK, scratch, prev),
        }
    }

    /// The one sparse-stepping implementation behind the public
    /// entries, monomorphized over leakage, change tracking, and mode.
    fn sparse_impl<const LEAKY: bool, const TRACK: bool, const FAST: bool>(
        &self,
        state: &mut ThermalState,
        deposits: &[(u32, f64)],
        sched: &StepSchedule,
        leak: &LeakageParams,
        scratch: &mut StepScratch,
        prev: &mut [f64],
    ) -> f64 {
        assert_eq!(state.len(), self.n, "state size mismatch");
        // Out-of-range deposit cells panic at the indexing site (the
        // scatter loops); no up-front scan needed.
        debug_assert!(deposits.iter().all(|&(_, w)| w >= 0.0), "negative power");
        if sched.n_sub == 0 {
            // A zero-dt step leaves the state untouched; tracking still
            // owes the caller the compare-and-copy against `prev`.
            return if TRACK {
                ThermalState::linf_update_slices(prev, state.temps())
            } else {
                0.0
            };
        }
        scratch.ensure(self.n);
        if sched.n_sub == 1 {
            // Scatter into the maintained-all-zero buffer, run ONE fused
            // kernel pass (step + leakage + power + change tracking),
            // then restore the zeros. `0.0 + w` is exact, so this is
            // bit-identical to a dense pass over the scattered vector.
            let StepScratch {
                next, sparse_power, ..
            } = scratch;
            if sparse_power.len() != self.n {
                sparse_power.clear();
                sparse_power.resize(self.n, 0.0);
            }
            for &(p, w) in deposits {
                sparse_power[p as usize] += w;
            }
            let change = self.substep_dispatch::<LEAKY, TRACK, FAST>(
                state.temps(),
                sparse_power,
                leak,
                next,
                prev,
                sched.h,
            );
            for &(p, _) in deposits {
                sparse_power[p as usize] = 0.0;
            }
            state.swap_buffer(next);
            return change;
        }
        // Sub-stepped: stage the dense power once (leakage frozen at the
        // pre-step temperatures, matching the reference semantics), then
        // run the dense kernel.
        let StepScratch {
            next, dense_power, ..
        } = scratch;
        dense_power.clear();
        dense_power.resize(self.n, 0.0);
        for &(p, w) in deposits {
            dense_power[p as usize] += w;
        }
        if LEAKY {
            for (pd, &t) in dense_power.iter_mut().zip(state.temps()) {
                *pd += leak_at(leak, t);
            }
        }
        self.run_substeps::<false, FAST>(
            state,
            dense_power,
            &NO_LEAK,
            sched.n_sub as usize,
            sched.h,
            next,
            if TRACK { Some(prev) } else { None },
        )
    }

    /// One sub-step through the selected kernel. Returns the tracked L∞
    /// change (0.0 when `!TRACK`; `prev` must then be empty).
    #[inline]
    fn substep_dispatch<const LEAKY: bool, const TRACK: bool, const FAST: bool>(
        &self,
        t: &[f64],
        power: &[f64],
        leak: &LeakageParams,
        next: &mut [f64],
        prev: &mut [f64],
        h: f64,
    ) -> f64 {
        match self.kernel {
            KernelKind::Stencil => {
                self.substep_stencil::<LEAKY, TRACK, FAST>(t, power, leak, next, prev, h)
            }
            KernelKind::Csr if self.edge_g.is_empty() => {
                self.substep_csr::<LEAKY, TRACK, FAST, false>(t, power, leak, next, prev, h)
            }
            KernelKind::Csr => {
                self.substep_csr::<LEAKY, TRACK, FAST, true>(t, power, leak, next, prev, h)
            }
        }
    }

    /// Executes `n_sub` Euler sub-steps through the selected kernel.
    /// When `LEAKY`, each cell's power is `power[i] + leak(T_i)` of the
    /// current sub-step's temperatures (callers guarantee `n_sub == 1`
    /// when that must equal the pre-step temperatures). With `track`,
    /// the **final** sub-step fuses the compare-and-copy against the
    /// given previous temperatures and the L∞ change is returned.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn run_substeps<const LEAKY: bool, const FAST: bool>(
        &self,
        state: &mut ThermalState,
        power: &[f64],
        leak: &LeakageParams,
        n_sub: usize,
        h: f64,
        next: &mut Vec<f64>,
        mut track: Option<&mut [f64]>,
    ) -> f64 {
        let mut change = 0.0;
        for k in 0..n_sub {
            if k + 1 == n_sub {
                if let Some(prev) = track.take() {
                    change = self.substep_dispatch::<LEAKY, true, FAST>(
                        state.temps(),
                        power,
                        leak,
                        next,
                        prev,
                        h,
                    );
                } else {
                    self.substep_dispatch::<LEAKY, false, FAST>(
                        state.temps(),
                        power,
                        leak,
                        next,
                        &mut [],
                        h,
                    );
                }
            } else {
                self.substep_dispatch::<LEAKY, false, FAST>(
                    state.temps(),
                    power,
                    leak,
                    next,
                    &mut [],
                    h,
                );
            }
            // The freshly computed temperatures become the state by
            // pointer swap; the old state vector becomes next round's
            // scratch. No copy, no allocation, identical values.
            state.swap_buffer(next);
        }
        change
    }

    /// Solves the steady state into a caller-owned `out` state
    /// (re-initialized to ambient, resized if needed) and reports how
    /// the iteration ended. Bit-identical to
    /// [`ThermalModel::steady_state_with`] under equal options.
    ///
    /// # Panics
    ///
    /// Panics if `power.len()` differs from the cell count.
    pub fn steady_state_into(
        &self,
        power: &[f64],
        out: &mut ThermalState,
        opts: &SteadyStateOptions,
    ) -> SteadyStateStats {
        self.steady_state_mode_into(power, out, opts, SolverMode::Exact)
    }

    /// [`steady_state_into`](CompiledModel::steady_state_into) under an
    /// explicit [`SolverMode`]: `Fast` replaces each cell's
    /// Gauss–Seidel divide with a multiply by the precomputed
    /// reciprocal denominator (bounded divergence, not bit-exact).
    ///
    /// # Examples
    ///
    /// ```
    /// use tadfa_thermal::{Floorplan, RcParams, SolverMode, SteadyStateOptions, ThermalModel};
    ///
    /// let model = ThermalModel::new(Floorplan::grid(4, 4), RcParams::default());
    /// let solver = model.compile();
    /// let mut power = vec![0.0; 16];
    /// power[5] = 1e-3;
    /// let opts = SteadyStateOptions::default();
    ///
    /// let mut exact = solver.ambient_state();
    /// let mut fast = solver.ambient_state();
    /// solver.steady_state_mode_into(&power, &mut exact, &opts, SolverMode::Exact);
    /// let stats = solver.steady_state_mode_into(&power, &mut fast, &opts, SolverMode::Fast);
    /// assert!(stats.converged);
    /// assert!(exact.linf_distance(&fast) <= 1e-5); // bounded divergence
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `power.len()` differs from the cell count.
    pub fn steady_state_mode_into(
        &self,
        power: &[f64],
        out: &mut ThermalState,
        opts: &SteadyStateOptions,
        mode: SolverMode,
    ) -> SteadyStateStats {
        assert_eq!(power.len(), self.n, "power vector size mismatch");
        out.reset_uniform(self.n, self.ambient);
        let mut stats = SteadyStateStats::start();
        for _ in 0..opts.max_sweeps {
            let t = out.temps_mut();
            let max_delta = match (self.kernel, mode) {
                (KernelKind::Stencil, SolverMode::Exact) => {
                    self.gs_sweep_stencil::<false>(t, power)
                }
                (KernelKind::Stencil, SolverMode::Fast) => self.gs_sweep_stencil::<true>(t, power),
                (KernelKind::Csr, SolverMode::Exact) => self.gs_sweep_csr::<false>(t, power),
                (KernelKind::Csr, SolverMode::Fast) => self.gs_sweep_csr::<true>(t, power),
            };
            stats.sweeps += 1;
            stats.residual = max_delta;
            if max_delta < opts.tolerance {
                stats.converged = true;
                break;
            }
        }
        stats
    }

    /// Convenience wrapper over [`CompiledModel::steady_state_into`]
    /// with default options, matching [`ThermalModel::steady_state`].
    pub fn steady_state(&self, power: &[f64]) -> ThermalState {
        let mut out = ThermalState::uniform(self.n, self.ambient);
        self.steady_state_into(power, &mut out, &SteadyStateOptions::default());
        out
    }

    /// One explicit-Euler sub-step via the grid stencil, fully fused:
    /// power deposit + temperature-dependent leakage + Euler update +
    /// (optionally) the fixpoint's compare-and-copy, one pass over the
    /// grid in explicit 8-wide lanes ([`crate::lanes::W8`]). Rows come
    /// in three bands (first, interior, last), each monomorphized over
    /// its vertical-neighbour pattern by [`CompiledModel::stencil_row`].
    /// Returns the tracked L∞ change (0.0 when `!TRACK`).
    fn substep_stencil<const LEAKY: bool, const TRACK: bool, const FAST: bool>(
        &self,
        t: &[f64],
        power: &[f64],
        leak: &LeakageParams,
        next: &mut [f64],
        prev: &mut [f64],
        h: f64,
    ) -> f64 {
        let ctx = LaneCtx::new(self, leak, h, FAST);
        let rows = self.rows;
        // Exactly-one-chunk rows (the 8-wide register files every
        // shipped floorplan uses) take the specialized whole-grid pass:
        // rolling row registers, no per-row slicing, masked vertical
        // edges — bit-identical by the same masked-conductance argument
        // as the lateral edges.
        if self.cols == LANES {
            return self.stencil_pass_w8::<LEAKY, TRACK, FAST>(t, power, next, prev, &ctx);
        }
        // Lane-wise change accumulators are folded across all rows and
        // reduced to a scalar exactly once — `max` is exactly
        // associative, so deferring the horizontal reduction cannot
        // change the result, and per-row `reduce_max` calls are the
        // single most expensive instruction sequence in the pass.
        let (mut vacc, mut sacc) = (ctx.zero, 0.0f64);
        if rows == 1 {
            let (v, s) = self.stencil_row::<LEAKY, false, false, TRACK, FAST>(
                t, power, leak, next, prev, 0, h, &ctx,
            );
            vacc = v;
            sacc = s;
        } else {
            let (v, s) = self.stencil_row::<LEAKY, false, true, TRACK, FAST>(
                t, power, leak, next, prev, 0, h, &ctx,
            );
            vacc = vacc.max(v);
            sacc = sacc.max(s);
            for r in 1..rows - 1 {
                let (v, s) = self.stencil_row::<LEAKY, true, true, TRACK, FAST>(
                    t, power, leak, next, prev, r, h, &ctx,
                );
                vacc = vacc.max(v);
                sacc = sacc.max(s);
            }
            let (v, s) = self.stencil_row::<LEAKY, true, false, TRACK, FAST>(
                t,
                power,
                leak,
                next,
                prev,
                rows - 1,
                h,
                &ctx,
            );
            vacc = vacc.max(v);
            sacc = sacc.max(s);
        }
        if TRACK {
            vacc.reduce_max().max(sacc)
        } else {
            0.0
        }
    }

    /// The whole-grid fused pass for grids exactly one chunk wide
    /// (`cols == LANES`) — the shipped 8-wide register files, hence the
    /// hottest loop in the repository.
    ///
    /// Compared with the generic per-row path it removes every per-row
    /// cost: function-call and slicing overhead, bounds-checked lane
    /// loads, and re-loading the three neighbour rows (the current row
    /// becomes the next row's `up` register, the prefetched row below
    /// becomes the next `ti`). The vertical edges use the same
    /// masked-conductance trick as the lateral ones: the first/last row
    /// reads *itself* as its missing neighbour against a conductance of
    /// `0.0`, so the masked term is exactly `(ti − ti)·0.0 = +0.0` and
    /// subtracting it reproduces the unmasked flow bit for bit.
    ///
    /// Returns the tracked L∞ change (0.0 when `!TRACK`); `prev`'s
    /// compare-and-overwrite semantics match
    /// [`stencil_row`](Self::stencil_row).
    #[inline(always)]
    fn stencil_pass_w8<const LEAKY: bool, const TRACK: bool, const FAST: bool>(
        &self,
        t: &[f64],
        power: &[f64],
        next: &mut [f64],
        prev: &mut [f64],
        ctx: &LaneCtx,
    ) -> f64 {
        let rows = self.rows;
        let n = rows * LANES;
        assert!(t.len() >= n && power.len() >= n && next.len() >= n);
        if TRACK {
            assert!(prev.len() >= n);
        }
        let tp = t.as_ptr();
        let pp = power.as_ptr();
        let np = next.as_mut_ptr();
        let prevp = prev.as_mut_ptr();
        let mut acc = ctx.zero;
        // SAFETY: every `load`/`store` below reads or writes lanes
        // `[base, base + LANES)` with `base = r·LANES` and `r < rows`
        // (or the explicitly guarded `base + 2·LANES` prefetch with
        // `r + 2 < rows`), all `< n` — in range by the length asserts
        // above. `t`, `power`, `next`, and `prev` are distinct slices
        // (solver state, scratch power, scratch out-buffer, caller's
        // tracking row), so no load observes a store of this pass.
        unsafe {
            let mut ti = W8::load(tp);
            let mut down = if rows > 1 {
                W8::load(tp.add(LANES))
            } else {
                ti
            };
            let mut up = ti; // dummy: masked by gu = 0 on the first row
            for r in 0..rows {
                let base = r * LANES;
                let access = W8::load(pp.add(base));
                let pw = if LEAKY {
                    let lk = ctx
                        .pc
                        .mul(ctx.one.add(ctx.co.mul(ti.sub(ctx.tr))))
                        .max(ctx.zero);
                    access.add(lk)
                } else {
                    access
                };
                let gu = if r == 0 { ctx.zero } else { ctx.g };
                let gd = if r + 1 == rows { ctx.zero } else { ctx.g };
                let mut flow = pw.sub(ti.sub(ctx.amb).mul(ctx.gv));
                flow = flow.sub(ti.sub(up).mul(gu));
                flow = flow.sub(ti.sub(down).mul(gd));
                flow = flow.sub(ti.sub(ti.shift_head_dup()).mul(ctx.gl_first));
                flow = flow.sub(ti.sub(ti.shift_tail_dup()).mul(ctx.gr_last));
                let out_v = if FAST {
                    ti.add(flow.mul(ctx.step)) // step = h/cap
                } else {
                    ti.add(ctx.step.mul(flow).div(ctx.cap)) // step = h
                };
                out_v.store(np.add(base));
                if TRACK {
                    let pv = W8::load(prevp.add(base));
                    acc = acc.max(out_v.sub(pv).abs());
                    out_v.store(prevp.add(base));
                }
                up = ti;
                ti = down;
                down = if r + 2 < rows {
                    W8::load(tp.add(base + 2 * LANES))
                } else {
                    ti // dummy: masked by gd = 0 on the last row
                };
            }
        }
        if TRACK {
            acc.reduce_max()
        } else {
            0.0
        }
    }

    /// One row of the fused stencil sub-step, monomorphized over whether
    /// the row above (`UP`) / below (`DOWN`) exists.
    ///
    /// Full 8-lane chunks run through [`W8`]; the missing left/right
    /// neighbour at a row edge is handled by the *masked-conductance*
    /// trick — the edge lane reads the cell itself as its neighbour and
    /// multiplies by a conductance lane of `0.0`, so the masked term is
    /// exactly `(ti − ti)·0.0 = +0.0` and `flow − (+0.0)` reproduces
    /// `flow` bit for bit (only a `−0.0 − (−0.0)` difference could
    /// perturb bits, and self-as-neighbour rules it out). The `cols %
    /// 8` tail — and every row of grids narrower than 8 — runs the
    /// scalar cell loop with the same fold order. Per-lane operation
    /// order matches the naive solver exactly: leakage
    /// `(pc·(1+co·(T−Tr))).max(0)`, then `flow = pw − (T−amb)·g_vert`,
    /// then the up/down/left/right conductance terms in
    /// `Floorplan::neighbors` order, then `T + h·flow/cap`
    /// (`T + flow·(h/cap)` under `FAST`).
    ///
    /// Returns this row's tracked change as a `(lane, scalar-tail)`
    /// accumulator pair — the caller folds rows lane-wise and performs
    /// the horizontal reduction once per sub-step (both zero when
    /// `!TRACK`). When `TRACK`, the row of `prev` is overwritten with
    /// the new temperatures (lane `max` folds are exactly associative,
    /// so the split accumulators cannot change the result).
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn stencil_row<
        const LEAKY: bool,
        const UP: bool,
        const DOWN: bool,
        const TRACK: bool,
        const FAST: bool,
    >(
        &self,
        t: &[f64],
        power: &[f64],
        leak: &LeakageParams,
        next: &mut [f64],
        prev: &mut [f64],
        r: usize,
        h: f64,
        ctx: &LaneCtx,
    ) -> (W8, f64) {
        let cols = self.cols;
        let (g_vert, g_lat, amb, cap) = (self.g_vert, self.g_lat, self.ambient, self.cap);
        let base = r * cols;
        let row = &t[base..base + cols];
        // Never read when the corresponding neighbour row is absent
        // (`UP` / `DOWN` are compile-time constants).
        let up_row = if UP { &t[base - cols..base] } else { row };
        let down_row = if DOWN {
            &t[base + cols..base + 2 * cols]
        } else {
            row
        };
        let p = &power[base..base + cols];
        let out = &mut next[base..base + cols];
        let prow: &mut [f64] = if TRACK {
            &mut prev[base..base + cols]
        } else {
            &mut []
        };

        let mut acc = ctx.zero;
        let mut scalar_acc = 0.0f64;
        let mut c0 = 0;
        while c0 + LANES <= cols {
            let ti = W8::read(&row[c0..]);
            let access = W8::read(&p[c0..]);
            let pw = if LEAKY {
                // (pc · (1 + co·(ti − tr))).max(0), scalar op for op.
                let lk = ctx
                    .pc
                    .mul(ctx.one.add(ctx.co.mul(ti.sub(ctx.tr))))
                    .max(ctx.zero);
                access.add(lk)
            } else {
                access
            };
            let mut flow = pw.sub(ti.sub(ctx.amb).mul(ctx.gv));
            if UP {
                flow = flow.sub(ti.sub(W8::read(&up_row[c0..])).mul(ctx.g));
            }
            if DOWN {
                flow = flow.sub(ti.sub(W8::read(&down_row[c0..])).mul(ctx.g));
            }
            let first = c0 == 0;
            let last = c0 + LANES == cols;
            let left = if first {
                ti.shift_head_dup()
            } else {
                W8::read(&row[c0 - 1..])
            };
            let gl = if first { ctx.gl_first } else { ctx.g };
            flow = flow.sub(ti.sub(left).mul(gl));
            let right = if last {
                ti.shift_tail_dup()
            } else {
                W8::read(&row[c0 + 1..])
            };
            let gr = if last { ctx.gr_last } else { ctx.g };
            flow = flow.sub(ti.sub(right).mul(gr));
            let out_v = if FAST {
                ti.add(flow.mul(ctx.step)) // step = h/cap
            } else {
                ti.add(ctx.step.mul(flow).div(ctx.cap)) // step = h
            };
            out_v.write(&mut out[c0..]);
            if TRACK {
                let pv = W8::read(&prow[c0..]);
                acc = acc.max(out_v.sub(pv).abs());
                out_v.write(&mut prow[c0..]);
            }
            c0 += LANES;
        }
        // Scalar tail (and whole rows of grids narrower than 8 lanes):
        // identical fold order, edge neighbours simply skipped.
        for c in c0..cols {
            let ti = row[c];
            let access = p[c];
            let pw = if LEAKY {
                access + leak_at(leak, ti)
            } else {
                access
            };
            let mut flow = pw - (ti - amb) * g_vert;
            if UP {
                flow -= (ti - up_row[c]) * g_lat;
            }
            if DOWN {
                flow -= (ti - down_row[c]) * g_lat;
            }
            if c > 0 {
                flow -= (ti - row[c - 1]) * g_lat;
            }
            if c + 1 < cols {
                flow -= (ti - row[c + 1]) * g_lat;
            }
            let nv = if FAST {
                ti + flow * ctx.hcap
            } else {
                ti + h * flow / cap
            };
            out[c] = nv;
            if TRACK {
                scalar_acc = scalar_acc.max((nv - prow[c]).abs());
                prow[c] = nv;
            }
        }
        (acc, scalar_acc)
    }

    /// One explicit-Euler sub-step via the generic CSR adjacency. When
    /// `WEIGHTED`, each edge carries its own conductance from `edge_g`
    /// (the weighted-graph plans); otherwise every edge is the uniform
    /// `g_lat`, byte-for-byte the historical loop. Change tracking
    /// (`TRACK`) and the fast-mode update fuse exactly as in the
    /// stencil kernel; returns the tracked L∞ change (0.0 otherwise).
    fn substep_csr<const LEAKY: bool, const TRACK: bool, const FAST: bool, const WEIGHTED: bool>(
        &self,
        t: &[f64],
        power: &[f64],
        leak: &LeakageParams,
        next: &mut [f64],
        prev: &mut [f64],
        h: f64,
    ) -> f64 {
        let (g_vert, g_lat, amb, cap) = (self.g_vert, self.g_lat, self.ambient, self.cap);
        let hcap = h / cap;
        let mut change = 0.0f64;
        for i in 0..self.n {
            let ti = t[i];
            let access = power[i];
            let pw = if LEAKY {
                access + leak_at(leak, ti)
            } else {
                access
            };
            let mut flow = pw - (ti - amb) * g_vert;
            let (s, e) = (self.row_ptr[i] as usize, self.row_ptr[i + 1] as usize);
            if WEIGHTED {
                for (&j, &g) in self.col_idx[s..e].iter().zip(&self.edge_g[s..e]) {
                    flow -= (ti - t[j as usize]) * g;
                }
            } else {
                for &j in &self.col_idx[s..e] {
                    flow -= (ti - t[j as usize]) * g_lat;
                }
            }
            let nv = if FAST {
                ti + flow * hcap
            } else {
                ti + h * flow / cap
            };
            next[i] = nv;
            if TRACK {
                change = change.max((nv - prev[i]).abs());
                prev[i] = nv;
            }
        }
        change
    }

    /// One Gauss–Seidel sweep via the grid stencil; returns the L∞
    /// update. Cells update in index order (N and W neighbours already
    /// carry this sweep's values), exactly like the naive sweep.
    ///
    /// This sweep stays deliberately **scalar and single-pass**: the
    /// west neighbour is this sweep's fresh value, so each cell's
    /// update chains through the previous cell's divide — the sweep is
    /// latency-bound on that recurrence, and the row-independent
    /// numerator terms execute for free in the divide's shadow.
    /// Widening them into a separate prefix pass was tried and
    /// **regressed** `steady/stencil/32x32` by ~30% (the extra buffer
    /// traffic is pure overhead; see docs/KERNEL_OPTIMIZATION_GUIDE.md,
    /// "rejected attempts"). `FAST` multiplies by the precomputed
    /// reciprocal denominator, which genuinely shortens the chain.
    fn gs_sweep_stencil<const FAST: bool>(&self, t: &mut [f64], power: &[f64]) -> f64 {
        let (rows, cols) = (self.rows, self.cols);
        let (g_vert, g_lat, amb) = (self.g_vert, self.g_lat, self.ambient);
        let mut max_delta: f64 = 0.0;
        for r in 0..rows {
            let up = r > 0;
            let down = r + 1 < rows;
            let base = r * cols;
            if cols == 1 {
                max_delta = max_delta.max(self.gs_cell::<FAST>(
                    t, power, base, cols, up, down, false, false, g_vert, g_lat, amb,
                ));
                continue;
            }
            max_delta = max_delta.max(self.gs_cell::<FAST>(
                t, power, base, cols, up, down, false, true, g_vert, g_lat, amb,
            ));
            if up && down {
                // Same slice-window trick as the transient kernel;
                // `split_at_mut` keeps the in-place (Gauss–Seidel)
                // update while the shared rows stay read-only.
                let (head, rest) = t.split_at_mut(base);
                let up_row = &head[base - cols..];
                let (row, tail) = rest.split_at_mut(cols);
                let down_row = &tail[..cols];
                let p = &power[base..base + cols];
                let den_row = &self.gs_den[base..base + cols];
                let rden_row = &self.gs_rden[base..base + cols];
                for c in 1..cols - 1 {
                    let mut num = p[c] + amb * g_vert;
                    num += up_row[c] * g_lat;
                    num += down_row[c] * g_lat;
                    num += row[c - 1] * g_lat;
                    num += row[c + 1] * g_lat;
                    let new = if FAST {
                        num * rden_row[c]
                    } else {
                        num / den_row[c]
                    };
                    max_delta = max_delta.max((new - row[c]).abs());
                    row[c] = new;
                }
            } else {
                #[allow(clippy::needless_range_loop)]
                for i in base + 1..base + cols - 1 {
                    max_delta = max_delta.max(self.gs_cell::<FAST>(
                        t, power, i, cols, up, down, true, true, g_vert, g_lat, amb,
                    ));
                }
            }
            let i = base + cols - 1;
            max_delta = max_delta.max(
                self.gs_cell::<FAST>(t, power, i, cols, up, down, true, false, g_vert, g_lat, amb),
            );
        }
        max_delta
    }

    /// One Gauss–Seidel cell update at flat index `i`, folding the
    /// neighbour terms in the naive sweep's exact order (up, down,
    /// left, right). Shared by the row-edge and degenerate-row paths of
    /// [`gs_sweep_stencil`](CompiledModel::gs_sweep_stencil).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn gs_cell<const FAST: bool>(
        &self,
        t: &mut [f64],
        power: &[f64],
        i: usize,
        cols: usize,
        up: bool,
        down: bool,
        left: bool,
        right: bool,
        g_vert: f64,
        g_lat: f64,
        amb: f64,
    ) -> f64 {
        let mut num = power[i] + amb * g_vert;
        if up {
            num += t[i - cols] * g_lat;
        }
        if down {
            num += t[i + cols] * g_lat;
        }
        if left {
            num += t[i - 1] * g_lat;
        }
        if right {
            num += t[i + 1] * g_lat;
        }
        let new = if FAST {
            num * self.gs_rden[i]
        } else {
            num / self.gs_den[i]
        };
        let delta = (new - t[i]).abs();
        t[i] = new;
        delta
    }

    /// One Gauss–Seidel sweep via the generic CSR adjacency (per-edge
    /// conductances when the plan is weighted). `FAST` multiplies by
    /// the precomputed reciprocal denominator instead of dividing.
    fn gs_sweep_csr<const FAST: bool>(&self, t: &mut [f64], power: &[f64]) -> f64 {
        let (g_vert, g_lat, amb) = (self.g_vert, self.g_lat, self.ambient);
        let weighted = !self.edge_g.is_empty();
        let mut max_delta: f64 = 0.0;
        for i in 0..self.n {
            let mut num = power[i] + amb * g_vert;
            let (s, e) = (self.row_ptr[i] as usize, self.row_ptr[i + 1] as usize);
            if weighted {
                for (&j, &g) in self.col_idx[s..e].iter().zip(&self.edge_g[s..e]) {
                    num += t[j as usize] * g;
                }
            } else {
                for &j in &self.col_idx[s..e] {
                    num += t[j as usize] * g_lat;
                }
            }
            let new = if FAST {
                num * self.gs_rden[i]
            } else {
                num / self.gs_den[i]
            };
            max_delta = max_delta.max((new - t[i]).abs());
            t[i] = new;
        }
        max_delta
    }
}

/// Per-sub-step splatted coefficients for the lane stencil kernel —
/// built once per [`CompiledModel::substep_stencil`] call.
#[derive(Copy, Clone)]
struct LaneCtx {
    /// `g_vert` splat.
    gv: W8,
    /// `g_lat` splat.
    g: W8,
    /// `g_lat` with lane 0 zeroed — the left-conductance mask of a
    /// row's first chunk (lane 0 has no west neighbour).
    gl_first: W8,
    /// `g_lat` with lane 7 zeroed — the right-conductance mask of a
    /// chunk ending exactly at the row edge.
    gr_last: W8,
    /// Ambient splat.
    amb: W8,
    /// `h` under Exact (the update is `h·flow/cap`), `h/cap` under
    /// Fast (the update is `flow·(h/cap)`).
    step: W8,
    /// `cap` splat (read only by the Exact update).
    cap: W8,
    /// Leakage `per_cell` splat.
    pc: W8,
    /// Leakage `temp_coeff` splat.
    co: W8,
    /// Leakage `reference_temp` splat.
    tr: W8,
    /// `1.0` splat.
    one: W8,
    /// `+0.0` splat (leak clamp + change accumulator seed).
    zero: W8,
    /// Scalar `h/cap` for the fast-mode tail cells.
    hcap: f64,
}

impl LaneCtx {
    #[inline]
    fn new(m: &CompiledModel, leak: &LeakageParams, h: f64, fast: bool) -> LaneCtx {
        let l = &m.lanes;
        // The scalar divide (and its lane broadcast) is paid only by
        // the reassociation-permitting fast mode; the exact update
        // divides by `cap` inside the kernel instead.
        let hcap = if fast { h / m.cap } else { h };
        LaneCtx {
            gv: l.gv,
            g: l.g,
            gl_first: l.gl_first,
            gr_last: l.gr_last,
            amb: l.amb,
            step: W8::splat(if fast { hcap } else { h }),
            cap: l.cap,
            pc: W8::splat(leak.per_cell),
            co: W8::splat(leak.temp_coeff),
            tr: W8::splat(leak.reference_temp),
            one: l.one,
            zero: l.zero,
            hcap,
        }
    }
}

/// The model-constant subset of [`LaneCtx`], broadcast once per
/// [`CompiledModel`] so the per-step context only splats the values
/// that actually vary between calls (step size and leakage
/// coefficients).
#[derive(Copy, Clone, Debug)]
struct ModelLanes {
    gv: W8,
    g: W8,
    gl_first: W8,
    gr_last: W8,
    amb: W8,
    cap: W8,
    one: W8,
    zero: W8,
}

impl ModelLanes {
    fn new(g_vert: f64, g_lat: f64, ambient: f64, cap: f64) -> ModelLanes {
        let mut gl = [g_lat; LANES];
        gl[0] = 0.0;
        let mut gr = [g_lat; LANES];
        gr[LANES - 1] = 0.0;
        ModelLanes {
            gv: W8::splat(g_vert),
            g: W8::splat(g_lat),
            gl_first: W8::from_array(gl),
            gr_last: W8::from_array(gr),
            amb: W8::splat(ambient),
            cap: W8::splat(cap),
            one: W8::splat(1.0),
            zero: W8::splat(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;
    use crate::rc::RcParams;

    fn model(rows: usize, cols: usize) -> ThermalModel {
        ThermalModel::new(Floorplan::grid(rows, cols), RcParams::default())
    }

    fn hot_power(n: usize) -> Vec<f64> {
        let mut p = vec![0.0; n];
        p[0] = 1e-3;
        if n > 1 {
            p[n / 2] = 0.7e-3;
        }
        p
    }

    #[test]
    fn compiled_constants_match_model() {
        let m = model(4, 4);
        let c = m.compile();
        assert_eq!(c.num_cells(), 16);
        assert_eq!(c.ambient().to_bits(), m.ambient().to_bits());
        assert_eq!(c.max_stable_dt().to_bits(), m.max_stable_dt().to_bits());
        assert_eq!(c.kernel(), KernelKind::Stencil);
    }

    #[test]
    fn csr_adjacency_matches_neighbors() {
        let m = model(3, 5);
        let c = CompiledModel::with_kernel(&m, KernelKind::Csr);
        for i in 0..15 {
            let want: Vec<u32> = m.floorplan().neighbors(i).map(|j| j as u32).collect();
            let (s, e) = (c.row_ptr[i] as usize, c.row_ptr[i + 1] as usize);
            assert_eq!(&c.col_idx[s..e], &want[..], "cell {i}");
        }
    }

    #[test]
    fn step_bit_identical_to_naive_across_kernels() {
        for (rows, cols) in [(1, 1), (1, 6), (6, 1), (2, 2), (3, 4), (8, 8)] {
            let m = model(rows, cols);
            let power = hot_power(rows * cols);
            for kernel in [KernelKind::Stencil, KernelKind::Csr] {
                let c = CompiledModel::with_kernel(&m, kernel);
                let mut fast = m.ambient_state();
                let mut naive = m.ambient_state();
                let mut scratch = StepScratch::new();
                // Mixed dt: single sub-step and heavily sub-stepped.
                for dt in [2e-6, 1e-4, 3e-3] {
                    c.step_into(&mut fast, &power, dt, &mut scratch);
                    m.step(&mut naive, &power, dt);
                    let fast_bits: Vec<u64> = fast.temps().iter().map(|t| t.to_bits()).collect();
                    let naive_bits: Vec<u64> = naive.temps().iter().map(|t| t.to_bits()).collect();
                    assert_eq!(fast_bits, naive_bits, "{rows}x{cols} {kernel:?} dt={dt}");
                }
            }
        }
    }

    #[test]
    fn steady_state_bit_identical_to_naive_across_kernels() {
        for (rows, cols) in [(1, 1), (1, 7), (7, 1), (3, 3), (5, 4)] {
            let m = model(rows, cols);
            let power = hot_power(rows * cols);
            let naive = m.steady_state(&power);
            for kernel in [KernelKind::Stencil, KernelKind::Csr] {
                let c = CompiledModel::with_kernel(&m, kernel);
                let fast = c.steady_state(&power);
                let fast_bits: Vec<u64> = fast.temps().iter().map(|t| t.to_bits()).collect();
                let naive_bits: Vec<u64> = naive.temps().iter().map(|t| t.to_bits()).collect();
                assert_eq!(fast_bits, naive_bits, "{rows}x{cols} {kernel:?}");
            }
        }
    }

    #[test]
    fn leaky_step_bit_identical_to_add_leakage_then_step() {
        use crate::power::PowerModel;
        let pm = PowerModel::default();
        let lp = pm.leakage_params();
        for (rows, cols) in [(1, 1), (1, 6), (4, 4), (8, 8)] {
            let m = model(rows, cols);
            let n = rows * cols;
            let sparse = hot_power(n);
            for kernel in [KernelKind::Stencil, KernelKind::Csr] {
                let c = CompiledModel::with_kernel(&m, kernel);
                // Both single-sub-step (fused) and sub-stepped (frozen
                // leakage) regimes.
                for dt in [2e-6, 5e-3] {
                    let mut fused = m.ambient_state();
                    let mut reference = m.ambient_state();
                    let mut scratch = StepScratch::new();
                    for _ in 0..4 {
                        c.step_leaky_into(&mut fused, &sparse, dt, &lp, &mut scratch);
                        let mut dense = sparse.clone();
                        pm.add_leakage(&mut dense, &reference);
                        m.step(&mut reference, &dense, dt);
                    }
                    let f: Vec<u64> = fused.temps().iter().map(|t| t.to_bits()).collect();
                    let r: Vec<u64> = reference.temps().iter().map(|t| t.to_bits()).collect();
                    assert_eq!(f, r, "{rows}x{cols} {kernel:?} dt={dt}");
                }
            }
        }
    }

    #[test]
    fn sparse_step_bit_identical_to_dense_scatter() {
        use crate::power::PowerModel;
        let pm = PowerModel::default();
        let lp = pm.leakage_params();
        for (rows, cols) in [(1, 1), (1, 6), (4, 4), (8, 8)] {
            let m = model(rows, cols);
            let n = rows * cols;
            let deposits: Vec<(u32, f64)> = [(0u32, 1e-3), ((n as u32) / 2, 0.7e-3)]
                .into_iter()
                .take(if n > 1 { 2 } else { 1 })
                .collect();
            let mut dense = vec![0.0; n];
            for &(p, w) in &deposits {
                dense[p as usize] += w;
            }
            for kernel in [KernelKind::Stencil, KernelKind::Csr] {
                let c = CompiledModel::with_kernel(&m, kernel);
                // Single-sub-step (fixup path) and sub-stepped (dense
                // staging path), with and without fused leakage.
                for dt in [2e-6, 5e-3] {
                    let sched = c.schedule(dt);
                    for leaky in [false, true] {
                        let mut sparse_s = m.ambient_state();
                        let mut dense_s = m.ambient_state();
                        let mut scratch = StepScratch::new();
                        for _ in 0..4 {
                            c.step_sparse_into(
                                &mut sparse_s,
                                &deposits,
                                &sched,
                                leaky.then_some(&lp),
                                &mut scratch,
                            );
                            if leaky {
                                let mut with_leak = dense.clone();
                                pm.add_leakage(&mut with_leak, &dense_s);
                                m.step(&mut dense_s, &with_leak, dt);
                            } else {
                                m.step(&mut dense_s, &dense, dt);
                            }
                        }
                        let a: Vec<u64> = sparse_s.temps().iter().map(|t| t.to_bits()).collect();
                        let b: Vec<u64> = dense_s.temps().iter().map(|t| t.to_bits()).collect();
                        assert_eq!(a, b, "{rows}x{cols} {kernel:?} dt={dt} leaky={leaky}");
                    }
                }
            }
        }
    }

    #[test]
    fn schedule_matches_step_derivation() {
        let m = model(4, 4);
        let c = m.compile();
        let zero = c.schedule(0.0);
        let mut s = c.ambient_state();
        let before = s.clone();
        c.step_sparse_into(&mut s, &[(0, 1e-3)], &zero, None, &mut StepScratch::new());
        assert_eq!(s.temps(), before.temps(), "zero dt is a no-op");

        // Scheduled and unscheduled stepping agree bit for bit.
        let power = hot_power(16);
        for dt in [1e-6, 4e-4, 2e-3] {
            let sched = c.schedule(dt);
            let mut a = c.ambient_state();
            let mut b = c.ambient_state();
            let mut scratch = StepScratch::new();
            c.step_scheduled_into(&mut a, &power, &sched, &mut scratch);
            c.step_into(&mut b, &power, dt, &mut scratch);
            assert_eq!(a.temps(), b.temps(), "dt={dt}");
        }
    }

    #[test]
    fn steady_state_reports_convergence() {
        let m = model(4, 4);
        let c = m.compile();
        let power = hot_power(16);
        let mut out = ThermalState::uniform(1, 0.0); // wrong size: resized
        let stats = c.steady_state_into(&power, &mut out, &SteadyStateOptions::default());
        assert!(stats.converged);
        assert!(stats.sweeps > 0 && stats.sweeps < 100_000);
        assert!(stats.residual < 1e-6);
        assert_eq!(out.len(), 16);
        assert!(out.peak() > c.ambient());
    }

    #[test]
    fn steady_state_reports_non_convergence_under_tight_budget() {
        let m = model(4, 4);
        let c = m.compile();
        let power = hot_power(16);
        let opts = SteadyStateOptions {
            tolerance: 1e-12,
            max_sweeps: 2,
        };
        let mut out = c.ambient_state();
        let stats = c.steady_state_into(&power, &mut out, &opts);
        assert!(!stats.converged);
        assert_eq!(stats.sweeps, 2);
        assert!(stats.residual > 1e-12);
    }

    #[test]
    fn scratch_is_reused_across_model_sizes() {
        let small = model(2, 2);
        let big = model(6, 6);
        let mut scratch = StepScratch::new();
        let mut s_small = small.ambient_state();
        let mut s_big = big.ambient_state();
        small
            .compile()
            .step_into(&mut s_small, &hot_power(4), 1e-4, &mut scratch);
        big.compile()
            .step_into(&mut s_big, &hot_power(36), 1e-4, &mut scratch);
        let mut naive = big.ambient_state();
        big.step(&mut naive, &hot_power(36), 1e-4);
        assert_eq!(s_big.temps(), naive.temps());
    }

    #[test]
    fn zero_dt_is_a_no_op() {
        let m = model(3, 3);
        let c = m.compile();
        let mut s = c.ambient_state();
        let before = s.clone();
        c.step_into(&mut s, &hot_power(9), 0.0, &mut StepScratch::new());
        assert_eq!(s.temps(), before.temps());
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn power_size_mismatch_panics() {
        let m = model(3, 3);
        let c = m.compile();
        let mut s = c.ambient_state();
        c.step_into(&mut s, &[0.0; 4], 1e-4, &mut StepScratch::new());
    }

    /// A weighted graph that lists the grid's own adjacency with the
    /// uniform lateral conductance must reproduce the grid plan bit for
    /// bit — transient (dense and sparse), leaky, and steady-state.
    #[test]
    fn uniform_weighted_graph_matches_grid_plan() {
        use crate::power::PowerModel;
        let m = model(3, 4);
        let n = 12;
        let g = 1.0 / m.params().lateral_resistance;
        let neighbors: Vec<Vec<(u32, f64)>> = (0..n)
            .map(|i| m.floorplan().neighbors(i).map(|j| (j as u32, g)).collect())
            .collect();
        let w =
            CompiledModel::from_weighted_graph(m.params(), &neighbors, m.max_stable_dt()).unwrap();
        let c = CompiledModel::with_kernel(&m, KernelKind::Csr);
        assert_eq!(w.kernel(), KernelKind::Csr);
        assert_eq!(w.max_stable_dt().to_bits(), c.max_stable_dt().to_bits());

        let power = hot_power(n);
        let lp = PowerModel::default().leakage_params();
        let bits =
            |s: &ThermalState| -> Vec<u64> { s.temps().iter().map(|t| t.to_bits()).collect() };

        let mut a = w.ambient_state();
        let mut b = c.ambient_state();
        let mut scratch = StepScratch::new();
        for dt in [2e-6, 3e-3] {
            w.step_into(&mut a, &power, dt, &mut scratch);
            c.step_into(&mut b, &power, dt, &mut scratch);
            assert_eq!(bits(&a), bits(&b), "dense dt={dt}");
            w.step_leaky_into(&mut a, &power, dt, &lp, &mut scratch);
            c.step_leaky_into(&mut b, &power, dt, &lp, &mut scratch);
            assert_eq!(bits(&a), bits(&b), "leaky dt={dt}");
            let deposits = [(0u32, 1e-3), (5u32, 0.4e-3)];
            w.step_sparse_into(&mut a, &deposits, &w.schedule(dt), Some(&lp), &mut scratch);
            c.step_sparse_into(&mut b, &deposits, &c.schedule(dt), Some(&lp), &mut scratch);
            assert_eq!(bits(&a), bits(&b), "sparse dt={dt}");
        }
        assert_eq!(bits(&w.steady_state(&power)), bits(&c.steady_state(&power)));
    }

    /// A weighted graph with *no* edges decomposes into isolated cells:
    /// each cell settles at its own isolated rise, untouched by its
    /// (former) neighbours.
    #[test]
    fn edgeless_weighted_graph_is_isolated_cells() {
        let params = RcParams::default();
        let neighbors: Vec<Vec<(u32, f64)>> = vec![Vec::new(); 4];
        let limit = 0.5 * params.cell_capacitance / (1.0 / params.vertical_resistance);
        let w = CompiledModel::from_weighted_graph(&params, &neighbors, limit).unwrap();
        let mut power = vec![0.0; 4];
        power[1] = 1e-3;
        let ss = w.steady_state(&power);
        let expect = params.ambient + 1e-3 * params.vertical_resistance;
        assert!((ss.get(1) - expect).abs() < 1e-6, "{}", ss.get(1));
        for i in [0, 2, 3] {
            assert!((ss.get(i) - params.ambient).abs() < 1e-6, "cell {i}");
        }
    }

    #[test]
    fn weighted_graph_rejects_bad_input() {
        use crate::error::ThermalError;
        let params = RcParams::default();
        let ok = vec![vec![(1u32, 10.0)], vec![(0u32, 10.0)]];
        assert!(CompiledModel::from_weighted_graph(&params, &ok, 1e-6).is_ok());
        assert!(matches!(
            CompiledModel::from_weighted_graph(&params, &[], 1e-6),
            Err(ThermalError::EmptyFloorplan { .. })
        ));
        assert!(matches!(
            CompiledModel::from_weighted_graph(&params, &ok, 0.0),
            Err(ThermalError::InvalidParam {
                param: "max_stable_dt",
                ..
            })
        ));
        let oob = vec![vec![(5u32, 10.0)], Vec::new()];
        assert!(matches!(
            CompiledModel::from_weighted_graph(&params, &oob, 1e-6),
            Err(ThermalError::InvalidParam {
                param: "neighbor",
                ..
            })
        ));
        let zero_g = vec![vec![(1u32, 0.0)], Vec::new()];
        assert!(matches!(
            CompiledModel::from_weighted_graph(&params, &zero_g, 1e-6),
            Err(ThermalError::InvalidParam {
                param: "edge_conductance",
                ..
            })
        ));
        let bad_rc = RcParams {
            ambient: -1.0,
            ..RcParams::default()
        };
        assert!(CompiledModel::from_weighted_graph(&bad_rc, &ok, 1e-6).is_err());
    }
}
