//! The scenario runner: task set × mapping policy × multi-core die,
//! executed end to end.
//!
//! A scenario runs in three deterministic phases:
//!
//! 1. **Analyze** — every task's function goes through the existing
//!    single-core `Session` pipeline on a parallel
//!    [`Engine`](tadfa_core::engine::Engine) (batch-parallel, results
//!    in input order, byte-identical at any worker count). This yields
//!    one [`ThermalReport`] per task and the derived
//!    [`TaskMetrics`] the policies consume.
//! 2. **Map** — the [`MappingPolicy`] places tasks on cores in arrival
//!    order, then (policy permitting) rebalances; rebalance moves are
//!    the scenario's migration count. This phase is purely sequential
//!    and reads only phase-1 metrics, so it cannot observe engine
//!    scheduling.
//! 3. **Simulate** — the die-wide coupled RC model (compiled once from
//!    the [`MultiCoreFloorplan`]) steps the piecewise-constant power
//!    timeline the mapping implies, recording the transient peak, and
//!    solves the steady state of the time-averaged power.
//!
//! Because every phase is a pure function of the scenario
//! configuration, [`ScenarioResult::fingerprint`] is byte-identical
//! across runs and worker counts — the property the CI golden-report
//! gate enforces.

use crate::covert::{decode, CovertConfig, CovertSummary};
use crate::dtm::{self, DtmConfig, DtmSummary};
use crate::multicore::MultiCoreFloorplan;
use crate::policy::{mapping_policy_by_name, MappingContext};
use crate::task::{task_metrics, Task, TaskMetrics};
use std::sync::Arc;
use tadfa_core::engine::Engine;
use tadfa_core::{
    CacheStats, Session, SessionCore, SolverMode, TadfaError, ThermalDfaConfig, ThermalReport,
};
use tadfa_ir::{Function, Module};
use tadfa_thermal::hashing::Fnv128;
use tadfa_thermal::{CompiledModel, SteadyStateOptions, ThermalState};

/// A validated, runnable scenario: die, tasks, policies, analysis
/// configuration.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Display name, echoed into the report.
    pub name: String,
    /// The multi-core die.
    pub die: MultiCoreFloorplan,
    /// The task set (any order; the runner schedules by arrival).
    pub tasks: Vec<Task>,
    /// Mapping-policy name (see
    /// [`MAPPING_POLICY_NAMES`](crate::MAPPING_POLICY_NAMES)).
    pub mapping: String,
    /// Register-assignment policy name for the per-task analysis.
    pub assignment_policy: String,
    /// Seed for seeded assignment policies.
    pub assignment_seed: u64,
    /// Thermal-DFA configuration for the per-task analysis.
    pub dfa: ThermalDfaConfig,
    /// Engine worker threads for the analysis phase. Has no effect on
    /// any reported value — only on wall-clock time.
    pub workers: usize,
    /// When set, the tasks are the functions of this module (one task
    /// per function, in module order) and the analysis phase runs
    /// interprocedurally through
    /// [`Engine::analyze_module_opts`](tadfa_core::engine::Engine::analyze_module_opts),
    /// so tasks may `call` each other and callee bodies are summarised
    /// once, bottom-up. `None` keeps the per-function batch path.
    pub module: Option<Module>,
    /// Dynamic thermal management for the simulation phase. `None` (and
    /// the explicit `"none"` policy) keep the open-loop timeline
    /// bit-identical to historical runs — see `docs/DETERMINISM.md`.
    pub dtm: Option<DtmConfig>,
    /// Covert-channel instrumentation: when set, the simulator samples
    /// the receiver core's tile peak on the bit grid and the result
    /// carries a decoded [`CovertSummary`].
    pub covert: Option<CovertConfig>,
}

impl ScenarioConfig {
    /// A scenario with the workspace-default analysis knobs.
    pub fn new(
        name: &str,
        die: MultiCoreFloorplan,
        tasks: Vec<Task>,
        mapping: &str,
    ) -> ScenarioConfig {
        ScenarioConfig {
            name: name.to_string(),
            die,
            tasks,
            mapping: mapping.to_string(),
            assignment_policy: "first-free".to_string(),
            assignment_seed: 0,
            dfa: ThermalDfaConfig::default(),
            workers: 4,
            module: None,
            dtm: None,
            covert: None,
        }
    }
}

/// The golden-gate guard: committed golden fingerprints are **exact**
/// solver contracts, so the `tadfa check` subcommand (and the in-tree
/// scenario gate) refuse a spec that requests the
/// reassociation-permitting [`SolverMode::Fast`] unless the caller
/// explicitly opted in (`--allow-fast`). Fast-mode runs are
/// deterministic on one build, but their fingerprints are not
/// comparable to exact-mode goldens — see `docs/DETERMINISM.md`.
pub fn golden_gate_guard(cfg: &ScenarioConfig, allow_fast: bool) -> Result<(), String> {
    if cfg.dfa.solver_mode == SolverMode::Fast && !allow_fast {
        return Err(format!(
            "scenario '{}' requests solver = \"fast\": golden fingerprints are exact-mode \
             contracts; pass --allow-fast to gate a fast-mode golden deliberately",
            cfg.name
        ));
    }
    Ok(())
}

/// One task's scheduling outcome.
#[derive(Clone, Debug)]
pub struct TaskOutcome {
    /// The task's name.
    pub name: String,
    /// The core it ran on (after any migration).
    pub core: usize,
    /// Arrival time, seconds.
    pub arrival: f64,
    /// Start time after queueing, seconds.
    pub start: f64,
    /// Core occupancy, seconds.
    pub length: f64,
    /// Single-core analysis peak, K.
    pub peak_temperature: f64,
    /// Joules deposited per execution.
    pub energy: f64,
    /// The task's [`ThermalReport::fingerprint`].
    pub fingerprint: u128,
}

/// Aggregates for one core.
#[derive(Clone, Debug)]
pub struct CoreSummary {
    /// Core index.
    pub core: usize,
    /// Tasks mapped onto this core (input-order indices).
    pub tasks: Vec<usize>,
    /// Total joules mapped onto the core.
    pub energy: f64,
    /// Total seconds the core is occupied.
    pub busy: f64,
    /// Hottest single-task analysis peak on the core, K (ambient when
    /// idle).
    pub peak_temperature: f64,
}

/// Die-wide thermal outcome.
#[derive(Clone, Debug)]
pub struct DieSummary {
    /// Hottest cell temperature at any timeline breakpoint, K.
    pub transient_peak: f64,
    /// When the transient peak was observed, seconds.
    pub transient_peak_time: f64,
    /// Steady-state peak under the time-averaged power, K.
    pub steady_peak: f64,
    /// Whether the steady-state solve converged.
    pub steady_converged: bool,
    /// Gauss–Seidel sweeps the steady solve used.
    pub steady_sweeps: usize,
    /// When the last task finishes, seconds.
    pub makespan: f64,
}

/// Everything one scenario run produces.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Scenario name.
    pub name: String,
    /// Mapping policy used.
    pub mapping: String,
    /// Cores on the die.
    pub cores: usize,
    /// Task index → core (final, post-migration).
    pub assignments: Vec<usize>,
    /// Rebalance moves the mapping policy performed.
    pub migrations: usize,
    /// Per-task outcomes, in input order.
    pub tasks: Vec<TaskOutcome>,
    /// Per-core aggregates.
    pub per_core: Vec<CoreSummary>,
    /// Die-wide thermal summary.
    pub die: DieSummary,
    /// What the DTM controller did, when one was configured.
    pub dtm: Option<DtmSummary>,
    /// What the covert-channel receiver decoded, when instrumented.
    pub covert: Option<CovertSummary>,
    /// The full per-task analysis reports, in input order (heavier than
    /// [`ScenarioResult::tasks`]; kept for downstream consumers like
    /// heat-map rendering).
    pub reports: Vec<ThermalReport>,
}

impl ScenarioResult {
    /// A 128-bit digest of every scheduling and thermal output: task
    /// report fingerprints, final core assignments, start times,
    /// migrations, and the die's transient/steady numbers (exact bits).
    ///
    /// Two runs fingerprint equal iff the whole scenario reproduced
    /// bit-identically — the equality the CI golden-report job diffs.
    pub fn fingerprint(&self) -> u128 {
        let mut h = Fnv128::new();
        h.write_u64(self.cores as u64);
        h.write_u64(self.migrations as u64);
        h.write_u64(self.tasks.len() as u64);
        for t in &self.tasks {
            h.write_u64(t.core as u64);
            h.write_u64((t.fingerprint >> 64) as u64);
            h.write_u64(t.fingerprint as u64);
            h.write_f64(t.start, 0.0);
            h.write_f64(t.energy, 0.0);
        }
        h.write_f64(self.die.transient_peak, 0.0);
        h.write_f64(self.die.transient_peak_time, 0.0);
        h.write_f64(self.die.steady_peak, 0.0);
        h.write_u64(self.die.steady_converged as u64);
        h.write_u64(self.die.steady_sweeps as u64);
        h.write_f64(self.die.makespan, 0.0);
        // Closed-loop blocks fold in only when configured, so the
        // fingerprints of historical (DTM-free) scenarios are unchanged.
        if let Some(d) = &self.dtm {
            for b in d.policy.bytes() {
                h.write_u64(b as u64);
            }
            h.write_u64(d.epochs as u64);
            h.write_u64(d.level_changes as u64);
            h.write_u64(d.throttle_events as u64);
            h.write_u64(d.migrations as u64);
        }
        if let Some(c) = &self.covert {
            h.write_u64(c.bits as u64);
            h.write_u64(c.errors as u64);
            h.write_f64(c.bandwidth_bps, 0.0);
            h.write_f64(c.threshold_k, 0.0);
            h.write_f64(c.swing_k, 0.0);
            for b in c.decoded.bytes() {
                h.write_u64(b as u64);
            }
        }
        h.finish()
    }
}

/// Request-scoped overrides for one [`PreparedScenario::run_with`]
/// call — the per-request knobs a long-lived service forwards without
/// rebuilding the scenario's engine: a worker count for this run only
/// and a deadline past which the run aborts cleanly with
/// [`TadfaError::DeadlineExceeded`]. Neither can change a computed
/// result; this is the engine's
/// [`BatchOptions`](tadfa_core::engine::BatchOptions) under the
/// runner's vocabulary (same type, no translation layer).
pub use tadfa_core::engine::BatchOptions as RunOverrides;

/// A scenario resolved once and runnable many times: the validated
/// [`ScenarioConfig`] plus the shared session core, parallel engine
/// (with its [`SolveCache`](tadfa_core::SolveCache)), compiled die
/// solver, and cloned task functions — everything `run_scenario` used
/// to rebuild per call.
///
/// This is the unit a persistent service holds per scenario: repeated
/// [`run_with`](PreparedScenario::run_with) calls share the solve
/// cache, so repetitions of the same task profiles are answered from
/// memory — and because the cache keys on exact bits (quantum 0), a
/// cache-warm run is **byte-identical** to a cold one, which is the
/// service's golden-equality contract. Every field is immutable shared
/// state (`Send + Sync`), so one `&PreparedScenario` can serve
/// concurrent requests from many service threads.
#[derive(Debug)]
pub struct PreparedScenario {
    cfg: ScenarioConfig,
    core: Arc<SessionCore>,
    engine: Engine,
    solver: CompiledModel,
    funcs: Vec<Function>,
}

impl PreparedScenario {
    /// Validates the configuration and builds the reusable state: the
    /// session, the engine, and the compiled die-wide solver.
    ///
    /// # Errors
    ///
    /// * [`TadfaError::UnknownPolicy`] for an unknown mapping or
    ///   assignment policy name;
    /// * [`TadfaError::InvalidConfig`] for a non-finite/negative task
    ///   arrival, a non-positive task length, or zero workers;
    /// * any session/engine construction error.
    pub fn prepare(cfg: ScenarioConfig) -> Result<PreparedScenario, TadfaError> {
        // Fail fast on names and task timing so a service rejects a bad
        // spec at load time, not on the first request.
        mapping_policy_by_name(&cfg.mapping)
            .ok_or_else(|| TadfaError::UnknownPolicy(cfg.mapping.clone()))?;
        if let Some(module) = &cfg.module {
            // Unknown callees, arity mismatches and recursion are spec
            // bugs; surface them at load time, not on the first request.
            tadfa_ir::verify_module(module)?;
            if module.len() != cfg.tasks.len() {
                return Err(TadfaError::InvalidConfig {
                    param: "module",
                    value: module.len() as f64,
                    reason: "a module scenario needs one task per module function, in order",
                });
            }
        }
        if let Some(dtm) = &cfg.dtm {
            dtm.validate()?;
        }
        if let Some(covert) = &cfg.covert {
            covert.validate(cfg.die.cores())?;
        }
        for t in &cfg.tasks {
            if !t.arrival.is_finite() || t.arrival < 0.0 {
                return Err(TadfaError::InvalidConfig {
                    param: "arrival",
                    value: t.arrival,
                    reason: "task arrivals must be finite and non-negative",
                });
            }
            if !t.length.is_finite() || t.length <= 0.0 {
                return Err(TadfaError::InvalidConfig {
                    param: "length",
                    value: t.length,
                    reason: "task lengths must be finite and positive",
                });
            }
        }
        let session = Session::builder()
            .floorplan(cfg.die.rows(), cfg.die.cols())
            .rc(cfg.die.rc_params())
            .dfa_config(cfg.dfa)
            .policy_name(&cfg.assignment_policy, cfg.assignment_seed)
            .build()?;
        let engine = Engine::from_session(&session, cfg.workers)?;
        let core = session.shared_core();
        let solver = cfg.die.compile();
        let funcs: Vec<Function> = cfg.tasks.iter().map(|t| t.func.clone()).collect();
        Ok(PreparedScenario {
            cfg,
            core,
            engine,
            solver,
            funcs,
        })
    }

    /// The validated configuration this scenario was prepared from.
    pub fn config(&self) -> &ScenarioConfig {
        &self.cfg
    }

    /// The shared analysis engine (and through it, the solve cache a
    /// service surfaces in its `stats` responses).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Counters of the engine's solve cache, accumulated across every
    /// run of this prepared scenario.
    pub fn cache_stats(&self) -> CacheStats {
        self.engine.cache_stats()
    }

    /// The scenario's solve cache itself — the handle a persistence
    /// tier uses to enable the spill log, drain new entries to disk,
    /// and preload recovered entries on restart.
    pub fn solve_cache(&self) -> &tadfa_core::SolveCache {
        self.engine.cache()
    }

    /// Runs the scenario with its configured knobs.
    ///
    /// # Errors
    ///
    /// See [`PreparedScenario::run_with`].
    pub fn run(&self) -> Result<ScenarioResult, TadfaError> {
        self.run_with(&RunOverrides::default())
    }

    /// Runs the scenario end to end — analyze (batch-parallel on the
    /// shared engine), map (sequential), simulate (die-wide transient +
    /// steady) — honouring per-request overrides; see the crate-level
    /// docs for the determinism contract.
    ///
    /// # Errors
    ///
    /// * [`TadfaError::DeadlineExceeded`] if the override deadline
    ///   passed before every task's analysis was started;
    /// * any error the per-task analysis pipeline reports (the first
    ///   failing task aborts the scenario — scenarios are specs, so a
    ///   failing task is a configuration bug, not data).
    pub fn run_with(&self, over: &RunOverrides) -> Result<ScenarioResult, TadfaError> {
        let cfg = &self.cfg;

        // Phase 1: analyze every task on the single-core pipeline. A
        // module scenario goes through the interprocedural entry point
        // (summaries bottom-up, then per-function fixpoints); reports
        // come back in module order, which is also task order.
        let reports: Vec<ThermalReport> = match &cfg.module {
            Some(module) => self
                .engine
                .analyze_module_opts(module, over)?
                .into_reports(),
            None => {
                let mut reports = Vec::with_capacity(self.funcs.len());
                for r in self.engine.analyze_batch_parallel_opts(&self.funcs, over) {
                    reports.push(r?);
                }
                reports
            }
        };
        let rf = self.core.register_file();
        let pm = self.core.power_model();
        let metrics: Vec<TaskMetrics> = reports
            .iter()
            .map(|r| task_metrics(r, rf, pm, cfg.dfa.seconds_per_cycle))
            .collect();

        // Phase 2: map tasks to cores in arrival order.
        let mut mapping = mapping_policy_by_name(&cfg.mapping)
            .ok_or_else(|| TadfaError::UnknownPolicy(cfg.mapping.clone()))?;
        let cores = cfg.die.cores();
        let ambient = cfg.die.rc_params().ambient;
        let mut order: Vec<usize> = (0..cfg.tasks.len()).collect();
        order.sort_by(|&a, &b| {
            cfg.tasks[a]
                .arrival
                .partial_cmp(&cfg.tasks[b].arrival)
                .expect("finite arrivals")
                .then(a.cmp(&b))
        });
        mapping.reset(cores, cfg.tasks.len());
        let mut assignments = vec![0usize; cfg.tasks.len()];
        let mut core_energy = vec![0.0f64; cores];
        let mut core_busy = vec![0.0f64; cores];
        let mut core_peak = vec![ambient; cores];
        for (pos, &task) in order.iter().enumerate() {
            let core = mapping
                .choose(&MappingContext {
                    cores,
                    task_index: pos,
                    metrics: &metrics[task],
                    core_energy: &core_energy,
                    core_busy_until: &core_busy,
                    core_peak_estimate: &core_peak,
                })
                .min(cores - 1);
            assignments[task] = core;
            core_energy[core] += metrics[task].energy;
            core_busy[core] = core_busy[core].max(cfg.tasks[task].arrival) + cfg.tasks[task].length;
            core_peak[core] = core_peak[core].max(metrics[task].peak_temperature);
        }
        let migrations = mapping.rebalance(&mut assignments, &metrics, cores);

        // Phase 3: closed-loop die-wide simulation. Without DTM (or
        // with the explicit "none" policy) the event set degenerates to
        // the open-loop start/finish breakpoints and the simulator
        // reproduces the historical timeline bit for bit — the golden
        // gate's refactor contract (see `crate::dtm` docs).
        let sample_times: Vec<f64> = cfg
            .covert
            .as_ref()
            .map_or_else(Vec::new, CovertConfig::sample_times);
        let sim = dtm::simulate(&dtm::SimInput {
            die: &cfg.die,
            solver: &self.solver,
            tasks: &cfg.tasks,
            metrics: &metrics,
            order: &order,
            assignments: &assignments,
            dtm: cfg.dtm.as_ref(),
            sample_times: &sample_times,
            sample_core: cfg.covert.as_ref().map_or(0, |c| c.receiver_core),
        })?;
        let assignments = sim.final_core;

        // Steady state of the time-averaged power.
        let n = cfg.die.num_cells();
        let mut steady = ThermalState::uniform(n, ambient);
        let stats = self.solver.steady_state_mode_into(
            &sim.avg_power,
            &mut steady,
            &SteadyStateOptions::default(),
            cfg.dfa.solver_mode,
        );

        let covert = cfg.covert.as_ref().map(|c| decode(c, &sim.samples));

        // Assemble.
        let tasks: Vec<TaskOutcome> = cfg
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| TaskOutcome {
                name: t.name.clone(),
                core: assignments[i],
                arrival: t.arrival,
                start: sim.starts[i],
                length: sim.occupancy[i],
                peak_temperature: metrics[i].peak_temperature,
                energy: metrics[i].energy,
                fingerprint: metrics[i].fingerprint,
            })
            .collect();
        let per_core: Vec<CoreSummary> = (0..cores)
            .map(|core| {
                let on_core: Vec<usize> = (0..cfg.tasks.len())
                    .filter(|&i| assignments[i] == core)
                    .collect();
                CoreSummary {
                    core,
                    energy: on_core.iter().map(|&i| metrics[i].energy).sum(),
                    busy: on_core.iter().map(|&i| sim.occupancy[i]).sum(),
                    peak_temperature: on_core
                        .iter()
                        .map(|&i| metrics[i].peak_temperature)
                        .fold(ambient, f64::max),
                    tasks: on_core,
                }
            })
            .collect();

        Ok(ScenarioResult {
            name: cfg.name.clone(),
            mapping: cfg.mapping.clone(),
            cores,
            assignments,
            migrations,
            tasks,
            per_core,
            die: DieSummary {
                transient_peak: sim.transient_peak,
                transient_peak_time: sim.transient_peak_time,
                steady_peak: steady.peak(),
                steady_converged: stats.converged,
                steady_sweeps: stats.sweeps,
                makespan: sim.makespan,
            },
            dtm: sim.dtm,
            covert,
            reports,
        })
    }
}

/// Runs a scenario end to end, building (and discarding) the prepared
/// state for one shot — the batch entry point. Long-lived callers
/// should [`PreparedScenario::prepare`] once and run many times to keep
/// the solve cache warm; both paths produce byte-identical results.
///
/// # Errors
///
/// Everything [`PreparedScenario::prepare`] and
/// [`PreparedScenario::run`] report.
pub fn run_scenario(cfg: &ScenarioConfig) -> Result<ScenarioResult, TadfaError> {
    PreparedScenario::prepare(cfg.clone())?.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::suite_tasks;
    use std::time::Instant;
    use tadfa_thermal::RcParams;

    fn quad_config(mapping: &str) -> ScenarioConfig {
        let die = MultiCoreFloorplan::new(4, 4, 4, RcParams::default(), Some(40.0)).unwrap();
        let mut cfg = ScenarioConfig::new("test", die, suite_tasks(8, 5e-4, 1e-3), mapping);
        cfg.workers = 2;
        cfg
    }

    #[test]
    fn scenario_runs_and_reports_consistently() {
        let r = run_scenario(&quad_config("round-robin")).unwrap();
        assert_eq!(r.cores, 4);
        assert_eq!(r.tasks.len(), 8);
        assert_eq!(r.assignments, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(r.migrations, 0);
        assert!(r.die.transient_peak > RcParams::default().ambient);
        assert!(r.die.steady_converged);
        assert!(r.die.makespan > 0.0);
        // Per-core partitions cover every task exactly once.
        let mut seen: Vec<usize> = r.per_core.iter().flat_map(|c| c.tasks.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
        // Report fingerprints survive into outcomes.
        for (outcome, report) in r.tasks.iter().zip(&r.reports) {
            assert_eq!(outcome.fingerprint, report.fingerprint());
        }
    }

    #[test]
    fn fingerprint_is_stable_across_runs_and_workers() {
        let base = run_scenario(&quad_config("coolest-core"))
            .unwrap()
            .fingerprint();
        for workers in [1, 3, 8] {
            let mut cfg = quad_config("coolest-core");
            cfg.workers = workers;
            assert_eq!(
                run_scenario(&cfg).unwrap().fingerprint(),
                base,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn prepared_scenario_warm_runs_are_byte_identical() {
        let prepared = PreparedScenario::prepare(quad_config("coolest-core")).unwrap();
        let cold = prepared.run().unwrap();
        let stats_cold = prepared.cache_stats();
        assert!(stats_cold.misses > 0, "cold run populated the cache");

        // A warm re-run — even at a different worker count — answers
        // repeated solves from the cache and reproduces every byte.
        let warm = prepared
            .run_with(&RunOverrides {
                workers: Some(1),
                deadline: None,
            })
            .unwrap();
        assert_eq!(cold.fingerprint(), warm.fingerprint());
        assert_eq!(
            crate::report::render_report(&cold),
            crate::report::render_report(&warm)
        );
        let stats_warm = prepared.cache_stats();
        assert!(stats_warm.hits > stats_cold.hits, "warm run hit the cache");

        // And both equal the one-shot batch path.
        let one_shot = run_scenario(&quad_config("coolest-core")).unwrap();
        assert_eq!(cold.fingerprint(), one_shot.fingerprint());
    }

    #[test]
    fn prepared_scenario_is_shareable_across_threads() {
        fn assert_shareable<T: Send + Sync>() {}
        assert_shareable::<PreparedScenario>();
    }

    #[test]
    fn prepared_scenario_deadline_fails_cleanly_and_recovers() {
        let prepared = PreparedScenario::prepare(quad_config("round-robin")).unwrap();
        let expired = RunOverrides {
            workers: None,
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
        };
        assert!(matches!(
            prepared.run_with(&expired),
            Err(TadfaError::DeadlineExceeded)
        ));
        // The prepared state survives an abandoned run intact.
        assert!(prepared.run().is_ok());
    }

    #[test]
    fn module_scenarios_run_interprocedurally_and_reproduce() {
        let module = tadfa_ir::parse_module(
            "func @hot(%0) {\nblock0:\n  %1 = mul %0, %0\n  %2 = mul %1, %1\n  \
             %3 = mul %2, %2\n  ret %3\n}\n\n\
             func @a(%0) {\nblock0:\n  %1 = call @hot(%0)\n  ret %1\n}\n\n\
             func @b(%0) {\nblock0:\n  %1 = call @hot(%0)\n  %2 = add %1, %0\n  ret %2\n}\n",
        )
        .unwrap();
        let die = MultiCoreFloorplan::new(2, 4, 4, RcParams::default(), Some(40.0)).unwrap();
        let tasks: Vec<Task> = module
            .functions()
            .iter()
            .enumerate()
            .map(|(k, f)| Task {
                name: f.name().to_string(),
                func: f.clone(),
                arrival: k as f64 * 5e-4,
                length: 1e-3,
            })
            .collect();
        let mut cfg = ScenarioConfig::new("module", die, tasks, "coolest-core");
        cfg.module = Some(module);
        let base = run_scenario(&cfg).unwrap();
        assert_eq!(base.tasks.len(), 3);
        assert_eq!(base.tasks[0].name, "hot");
        // Callers replay the callee's steps, so they run hotter than
        // the callee alone.
        assert!(base.tasks[1].peak_temperature > RcParams::default().ambient);
        for workers in [1, 3] {
            let mut cfg = cfg.clone();
            cfg.workers = workers;
            assert_eq!(
                run_scenario(&cfg).unwrap().fingerprint(),
                base.fingerprint(),
                "workers={workers}"
            );
        }

        // A mismatched task list is rejected at prepare time, and so is
        // a recursive module.
        let mut short = cfg.clone();
        short.tasks.pop();
        assert!(matches!(
            PreparedScenario::prepare(short),
            Err(TadfaError::InvalidConfig {
                param: "module",
                ..
            })
        ));
        let rec = tadfa_ir::parse_module(
            "func @loop(%0) {\nblock0:\n  %1 = call @loop(%0)\n  ret %1\n}\n",
        )
        .unwrap();
        let mut bad = cfg.clone();
        bad.tasks = vec![Task {
            name: "loop".to_string(),
            func: rec.functions()[0].clone(),
            arrival: 0.0,
            length: 1e-3,
        }];
        bad.module = Some(rec);
        assert!(matches!(
            PreparedScenario::prepare(bad),
            Err(TadfaError::Verify(_))
        ));
    }

    #[test]
    fn policies_disagree_on_placement() {
        let rr = run_scenario(&quad_config("round-robin")).unwrap();
        let shard = run_scenario(&quad_config("static-shard")).unwrap();
        assert_ne!(rr.assignments, shard.assignments);
        assert_ne!(rr.fingerprint(), shard.fingerprint());
    }

    #[test]
    fn unknown_names_and_bad_tasks_are_errors() {
        let mut cfg = quad_config("no-such-policy");
        assert!(matches!(
            run_scenario(&cfg),
            Err(TadfaError::UnknownPolicy(_))
        ));
        cfg.mapping = "round-robin".to_string();
        cfg.assignment_policy = "bogus".to_string();
        assert!(matches!(
            run_scenario(&cfg),
            Err(TadfaError::UnknownPolicy(_))
        ));
        let mut cfg = quad_config("round-robin");
        cfg.tasks[0].length = 0.0;
        assert!(matches!(
            run_scenario(&cfg),
            Err(TadfaError::InvalidConfig {
                param: "length",
                ..
            })
        ));
        let mut cfg = quad_config("round-robin");
        cfg.tasks[0].arrival = f64::NAN;
        assert!(matches!(
            run_scenario(&cfg),
            Err(TadfaError::InvalidConfig {
                param: "arrival",
                ..
            })
        ));
    }

    #[test]
    fn empty_task_set_is_fine() {
        let die = MultiCoreFloorplan::new(2, 4, 4, RcParams::default(), None).unwrap();
        let cfg = ScenarioConfig::new("empty", die, Vec::new(), "round-robin");
        let r = run_scenario(&cfg).unwrap();
        assert_eq!(r.tasks.len(), 0);
        assert_eq!(r.die.makespan, 0.0);
        let amb = RcParams::default().ambient;
        assert!((r.die.transient_peak - amb).abs() < 1e-12);
        assert!((r.die.steady_peak - amb).abs() < 1e-6);
    }

    #[test]
    fn thermal_balanced_spreads_a_skewed_stream() {
        // All tasks arrive at once; round-robin and thermal-balanced
        // both spread them, but the balanced policy balances energy.
        let mut cfg = quad_config("thermal-balanced");
        for t in &mut cfg.tasks {
            t.arrival = 0.0;
        }
        let r = run_scenario(&cfg).unwrap();
        let energies: Vec<f64> = r.per_core.iter().map(|c| c.energy).collect();
        let max = energies.iter().cloned().fold(f64::MIN, f64::max);
        let min = energies.iter().cloned().fold(f64::MAX, f64::min);
        let total: f64 = energies.iter().sum();
        assert!(max - min <= total / 2.0, "balanced spread: {energies:?}");
    }
}
