//! Cross-crate property tests (proptest): the invariants that must hold
//! for *every* program the generator can produce.

use proptest::prelude::*;
use tadfa::prelude::*;
use tadfa::workloads::{generate, GeneratorConfig};

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        any::<u64>(),
        1usize..6,
        1usize..8,
        1usize..12,
        0usize..3,
        prop::bool::ANY,
    )
        .prop_map(|(seed, segments, exprs, pressure, loops, memory)| GeneratorConfig {
            seed,
            segments,
            exprs_per_segment: exprs,
            pressure,
            loops: loops.min(segments),
            trip_count: 10,
            memory,
            hot_vars: 0,
            hot_weight: 8,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated program verifies, allocates conflict-free under
    /// every policy, and executes deterministically.
    #[test]
    fn generated_programs_allocate_and_run(config in arb_config()) {
        let func = generate(&config);
        prop_assert!(Verifier::new(&func).run().is_ok());

        let rf = RegisterFile::new(Floorplan::grid(4, 4));
        for name in ["first-free", "chessboard", "round-robin"] {
            let mut f = func.clone();
            let mut policy = tadfa::regalloc::policy_by_name(name, &rf, 5).expect("known");
            let alloc = allocate_linear_scan(
                &mut f, &rf, policy.as_mut(), &RegAllocConfig::default());
            let alloc = match alloc {
                Ok(a) => a,
                Err(e) => return Err(TestCaseError::fail(format!("{name}: {e}"))),
            };
            prop_assert!(tadfa::regalloc::validate_assignment(&f, &alloc.assignment).is_empty());

            // Allocation rewrites (spills) never change results.
            let golden = Interpreter::new(&func).with_fuel(5_000_000).run(&[1, 2]);
            let rewritten = Interpreter::new(&f).with_fuel(10_000_000).run(&[1, 2]);
            match (golden, rewritten) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a.ret, b.ret),
                (a, b) => return Err(TestCaseError::fail(format!("exec mismatch: {a:?} vs {b:?}"))),
            }
        }
    }

    /// The thermal DFA converges on every generated program (max merge,
    /// default δ) and never predicts below ambient.
    #[test]
    fn dfa_converges_and_stays_above_ambient(config in arb_config()) {
        let mut func = generate(&config);
        let rf = RegisterFile::new(Floorplan::grid(4, 4));
        let alloc = match allocate_linear_scan(
            &mut func, &rf, &mut FirstFree, &RegAllocConfig::default()) {
            Ok(a) => a,
            Err(e) => return Err(TestCaseError::fail(e.to_string())),
        };
        let grid = AnalysisGrid::full(&rf, RcParams::default());
        let result = ThermalDfa::new(
            &func, &alloc.assignment, &grid,
            PowerModel::default(), ThermalDfaConfig::default()).run();
        prop_assert!(result.convergence.is_converged());
        let peak_map = result.peak_map();
        prop_assert!(peak_map.min() >= grid.model().ambient() - 1e-9);
        prop_assert!(peak_map.peak() < 600.0, "physically absurd temperature");
    }

    /// Printer/parser round-trip is the identity on generated programs.
    #[test]
    fn text_roundtrip_is_identity(config in arb_config()) {
        let func = generate(&config);
        let text = func.to_string();
        let reparsed = tadfa::ir::parse_function(&text)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(text, reparsed.to_string());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// RC steady state is monotone in power: more power anywhere never
    /// cools anything.
    #[test]
    fn steady_state_monotone_in_power(
        base in prop::collection::vec(0.0f64..1e-3, 16),
        extra_cell in 0usize..16,
        extra in 0.0f64..1e-3,
    ) {
        let model = ThermalModel::new(Floorplan::grid(4, 4), RcParams::default());
        let s1 = model.steady_state(&base);
        let mut boosted = base.clone();
        boosted[extra_cell] += extra;
        let s2 = model.steady_state(&boosted);
        for i in 0..16 {
            prop_assert!(s2.get(i) >= s1.get(i) - 1e-6);
        }
    }

    /// Transient never overshoots: temperatures stay between ambient and
    /// the isolated-rise bound of the strongest source.
    #[test]
    fn transient_bounded(
        power in prop::collection::vec(0.0f64..2e-3, 16),
        dt in 1e-6f64..5e-3,
    ) {
        let model = ThermalModel::new(Floorplan::grid(4, 4), RcParams::default());
        let mut s = model.ambient_state();
        model.step(&mut s, &power, dt);
        let total: f64 = power.iter().sum();
        let bound = model.isolated_rise(total);
        for i in 0..16 {
            prop_assert!(s.get(i) >= model.ambient() - 1e-9);
            prop_assert!(s.get(i) <= bound + 1e-6);
        }
    }
}
