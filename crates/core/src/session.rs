//! The `Session` façade: one stable entry point for the whole pipeline.
//!
//! The paper's flow — allocate → thermal DFA → critical set → (optimize)
//! → re-analyse — used to require every caller to hand-wire five
//! objects (`RegisterFile`, `AnalysisGrid`, `PowerModel`,
//! `ThermalDfaConfig`, a policy) per call. A [`Session`] owns all of
//! that state once: the register file, the analysis grid (the expensive
//! RC model construction), the power model, and every config are chosen
//! in one place at build time and reused across [`Session::analyze`]
//! calls — the batch-oriented shape that production serving and every
//! future scaling change (sharding, caching, async) builds on.
//!
//! Internally a session is two halves:
//!
//! * a [`SessionCore`] — the validated, immutable analysis state
//!   (geometry, grid, power model, configs), held in an
//!   [`Arc`] so the parallel [`Engine`](crate::engine::Engine) can
//!   share it across worker threads without copying the RC model;
//! * per-call state — the assignment policy object and reusable
//!   scratch buffers — which stays private to the session (one logical
//!   thread of analysis).
//!
//! # Determinism contract
//!
//! [`Session::analyze`] is a pure function of the session configuration
//! and the input function: it does not retain state between calls
//! (allocation resets the policy, and every built-in policy's
//! [`reset`](tadfa_regalloc::AssignmentPolicy::reset) restores its
//! initial state). Consequently [`Session::analyze_batch`] is
//! order-stable: report `k` depends only on `funcs[k]`, never on the
//! other items, the batch size, or previous batches. The configuration
//! is fixed for the whole batch — `set_*` reconfiguration requires
//! `&mut self` and therefore cannot interleave with a running batch.
//! The regression tests in `tests/engine_parallel.rs` pin this down.
//!
//! All validation happens in [`SessionBuilder::build`] and the
//! `set_*` reconfiguration methods, and failures are reported as
//! [`TadfaError`] values — no panic is reachable through the façade.
//! Non-convergence of the fixpoint is *not* an error: it is reported as
//! data via [`Convergence`](crate::Convergence) on the returned
//! [`ThermalReport`].
//!
//! # Example
//!
//! ```
//! use tadfa_core::Session;
//!
//! let w = tadfa_workloads::fibonacci();
//! let mut session = Session::builder().floorplan(8, 8).build()?;
//! let report = session.analyze(&w.func)?;
//! assert!(report.convergence().is_converged());
//! assert!(report.peak_temperature() > report.ambient());
//! # Ok::<(), tadfa_core::TadfaError>(())
//! ```

use crate::cache::SolveCache;
use crate::config::{Convergence, ThermalDfaConfig};
use crate::critical::{CriticalConfig, CriticalSet};
use crate::dfa::{DfaScratch, ThermalDfa, ThermalDfaResult};
use crate::error::TadfaError;
use crate::grid::AnalysisGrid;
use crate::predictive::{PredictiveConfig, PredictiveDfa, PredictiveResult};
use crate::summary::ThermalSummary;
use std::collections::HashMap;
use std::sync::Arc;
use tadfa_ir::{CallGraph, Function, Module};
use tadfa_regalloc::{
    allocate_linear_scan, policy_by_name, AllocStats, Assignment, AssignmentPolicy, RegAllocConfig,
};
use tadfa_thermal::hashing::Fnv128;
use tadfa_thermal::{Floorplan, PowerModel, RcParams, RegisterFile, ThermalState};

/// How the builder was asked to pick the assignment policy.
enum PolicySpec {
    /// Resolve a built-in policy by name at build time.
    Named(String, u64),
    /// Use this policy object directly.
    Boxed(Box<dyn AssignmentPolicy>),
}

impl std::fmt::Debug for PolicySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicySpec::Named(name, seed) => write!(f, "Named({name:?}, {seed})"),
            PolicySpec::Boxed(p) => write!(f, "Boxed({})", p.name()),
        }
    }
}

/// Builder for a [`Session`].
///
/// Every knob has the paper's default; only the floorplan geometry is
/// required. Nothing is validated until [`SessionBuilder::build`], which
/// reports every problem as a [`TadfaError`].
#[derive(Debug)]
pub struct SessionBuilder {
    rows: usize,
    cols: usize,
    rc: RcParams,
    power: PowerModel,
    dfa: ThermalDfaConfig,
    alloc: RegAllocConfig,
    critical: CriticalConfig,
    predictive: PredictiveConfig,
    granularity: Option<(usize, usize)>,
    policy: PolicySpec,
}

impl Default for SessionBuilder {
    fn default() -> SessionBuilder {
        SessionBuilder {
            rows: 8,
            cols: 8,
            rc: RcParams::default(),
            power: PowerModel::default(),
            dfa: ThermalDfaConfig::default(),
            alloc: RegAllocConfig::default(),
            critical: CriticalConfig::default(),
            predictive: PredictiveConfig::default(),
            granularity: None,
            // Named so that default sessions stay replicable across
            // engine workers (the compiler default of §2).
            policy: PolicySpec::Named("first-free".to_string(), 0),
        }
    }
}

impl SessionBuilder {
    /// Register-file geometry: a `rows × cols` grid of cells (default
    /// 8×8, the paper's Fig. 1 panel).
    pub fn floorplan(mut self, rows: usize, cols: usize) -> SessionBuilder {
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// RC thermal-model parameters (default: the calibrated constants).
    pub fn rc(mut self, rc: RcParams) -> SessionBuilder {
        self.rc = rc;
        self
    }

    /// Access-energy and leakage model (default: calibrated constants).
    pub fn power(mut self, power: PowerModel) -> SessionBuilder {
        self.power = power;
        self
    }

    /// Thermal-DFA parameters: δ, iteration cap, merge rule, timing.
    pub fn dfa_config(mut self, dfa: ThermalDfaConfig) -> SessionBuilder {
        self.dfa = dfa;
        self
    }

    /// Register-allocator parameters (spill-round budget).
    pub fn alloc_config(mut self, alloc: RegAllocConfig) -> SessionBuilder {
        self.alloc = alloc;
        self
    }

    /// Criticality-threshold parameters.
    pub fn critical_config(mut self, critical: CriticalConfig) -> SessionBuilder {
        self.critical = critical;
        self
    }

    /// Predictive (pre-assignment) analysis parameters.
    pub fn predictive_config(mut self, predictive: PredictiveConfig) -> SessionBuilder {
        self.predictive = predictive;
        self
    }

    /// Analysis-grid granularity: `rows × cols` analysis points over the
    /// physical floorplan (§3's accuracy/cost knob). Default: full
    /// resolution, one point per register cell.
    pub fn granularity(mut self, rows: usize, cols: usize) -> SessionBuilder {
        self.granularity = Some((rows, cols));
        self
    }

    /// Register-assignment policy object (default: the first-free
    /// compiler default of §2). A session built from a policy *object*
    /// cannot be replicated across [`Engine`](crate::engine::Engine)
    /// workers — prefer [`SessionBuilder::policy_name`] where possible.
    pub fn policy(mut self, policy: Box<dyn AssignmentPolicy>) -> SessionBuilder {
        self.policy = PolicySpec::Boxed(policy);
        self
    }

    /// Register-assignment policy by built-in name (`"first-free"`,
    /// `"random"`, `"chessboard"`, `"round-robin"`, `"farthest-spread"`,
    /// `"coldest-first"`); seeded policies use `seed`.
    pub fn policy_name(mut self, name: &str, seed: u64) -> SessionBuilder {
        self.policy = PolicySpec::Named(name.to_string(), seed);
        self
    }

    /// Validates every setting, builds the shared state, and returns the
    /// ready [`Session`].
    ///
    /// # Errors
    ///
    /// * [`TadfaError::EmptyFloorplan`] for a zero-sized register file;
    /// * [`TadfaError::InvalidConfig`] for non-positive RC parameters,
    ///   invalid DFA parameters, a zero allocator round budget, a
    ///   criticality fraction outside `[0, 1]`, or bad predictive
    ///   parameters;
    /// * [`TadfaError::EmptyGrid`] / [`TadfaError::GridTooFine`] for a
    ///   degenerate analysis granularity;
    /// * [`TadfaError::UnknownPolicy`] for an unrecognised policy name.
    pub fn build(self) -> Result<Session, TadfaError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(TadfaError::EmptyFloorplan {
                rows: self.rows,
                cols: self.cols,
            });
        }
        validate_rc(&self.rc)?;
        self.dfa.validate()?;
        self.predictive.validate()?;
        if self.alloc.max_rounds == 0 {
            return Err(TadfaError::InvalidConfig {
                param: "max_rounds",
                value: 0.0,
                reason: "allocator needs at least one round",
            });
        }
        validate_critical(&self.critical)?;

        let rf = RegisterFile::new(Floorplan::grid(self.rows, self.cols));
        let grid = match self.granularity {
            Some((gr, gc)) => AnalysisGrid::coarsened(&rf, self.rc, gr, gc)?,
            None => AnalysisGrid::full(&rf, self.rc),
        };
        let (policy, policy_spec) = match self.policy {
            PolicySpec::Boxed(p) => (p, None),
            PolicySpec::Named(name, seed) => {
                let p = policy_by_name(&name, &rf, seed)
                    .ok_or_else(|| TadfaError::UnknownPolicy(name.clone()))?;
                (p, Some((name, seed)))
            }
        };

        Ok(Session {
            core: Arc::new(SessionCore {
                rf,
                rc: self.rc,
                grid,
                power: self.power,
                dfa: self.dfa,
                alloc: self.alloc,
                critical: self.critical,
                predictive: self.predictive,
            }),
            policy,
            policy_spec,
            scratch: DfaScratch::default(),
        })
    }
}

fn validate_critical(critical: &CriticalConfig) -> Result<(), TadfaError> {
    if !(0.0..=1.0).contains(&critical.temp_fraction) {
        return Err(TadfaError::InvalidConfig {
            param: "temp_fraction",
            value: critical.temp_fraction,
            reason: "must lie in [0, 1]",
        });
    }
    Ok(())
}

fn validate_rc(rc: &RcParams) -> Result<(), TadfaError> {
    // Delegates to the thermal crate's error-first validation; lifted
    // into the façade's `InvalidConfig` shape for uniform reporting.
    rc.checked().map_err(|e| match e {
        tadfa_thermal::ThermalError::InvalidParam {
            param,
            value,
            reason,
        } => TadfaError::InvalidConfig {
            param,
            value,
            reason,
        },
        other => TadfaError::Thermal(other),
    })
}

/// The immutable, shareable half of a [`Session`]: register file,
/// analysis grid (with its RC model), power model, and every config —
/// everything the per-function pipeline reads but never writes.
///
/// A `SessionCore` is validated at construction (only
/// [`SessionBuilder::build`] makes one) and is `Send + Sync`, so the
/// parallel [`Engine`](crate::engine::Engine) shares one core across
/// its worker threads behind an [`Arc`]. The mutable ingredients of an
/// analysis — the policy object and scratch buffers — are passed *into*
/// [`SessionCore::analyze_with`] per call instead of living here.
#[derive(Clone, Debug)]
pub struct SessionCore {
    rf: RegisterFile,
    rc: RcParams,
    grid: AnalysisGrid,
    power: PowerModel,
    dfa: ThermalDfaConfig,
    alloc: RegAllocConfig,
    critical: CriticalConfig,
    predictive: PredictiveConfig,
}

impl SessionCore {
    /// Runs the full per-function pipeline against this core: allocate
    /// under `policy`, run the thermal DFA (through `cache` when given),
    /// and identify the critical variables. This is the engine's
    /// worker-side entry point; [`Session::analyze`] is the same call
    /// with the session's own policy and scratch.
    ///
    /// `func` itself is untouched; the allocated form (spill code
    /// included) is returned in the report.
    ///
    /// # Errors
    ///
    /// Returns [`TadfaError::Alloc`] if register allocation fails.
    pub fn analyze_with(
        &self,
        func: &Function,
        policy: &mut dyn AssignmentPolicy,
        scratch: &mut DfaScratch,
        cache: Option<&SolveCache>,
    ) -> Result<ThermalReport, TadfaError> {
        self.analyze_inner(func, policy, scratch, cache, false)
    }

    /// [`analyze_with`](SessionCore::analyze_with) driven through the
    /// retained naive reference solver
    /// ([`ThermalDfa::run_reference`]) — the pre-optimization analysis
    /// path. Exists so the solver quickbench has an honest cold
    /// baseline and the suite-wide bit-identity tests
    /// (`tests/solver_identity.rs`) can compare whole reports; never
    /// the path to use in production.
    ///
    /// # Errors
    ///
    /// Returns [`TadfaError::Alloc`] if register allocation fails.
    pub fn analyze_with_reference_solver(
        &self,
        func: &Function,
        policy: &mut dyn AssignmentPolicy,
    ) -> Result<ThermalReport, TadfaError> {
        self.analyze_inner(func, policy, &mut DfaScratch::default(), None, true)
    }

    /// [`analyze_with`](SessionCore::analyze_with) for a function whose
    /// `call` sites resolve against already-computed callee
    /// `summaries` — the engine's worker-side entry point for module
    /// members. Callee-free functions behave exactly as
    /// [`analyze_with`](SessionCore::analyze_with).
    ///
    /// # Errors
    ///
    /// Returns [`TadfaError::Alloc`] if register allocation fails and
    /// [`TadfaError::MissingSummary`] if a callee has no summary.
    pub fn analyze_with_summaries(
        &self,
        func: &Function,
        summaries: &HashMap<String, Arc<ThermalSummary>>,
        policy: &mut dyn AssignmentPolicy,
        scratch: &mut DfaScratch,
        cache: Option<&SolveCache>,
    ) -> Result<ThermalReport, TadfaError> {
        let mut allocated = func.clone();
        let alloc = allocate_linear_scan(&mut allocated, &self.rf, policy, &self.alloc)?;
        let dfa = ThermalDfa::with_summaries(
            &allocated,
            &alloc.assignment,
            &self.grid,
            self.power,
            self.dfa,
            summaries,
        )?;
        let dfa = dfa.run_with(scratch, cache);
        self.finish_report(allocated, alloc, dfa)
    }

    /// Allocates `func` and flattens its [`ThermalSummary`], resolving
    /// call sites against already-computed callee `summaries`. With a
    /// `cache` the summary is memoised under the function's
    /// [`signature`](ThermalDfa::signature): the flatten runs at most
    /// once per distinct function body per cache lifetime, no matter
    /// how many modules or callers share it.
    ///
    /// # Errors
    ///
    /// Returns [`TadfaError::Alloc`] if register allocation fails and
    /// [`TadfaError::MissingSummary`] if a callee has no summary.
    pub fn summarize_with(
        &self,
        func: &Function,
        summaries: &HashMap<String, Arc<ThermalSummary>>,
        policy: &mut dyn AssignmentPolicy,
        cache: Option<&SolveCache>,
    ) -> Result<Arc<ThermalSummary>, TadfaError> {
        let mut allocated = func.clone();
        let alloc = allocate_linear_scan(&mut allocated, &self.rf, policy, &self.alloc)?;
        let dfa = ThermalDfa::with_summaries(
            &allocated,
            &alloc.assignment,
            &self.grid,
            self.power,
            self.dfa,
            summaries,
        )?;
        Ok(self.memo_summary(&dfa, cache))
    }

    /// Runs the whole interprocedural pipeline for a module: verify
    /// (unknown callees, arity mismatches, and recursive cycles are
    /// typed errors), build the call graph, then walk its condensation
    /// bottom-up — every callee is summarised before any caller — and
    /// analyze each function with callee summaries replayed at its call
    /// sites. This is the sequential reference the parallel
    /// [`Engine::analyze_module`](crate::engine::Engine::analyze_module)
    /// is byte-identical to.
    ///
    /// # Errors
    ///
    /// Returns [`TadfaError::Verify`] for a module that fails
    /// verification (including [recursion]) and [`TadfaError::Alloc`]
    /// if any member fails allocation; the first failing function
    /// aborts the module.
    ///
    /// [recursion]: tadfa_ir::VerifyError::RecursiveCall
    pub fn analyze_module_with(
        &self,
        module: &Module,
        policy: &mut dyn AssignmentPolicy,
        scratch: &mut DfaScratch,
        cache: Option<&SolveCache>,
    ) -> Result<ModuleReport, TadfaError> {
        tadfa_ir::verify_module(module)?;
        let cg = CallGraph::build(module);
        let mut summaries: HashMap<String, Arc<ThermalSummary>> = HashMap::new();
        let mut reports: Vec<Option<ThermalReport>> = (0..module.len()).map(|_| None).collect();
        for idx in cg.bottom_up() {
            let func = &module.functions()[idx];
            let (report, summary) =
                self.analyze_module_function(func, &summaries, policy, scratch, cache)?;
            summaries.insert(func.name().to_string(), summary);
            reports[idx] = Some(report);
        }
        Ok(ModuleReport {
            names: module.names().map(String::from).collect(),
            reports: reports
                .into_iter()
                .map(|r| r.expect("bottom-up order covers every function"))
                .collect(),
        })
    }

    /// One module member's report *and* summary from a single
    /// allocation — the sequential module walk's inner step.
    fn analyze_module_function(
        &self,
        func: &Function,
        summaries: &HashMap<String, Arc<ThermalSummary>>,
        policy: &mut dyn AssignmentPolicy,
        scratch: &mut DfaScratch,
        cache: Option<&SolveCache>,
    ) -> Result<(ThermalReport, Arc<ThermalSummary>), TadfaError> {
        let mut allocated = func.clone();
        let alloc = allocate_linear_scan(&mut allocated, &self.rf, policy, &self.alloc)?;
        let dfa = ThermalDfa::with_summaries(
            &allocated,
            &alloc.assignment,
            &self.grid,
            self.power,
            self.dfa,
            summaries,
        )?;
        let summary = self.memo_summary(&dfa, cache);
        let result = dfa.run_with(scratch, cache);
        let report = self.finish_report(allocated, alloc, result)?;
        Ok((report, summary))
    }

    /// The summary for `dfa`'s function, answered from the cache's
    /// summary memo when an identical body (same signature) was
    /// flattened before.
    fn memo_summary(
        &self,
        dfa: &ThermalDfa<'_>,
        cache: Option<&SolveCache>,
    ) -> Arc<ThermalSummary> {
        match cache {
            Some(cache) => {
                let key = dfa.signature(cache.quantum());
                if let Some(hit) = cache.fetch_summary(key) {
                    return hit;
                }
                let sum = Arc::new(dfa.summarize(cache.quantum()));
                cache.store_summary(key, &sum);
                sum
            }
            None => Arc::new(dfa.summarize(0.0)),
        }
    }

    fn analyze_inner(
        &self,
        func: &Function,
        policy: &mut dyn AssignmentPolicy,
        scratch: &mut DfaScratch,
        cache: Option<&SolveCache>,
        reference_solver: bool,
    ) -> Result<ThermalReport, TadfaError> {
        let mut allocated = func.clone();
        let alloc = allocate_linear_scan(&mut allocated, &self.rf, policy, &self.alloc)?;
        let dfa = ThermalDfa::new(
            &allocated,
            &alloc.assignment,
            &self.grid,
            self.power,
            self.dfa,
        )?;
        let dfa = if reference_solver {
            Arc::new(dfa.run_reference())
        } else {
            dfa.run_with(scratch, cache)
        };
        self.finish_report(allocated, alloc, dfa)
    }

    /// The pipeline tail shared by every analysis entry point:
    /// criticality ranking and upsampling onto the physical floorplan.
    fn finish_report(
        &self,
        allocated: Function,
        alloc: tadfa_regalloc::AllocationResult,
        dfa: Arc<ThermalDfaResult>,
    ) -> Result<ThermalReport, TadfaError> {
        let critical = CriticalSet::identify(
            &allocated,
            &alloc.assignment,
            &self.grid,
            dfa.as_ref(),
            &self.power,
            self.critical,
        );
        let predicted = self.grid.upsample(&dfa.peak_map())?;
        Ok(ThermalReport {
            func: allocated,
            assignment: alloc.assignment,
            alloc_stats: alloc.stats,
            dfa,
            critical,
            predicted,
        })
    }

    /// Runs the pre-assignment predictive analysis (§4's "more ambitious
    /// possibility") for `func`.
    ///
    /// # Errors
    ///
    /// Returns [`TadfaError::Alloc`] if the placement rehearsal cannot
    /// allocate.
    pub fn predict(&self, func: &Function) -> Result<PredictiveResult, TadfaError> {
        PredictiveDfa::new(func, &self.rf, self.rc, self.power, self.predictive).run()
    }

    /// The register file.
    pub fn register_file(&self) -> &RegisterFile {
        &self.rf
    }

    /// The analysis grid.
    pub fn grid(&self) -> &AnalysisGrid {
        &self.grid
    }

    /// The RC parameters (unscaled, physical).
    pub fn rc_params(&self) -> RcParams {
        self.rc
    }

    /// The power model.
    pub fn power_model(&self) -> PowerModel {
        self.power
    }

    /// The thermal-DFA configuration.
    pub fn dfa_config(&self) -> ThermalDfaConfig {
        self.dfa
    }

    /// The register-allocator configuration.
    pub fn alloc_config(&self) -> RegAllocConfig {
        self.alloc
    }

    /// The criticality configuration.
    pub fn critical_config(&self) -> CriticalConfig {
        self.critical
    }

    /// The predictive-analysis configuration.
    pub fn predictive_config(&self) -> PredictiveConfig {
        self.predictive
    }

    /// A copy of this core with the given overrides applied, re-running
    /// the same validation as [`SessionBuilder::build`]. The sweep
    /// machinery uses this to derive one core per sweep configuration;
    /// only a granularity change rebuilds the grid.
    ///
    /// # Errors
    ///
    /// Returns [`TadfaError::InvalidConfig`] / grid errors exactly as
    /// the builder would.
    pub fn derived(
        &self,
        dfa: Option<ThermalDfaConfig>,
        critical: Option<CriticalConfig>,
        granularity: Option<(usize, usize)>,
    ) -> Result<SessionCore, TadfaError> {
        let mut core = self.clone();
        if let Some(dfa) = dfa {
            dfa.validate()?;
            core.dfa = dfa;
        }
        if let Some(critical) = critical {
            validate_critical(&critical)?;
            core.critical = critical;
        }
        if let Some((rows, cols)) = granularity {
            core.grid = AnalysisGrid::coarsened(&core.rf, core.rc, rows, cols)?;
        }
        Ok(core)
    }
}

/// The unified analysis façade: owns register file, analysis grid, power
/// model, policy, and all configs, and runs the paper's pipeline for any
/// number of functions.
///
/// Construct with [`Session::builder`]. The source module's docs cover
/// the rationale, the determinism contract, and an example. For
/// multi-core batches, share this session's core with an
/// [`Engine`](crate::engine::Engine).
#[derive(Debug)]
pub struct Session {
    core: Arc<SessionCore>,
    policy: Box<dyn AssignmentPolicy>,
    /// `(name, seed)` when the policy came from a built-in name and can
    /// therefore be recreated per engine worker.
    policy_spec: Option<(String, u64)>,
    scratch: DfaScratch,
}

impl Session {
    /// Starts building a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// Runs the full per-function pipeline: allocate (under the
    /// session's policy), run the thermal DFA on the session's grid, and
    /// identify the critical variables. `func` itself is untouched; the
    /// allocated form (spill code included) is returned in the report.
    ///
    /// The call is a pure function of the session configuration and
    /// `func` — no state carries over between calls (the determinism
    /// contract: allocation resets the policy, and every built-in
    /// policy's `reset` restores its initial state).
    ///
    /// Non-convergence is reported as data in
    /// [`ThermalReport::convergence`], not as an error.
    ///
    /// # Errors
    ///
    /// Returns [`TadfaError::Alloc`] if register allocation fails.
    pub fn analyze(&mut self, func: &Function) -> Result<ThermalReport, TadfaError> {
        self.core
            .analyze_with(func, self.policy.as_mut(), &mut self.scratch, None)
    }

    /// Runs the interprocedural pipeline for a whole module: verifies
    /// it (unknown callees, call arity mismatches, and recursive call
    /// cycles are typed [`TadfaError::Verify`] errors), walks the call
    /// graph's condensation bottom-up so every callee is summarised
    /// before its callers, and analyzes each function with callee
    /// [`ThermalSummary`] traces replayed at its call sites instead of
    /// stepping through callee bodies.
    ///
    /// Like [`Session::analyze`], the call is a pure function of the
    /// session configuration and the module: reports come back in
    /// module order with deterministic, worker-count-independent
    /// fingerprints (the parallel
    /// [`Engine::analyze_module`](crate::engine::Engine::analyze_module)
    /// is byte-identical).
    ///
    /// # Errors
    ///
    /// Returns [`TadfaError::Verify`] if the module fails verification
    /// and [`TadfaError::Alloc`] if any member fails allocation.
    pub fn analyze_module(&mut self, module: &Module) -> Result<ModuleReport, TadfaError> {
        self.core
            .analyze_module_with(module, self.policy.as_mut(), &mut self.scratch, None)
    }

    /// Analyzes a batch of functions, reusing the session's grid, power
    /// model, and configs across all of them.
    ///
    /// Per-function failures do not abort the batch: each slot holds its
    /// own function's result. Reports are order-stable — slot `k` is a
    /// function of `funcs[k]` and the session configuration only, so
    /// reordering, splitting, or extending the batch never changes an
    /// individual report (the configuration cannot change mid-batch:
    /// every `set_*` method needs `&mut self`). The parallel equivalent
    /// is [`Engine::analyze_batch_parallel`](crate::engine::Engine::analyze_batch_parallel),
    /// which yields byte-identical reports in the same order.
    pub fn analyze_batch(&mut self, funcs: &[Function]) -> Vec<Result<ThermalReport, TadfaError>> {
        funcs.iter().map(|f| self.analyze(f)).collect()
    }

    /// Runs the pre-assignment predictive analysis (§4's "more ambitious
    /// possibility") for `func` against the session's register file,
    /// RC parameters, and power model.
    ///
    /// # Errors
    ///
    /// Returns [`TadfaError::Alloc`] if the placement rehearsal cannot
    /// allocate.
    pub fn predict(&self, func: &Function) -> Result<PredictiveResult, TadfaError> {
        self.core.predict(func)
    }

    /// The session's immutable analysis core.
    pub fn core(&self) -> &SessionCore {
        &self.core
    }

    /// A shared handle to the analysis core — the engine's way of
    /// reusing this session's validated state across worker threads.
    /// The handle is a snapshot: later `set_*` calls on the session
    /// replace the session's core without affecting holders of earlier
    /// handles.
    pub fn shared_core(&self) -> Arc<SessionCore> {
        Arc::clone(&self.core)
    }

    /// The `(name, seed)` the session's policy was built from, if it
    /// came from [`SessionBuilder::policy_name`] /
    /// [`Session::set_policy_name`] and can be recreated per engine
    /// worker. `None` for policy objects installed directly.
    pub fn policy_spec(&self) -> Option<(&str, u64)> {
        self.policy_spec.as_ref().map(|(n, s)| (n.as_str(), *s))
    }

    /// The session's register file.
    pub fn register_file(&self) -> &RegisterFile {
        self.core.register_file()
    }

    /// The session's analysis grid.
    pub fn grid(&self) -> &AnalysisGrid {
        self.core.grid()
    }

    /// The session's RC parameters (unscaled, physical).
    pub fn rc_params(&self) -> RcParams {
        self.core.rc_params()
    }

    /// The session's power model.
    pub fn power_model(&self) -> PowerModel {
        self.core.power_model()
    }

    /// The session's thermal-DFA configuration.
    pub fn dfa_config(&self) -> ThermalDfaConfig {
        self.core.dfa_config()
    }

    /// The session's criticality configuration.
    pub fn critical_config(&self) -> CriticalConfig {
        self.core.critical_config()
    }

    /// The session's predictive-analysis configuration.
    pub fn predictive_config(&self) -> PredictiveConfig {
        self.core.predictive_config()
    }

    /// The name of the current assignment policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Exclusive access to the policy, for drivers that share it with
    /// other machinery (e.g. the optimization pipeline).
    pub fn policy_mut(&mut self) -> &mut dyn AssignmentPolicy {
        self.policy.as_mut()
    }

    /// Replaces the thermal-DFA configuration (validated) without
    /// rebuilding the grid — the cheap way to sweep δ or the merge rule.
    ///
    /// Engines holding a [`Session::shared_core`] snapshot keep the old
    /// configuration; take a new snapshot after reconfiguring.
    ///
    /// # Errors
    ///
    /// Returns [`TadfaError::InvalidConfig`] and leaves the session
    /// unchanged if `dfa` fails validation.
    pub fn set_dfa_config(&mut self, dfa: ThermalDfaConfig) -> Result<(), TadfaError> {
        dfa.validate()?;
        Arc::make_mut(&mut self.core).dfa = dfa;
        Ok(())
    }

    /// Replaces the power model.
    pub fn set_power(&mut self, power: PowerModel) {
        Arc::make_mut(&mut self.core).power = power;
    }

    /// Replaces the criticality configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TadfaError::InvalidConfig`] for a fraction outside
    /// `[0, 1]`.
    pub fn set_critical_config(&mut self, critical: CriticalConfig) -> Result<(), TadfaError> {
        validate_critical(&critical)?;
        Arc::make_mut(&mut self.core).critical = critical;
        Ok(())
    }

    /// Replaces the predictive-analysis configuration (validated).
    ///
    /// # Errors
    ///
    /// Returns [`TadfaError::InvalidConfig`] if validation fails.
    pub fn set_predictive_config(
        &mut self,
        predictive: PredictiveConfig,
    ) -> Result<(), TadfaError> {
        predictive.validate()?;
        Arc::make_mut(&mut self.core).predictive = predictive;
        Ok(())
    }

    /// Replaces the assignment policy. The session stops being
    /// engine-replicable ([`Session::policy_spec`] returns `None`) —
    /// use [`Session::set_policy_name`] to keep it replicable.
    pub fn set_policy(&mut self, policy: Box<dyn AssignmentPolicy>) {
        self.policy = policy;
        self.policy_spec = None;
    }

    /// Replaces the assignment policy by built-in name.
    ///
    /// # Errors
    ///
    /// Returns [`TadfaError::UnknownPolicy`] and leaves the session
    /// unchanged if `name` is not a built-in.
    pub fn set_policy_name(&mut self, name: &str, seed: u64) -> Result<(), TadfaError> {
        self.policy = policy_by_name(name, self.core.register_file(), seed)
            .ok_or_else(|| TadfaError::UnknownPolicy(name.to_string()))?;
        self.policy_spec = Some((name.to_string(), seed));
        Ok(())
    }
}

/// Everything one [`Session::analyze`] call produces.
#[derive(Clone, Debug)]
pub struct ThermalReport {
    /// The allocated form of the analyzed function (spill code included).
    pub func: Function,
    /// The final virtual→physical register assignment.
    pub assignment: Assignment,
    /// Allocation statistics (spills, rounds, spill code size).
    pub alloc_stats: AllocStats,
    /// The raw thermal-DFA result (per-instruction states, convergence
    /// diagnostics, residual history). Shared: on an engine cache hit
    /// this is the cached solve itself, not a copy.
    pub dfa: Arc<ThermalDfaResult>,
    /// The thermally critical variables.
    pub critical: CriticalSet,
    /// The DFA's worst-case map, upsampled onto the physical floorplan.
    pub predicted: ThermalState,
}

impl ThermalReport {
    /// How the fixpoint iteration ended (non-convergence is data, not an
    /// error).
    pub fn convergence(&self) -> Convergence {
        self.dfa.convergence
    }

    /// The hottest temperature predicted anywhere in the program, K.
    pub fn peak_temperature(&self) -> f64 {
        self.dfa.peak_temperature()
    }

    /// The ambient temperature of the model, K.
    pub fn ambient(&self) -> f64 {
        self.dfa.ambient()
    }

    /// A 128-bit digest of everything numeric in the report: the
    /// assignment, allocation statistics, convergence outcome, residual
    /// history (exact bits), and the predicted map (exact bits).
    ///
    /// Two reports fingerprint equal iff the analysis produced
    /// bit-identical results — the equality the engine's determinism
    /// guarantee is stated in (parallel == sequential, warm cache ==
    /// cold cache).
    pub fn fingerprint(&self) -> u128 {
        let mut h = Fnv128::new();
        h.write_u64(self.assignment.iter().count() as u64);
        for (v, p) in self.assignment.iter() {
            h.write_u64(v.index() as u64);
            h.write_u64(p.index() as u64);
        }
        h.write_u64(self.alloc_stats.spilled as u64);
        h.write_u64(self.alloc_stats.rounds as u64);
        match self.dfa.convergence {
            Convergence::Converged { iterations } => {
                h.write_u64(1);
                h.write_u64(iterations as u64);
            }
            Convergence::DidNotConverge {
                iterations,
                residual,
            } => {
                h.write_u64(0);
                h.write_u64(iterations as u64);
                h.write_f64(residual, 0.0);
            }
        }
        h.write_f64s(&self.dfa.residual_history, 0.0);
        h.write_f64s(self.predicted.temps(), 0.0);
        h.write_u64(self.critical.ranked().len() as u64);
        for &(v, t) in self.critical.ranked() {
            h.write_u64(v.index() as u64);
            h.write_f64(t, 0.0);
        }
        h.finish()
    }
}

/// Everything one [`Session::analyze_module`] /
/// [`Engine::analyze_module`](crate::engine::Engine::analyze_module)
/// call produces: one [`ThermalReport`] per module function, in module
/// order.
#[derive(Clone, Debug)]
pub struct ModuleReport {
    names: Vec<String>,
    reports: Vec<ThermalReport>,
}

impl ModuleReport {
    pub(crate) fn from_parts(names: Vec<String>, reports: Vec<ThermalReport>) -> ModuleReport {
        ModuleReport { names, reports }
    }

    /// Number of functions analyzed.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Whether the module was empty.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Per-function reports, in module order.
    pub fn reports(&self) -> &[ThermalReport] {
        &self.reports
    }

    /// Consumes the module report, yielding the per-function reports in
    /// module order (for callers that re-index them under their own
    /// scheme, like the scenario runner's task list).
    pub fn into_reports(self) -> Vec<ThermalReport> {
        self.reports
    }

    /// The report for the function named `name`, if present.
    pub fn report(&self, name: &str) -> Option<&ThermalReport> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| &self.reports[i])
    }

    /// Function names, in module order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// The hottest temperature predicted anywhere in the module, K.
    pub fn peak_temperature(&self) -> f64 {
        self.reports
            .iter()
            .map(ThermalReport::peak_temperature)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// A 128-bit digest folding every member's
    /// [`ThermalReport::fingerprint`] together with its name, in module
    /// order — the equality the module-level determinism guarantees
    /// (parallel == sequential, warm cache == cold, any worker count)
    /// are stated in.
    pub fn fingerprint(&self) -> u128 {
        let mut h = Fnv128::new();
        h.write_u64(self.reports.len() as u64);
        for (name, report) in self.names.iter().zip(&self.reports) {
            h.write_u64(name.len() as u64);
            for b in name.bytes() {
                h.write_u64(b as u64);
            }
            let fp = report.fingerprint();
            h.write_u64((fp >> 64) as u64);
            h.write_u64(fp as u64);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MergeRule;
    use tadfa_ir::FunctionBuilder;
    use tadfa_regalloc::FirstFree;

    fn kernel() -> Function {
        let mut b = FunctionBuilder::new("k");
        let x = b.param();
        let mut v = x;
        for _ in 0..6 {
            v = b.mul(v, v);
        }
        b.ret(Some(v));
        b.finish()
    }

    #[test]
    fn builder_defaults_build_and_analyze() {
        let mut s = Session::builder().build().unwrap();
        let report = s.analyze(&kernel()).unwrap();
        assert!(report.convergence().is_converged());
        assert!(report.peak_temperature() > report.ambient());
        assert_eq!(report.predicted.len(), 64);
        assert!(!report.critical.ranked().is_empty());
    }

    #[test]
    fn empty_floorplan_is_an_error() {
        let e = Session::builder().floorplan(0, 8).build().unwrap_err();
        assert!(matches!(e, TadfaError::EmptyFloorplan { rows: 0, cols: 8 }));
    }

    #[test]
    fn invalid_delta_is_an_error() {
        let e = Session::builder()
            .dfa_config(ThermalDfaConfig::default().with_delta(-1.0))
            .build()
            .unwrap_err();
        assert!(matches!(
            e,
            TadfaError::InvalidConfig { param: "delta", .. }
        ));
    }

    #[test]
    fn degenerate_granularity_is_an_error() {
        let e = Session::builder()
            .floorplan(4, 4)
            .granularity(8, 8)
            .build()
            .unwrap_err();
        assert!(matches!(e, TadfaError::GridTooFine { .. }));
        let e = Session::builder().granularity(0, 1).build().unwrap_err();
        assert!(matches!(e, TadfaError::EmptyGrid { .. }));
    }

    #[test]
    fn unknown_policy_is_an_error() {
        let e = Session::builder()
            .policy_name("bogus", 1)
            .build()
            .unwrap_err();
        assert!(matches!(e, TadfaError::UnknownPolicy(ref n) if n == "bogus"));
        let mut s = Session::builder().build().unwrap();
        assert!(s.set_policy_name("nonsense", 1).is_err());
        assert_eq!(s.policy_name(), "first-free", "session unchanged");
    }

    #[test]
    fn coarse_session_uses_fewer_points() {
        let mut s = Session::builder().granularity(2, 2).build().unwrap();
        assert_eq!(s.grid().num_points(), 4);
        let report = s.analyze(&kernel()).unwrap();
        assert_eq!(report.predicted.len(), 64, "upsampled to physical cells");
    }

    #[test]
    fn batch_reuses_state_and_reports_per_function() {
        let mut s = Session::builder().build().unwrap();
        let funcs = vec![kernel(), kernel(), kernel()];
        let reports = s.analyze_batch(&funcs);
        assert_eq!(reports.len(), 3);
        for r in reports {
            assert!(r.unwrap().convergence().is_converged());
        }
    }

    #[test]
    fn reconfiguration_is_validated() {
        let mut s = Session::builder().build().unwrap();
        assert!(s
            .set_dfa_config(ThermalDfaConfig::default().with_delta(0.0))
            .is_err());
        assert!(
            (s.dfa_config().delta - 0.01).abs() < 1e-12,
            "config unchanged on error"
        );
        assert!(s
            .set_dfa_config(ThermalDfaConfig::default().with_merge(MergeRule::Average))
            .is_ok());
        assert_eq!(s.dfa_config().merge, MergeRule::Average);
    }

    #[test]
    fn predict_runs_through_the_session() {
        let s = Session::builder().build().unwrap();
        let pred = s.predict(&kernel()).unwrap();
        assert_eq!(pred.expected_map.len(), 64);
        assert!(!pred.ranked.is_empty());
    }

    #[test]
    fn shared_core_is_a_snapshot() {
        let mut s = Session::builder().build().unwrap();
        let snapshot = s.shared_core();
        s.set_dfa_config(ThermalDfaConfig::default().with_delta(0.5))
            .unwrap();
        assert!(
            (snapshot.dfa_config().delta - 0.01).abs() < 1e-12,
            "earlier handle keeps the old config"
        );
        assert!((s.dfa_config().delta - 0.5).abs() < 1e-12);
    }

    #[test]
    fn policy_spec_tracks_replicability() {
        let s = Session::builder().build().unwrap();
        assert_eq!(s.policy_spec(), Some(("first-free", 0)));
        let mut s = Session::builder()
            .policy(Box::new(FirstFree))
            .build()
            .unwrap();
        assert_eq!(s.policy_spec(), None, "boxed policy is not replicable");
        s.set_policy_name("chessboard", 3).unwrap();
        assert_eq!(s.policy_spec(), Some(("chessboard", 3)));
        s.set_policy(Box::new(FirstFree));
        assert_eq!(s.policy_spec(), None);
    }

    fn leaf() -> Function {
        let mut b = FunctionBuilder::new("leaf");
        let x = b.param();
        let mut v = x;
        for _ in 0..4 {
            v = b.mul(v, v);
        }
        b.ret(Some(v));
        b.finish()
    }

    fn caller_of(name: &str, callee: &str) -> Function {
        let mut b = FunctionBuilder::new(name);
        let x = b.param();
        let y = b.add(x, x);
        let r = b.call(callee, &[y]);
        let z = b.add(r, y);
        b.ret(Some(z));
        b.finish()
    }

    #[test]
    fn analyze_rejects_functions_with_calls() {
        let mut s = Session::builder().build().unwrap();
        let e = s.analyze(&caller_of("main", "leaf")).unwrap_err();
        assert!(
            matches!(e, TadfaError::CallsRequireModule { ref function, ref callee }
                     if function == "main" && callee == "leaf"),
            "{e}"
        );
    }

    #[test]
    fn analyze_module_reports_every_function_in_order() {
        let module = Module::from_functions([leaf(), caller_of("main", "leaf")]).unwrap();
        let mut s = Session::builder().build().unwrap();
        let r = s.analyze_module(&module).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.names().collect::<Vec<_>>(), ["leaf", "main"]);
        for rep in r.reports() {
            assert!(rep.convergence().is_converged());
        }
        // The caller replays the callee's trace, so it ends hotter than
        // its own instructions alone would make it.
        let main = r.report("main").unwrap();
        let leaf = r.report("leaf").unwrap();
        assert!(main.peak_temperature() > main.ambient());
        assert!(r.peak_temperature() >= leaf.peak_temperature());
        // Pure function of (config, module): a fresh session agrees.
        let mut s2 = Session::builder().build().unwrap();
        assert_eq!(
            r.fingerprint(),
            s2.analyze_module(&module).unwrap().fingerprint()
        );
    }

    #[test]
    fn analyze_module_rejects_recursion_with_a_typed_error() {
        let module = Module::from_functions([caller_of("a", "b"), caller_of("b", "a")]).unwrap();
        let mut s = Session::builder().build().unwrap();
        let e = s.analyze_module(&module).unwrap_err();
        assert!(
            matches!(
                e,
                TadfaError::Verify(tadfa_ir::VerifyError::RecursiveCall { .. })
            ),
            "{e}"
        );
    }

    #[test]
    fn call_sites_make_callers_hotter_than_call_free_twins() {
        // Same caller body with the call replaced by a mov: the summary
        // replay must inject the callee's heat.
        let module = Module::from_functions([leaf(), caller_of("main", "leaf")]).unwrap();
        let mut s = Session::builder().build().unwrap();
        let with_call = s.analyze_module(&module).unwrap();
        let twin = {
            let mut b = FunctionBuilder::new("main");
            let x = b.param();
            let y = b.add(x, x);
            let r = b.mov(y);
            let z = b.add(r, y);
            b.ret(Some(z));
            b.finish()
        };
        let without = s.analyze(&twin).unwrap();
        assert!(
            with_call.report("main").unwrap().peak_temperature() > without.peak_temperature(),
            "callee heat must reach the caller"
        );
    }

    #[test]
    fn fingerprints_separate_different_analyses() {
        let mut s = Session::builder().build().unwrap();
        let r1 = s.analyze(&kernel()).unwrap();
        let r2 = s.analyze(&kernel()).unwrap();
        assert_eq!(r1.fingerprint(), r2.fingerprint(), "pure function");
        s.set_policy_name("round-robin", 0).unwrap();
        let r3 = s.analyze(&kernel()).unwrap();
        assert_ne!(r1.fingerprint(), r3.fingerprint(), "policy changes map");
    }
}
