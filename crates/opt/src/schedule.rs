//! Thermal-aware instruction scheduling — "spreading accesses to
//! registers in time, … using instruction scheduling, to avoid
//! consecutive accesses to already hot registers" (§4).
//!
//! A dependence-respecting list scheduler that, among ready
//! instructions, always picks the one whose registers have been idle
//! longest, maximising the reuse distance of every register.

use tadfa_ir::{BlockId, Function, InstId, Opcode};

/// Dependence edges between the instructions of one block (by local
/// position): RAW, WAR, WAW, and a conservative memory order (two memory
/// operations — loads, stores, or calls — are ordered if at least one of
/// them has a side effect).
fn build_deps(func: &Function, insts: &[InstId]) -> Vec<Vec<usize>> {
    let n = insts.len();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (j, &inst_j) in insts.iter().enumerate().take(n) {
        let ij = func.inst(inst_j);
        for (i, &inst_i) in insts.iter().enumerate().take(j) {
            let ii = func.inst(inst_i);
            let raw = ii.def().is_some_and(|d| ij.uses().contains(&d));
            let war = ij.def().is_some_and(|d| ii.uses().contains(&d));
            let waw = ii.def().is_some() && ii.def() == ij.def();
            let mem_i = matches!(ii.op, Opcode::Load | Opcode::Store | Opcode::Call);
            let mem_j = matches!(ij.op, Opcode::Load | Opcode::Store | Opcode::Call);
            let mem = mem_i && mem_j && (ii.op.has_side_effect() || ij.op.has_side_effect());
            if raw || war || waw || mem {
                preds[j].push(i);
            }
        }
    }
    preds
}

/// Reschedules one block to maximise register reuse distance. Returns
/// `true` if the order changed.
///
/// The relative order of dependent instructions (and all memory traffic
/// involving stores) is preserved, so program semantics are unchanged.
pub fn spread_schedule_block(func: &mut Function, bb: BlockId) -> bool {
    let insts = func.block(bb).insts().to_vec();
    let n = insts.len();
    if n < 3 {
        return false;
    }
    let preds = build_deps(func, &insts);
    let mut unscheduled_preds: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (j, ps) in preds.iter().enumerate() {
        for &i in ps {
            succs[i].push(j);
        }
    }

    // last_touch[vreg] = position in the new schedule of the last access.
    let mut last_touch: Vec<Option<usize>> = vec![None; func.num_vregs()];
    let mut scheduled: Vec<bool> = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);

    for slot in 0..n {
        // Ready set.
        let mut best: Option<(i64, usize)> = None; // (score, original pos)
        for (cand, &done) in scheduled.iter().enumerate() {
            if done || unscheduled_preds[cand] > 0 {
                continue;
            }
            let inst = func.inst(insts[cand]);
            // Coolness: how long ago any of this instruction's registers
            // was last touched (larger = cooler). Untouched = maximal.
            let mut coolness = i64::MAX;
            let mut regs: Vec<usize> = inst.uses().iter().map(|u| u.index()).collect();
            if let Some(d) = inst.def() {
                regs.push(d.index());
            }
            for r in regs {
                let dist = match last_touch[r] {
                    Some(p) => (slot - p) as i64,
                    None => i64::MAX,
                };
                coolness = coolness.min(dist);
            }
            // Prefer cooler; tie-break on original order (stability).
            let better = match best {
                None => true,
                Some((bs, bp)) => coolness > bs || (coolness == bs && cand < bp),
            };
            if better {
                best = Some((coolness, cand));
            }
        }
        let (_, pick) = best.expect("acyclic dependence graph always has a ready node");
        scheduled[pick] = true;
        order.push(pick);
        for &s in &succs[pick] {
            unscheduled_preds[s] -= 1;
        }
        let inst = func.inst(insts[pick]);
        for &u in inst.uses() {
            last_touch[u.index()] = Some(slot);
        }
        if let Some(d) = inst.def() {
            last_touch[d.index()] = Some(slot);
        }
    }

    let changed = order.iter().enumerate().any(|(s, &p)| s != p);
    if changed {
        let new_order: Vec<InstId> = order.iter().map(|&p| insts[p]).collect();
        func.reorder_insts(bb, new_order);
    }
    changed
}

/// Reschedules every block; returns how many blocks changed.
pub fn spread_schedule(func: &mut Function) -> usize {
    func.block_ids()
        .collect::<Vec<_>>()
        .into_iter()
        .filter(|&bb| spread_schedule_block(func, bb))
        .count()
}

/// Minimum distance between two consecutive accesses to the same virtual
/// register within each block, summed over blocks — the scheduler's
/// objective, exposed for measurement.
pub fn min_reuse_distance(func: &Function, bb: BlockId) -> Option<usize> {
    let mut last: Vec<Option<usize>> = vec![None; func.num_vregs()];
    let mut min_dist: Option<usize> = None;
    for (pos, &id) in func.block(bb).insts().iter().enumerate() {
        let inst = func.inst(id);
        let mut regs: Vec<usize> = inst.uses().iter().map(|u| u.index()).collect();
        if let Some(d) = inst.def() {
            regs.push(d.index());
        }
        regs.sort();
        regs.dedup();
        for r in regs {
            if let Some(p) = last[r] {
                let d = pos - p;
                min_dist = Some(min_dist.map_or(d, |m: usize| m.min(d)));
            }
            last[r] = Some(pos);
        }
    }
    min_dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use tadfa_ir::{FunctionBuilder, Verifier};
    use tadfa_sim::Interpreter;

    /// Two independent chains interleavable by the scheduler:
    /// a-chain touches x repeatedly, b-chain touches y repeatedly.
    fn two_chains() -> Function {
        let mut b = FunctionBuilder::new("tc");
        let x0 = b.param();
        let y0 = b.param();
        let x1 = b.add(x0, x0);
        let x2 = b.add(x1, x1);
        let x3 = b.add(x2, x2);
        let y1 = b.mul(y0, y0);
        let y2 = b.mul(y1, y1);
        let y3 = b.mul(y2, y2);
        let s = b.add(x3, y3);
        b.ret(Some(s));
        b.finish()
    }

    #[test]
    fn schedule_preserves_semantics() {
        let mut f = two_chains();
        let before = Interpreter::new(&f).run(&[3, 2]).unwrap();
        let changed = spread_schedule(&mut f);
        assert!(changed > 0, "interleaving opportunity must be taken");
        assert!(Verifier::new(&f).run().is_ok(), "{f}");
        let after = Interpreter::new(&f).run(&[3, 2]).unwrap();
        assert_eq!(before.ret, after.ret);
    }

    /// Number of consecutive instruction pairs sharing a register — the
    /// "consecutive accesses to already hot registers" the scheduler
    /// minimises.
    fn adjacent_reuses(f: &Function, bb: tadfa_ir::BlockId) -> usize {
        let insts = f.block(bb).insts();
        let regs_of = |id: tadfa_ir::InstId| -> Vec<usize> {
            let inst = f.inst(id);
            let mut r: Vec<usize> = inst.uses().iter().map(|u| u.index()).collect();
            if let Some(d) = inst.def() {
                r.push(d.index());
            }
            r
        };
        insts
            .windows(2)
            .filter(|w| {
                let a = regs_of(w[0]);
                regs_of(w[1]).iter().any(|r| a.contains(r))
            })
            .count()
    }

    #[test]
    fn schedule_reduces_adjacent_register_reuse() {
        let mut f = two_chains();
        let entry = f.entry();
        let before = adjacent_reuses(&f, entry);
        spread_schedule(&mut f);
        let after = adjacent_reuses(&f, entry);
        assert!(
            after < before,
            "interleaving cuts back-to-back reuse: {before} -> {after}"
        );
        // The unavoidable floor: the final sum reads a value defined one
        // slot earlier, so `after` need not be zero.
        let min_d = min_reuse_distance(&f, entry).unwrap();
        assert!(min_d >= 1);
    }

    #[test]
    fn dependent_chain_is_not_reordered() {
        // A pure dependence chain has exactly one legal order.
        let mut b = FunctionBuilder::new("chain");
        let x = b.param();
        let a = b.add(x, x);
        let c = b.add(a, a);
        let d = b.add(c, c);
        b.ret(Some(d));
        let mut f = b.finish();
        let order_before = f.block(f.entry()).insts().to_vec();
        let changed = spread_schedule(&mut f);
        assert_eq!(changed, 0);
        assert_eq!(f.block(f.entry()).insts(), order_before.as_slice());
    }

    #[test]
    fn memory_operations_keep_store_order() {
        let mut b = FunctionBuilder::new("mem");
        let slot = b.slot("m", 4);
        let i = b.iconst(0);
        let k1 = b.iconst(10);
        let k2 = b.iconst(20);
        b.store(slot, i, k1);
        b.store(slot, i, k2); // must stay after the first store
        let v = b.load(slot, i); // must stay after both stores
        b.ret(Some(v));
        let mut f = b.finish();
        let before = Interpreter::new(&f).run(&[]).unwrap();
        assert_eq!(before.ret, Some(20));
        spread_schedule(&mut f);
        let after = Interpreter::new(&f).run(&[]).unwrap();
        assert_eq!(after.ret, Some(20), "store/store/load order preserved");
    }

    #[test]
    fn war_dependences_respected() {
        // d reads x, then x is overwritten: the overwrite cannot move up.
        let mut b = FunctionBuilder::new("war");
        let x = b.param();
        let d = b.add(x, x); // reads x
        let k = b.iconst(100);
        b.mov_into(x, k); // writes x — must stay after d
        let e = b.add(x, d);
        b.ret(Some(e));
        let mut f = b.finish();
        let before = Interpreter::new(&f).run(&[4]).unwrap();
        spread_schedule(&mut f);
        let after = Interpreter::new(&f).run(&[4]).unwrap();
        assert_eq!(before.ret, after.ret);
        assert_eq!(after.ret, Some(108));
    }

    #[test]
    fn tiny_blocks_untouched() {
        let mut b = FunctionBuilder::new("tiny");
        let x = b.param();
        let y = b.add(x, x);
        b.ret(Some(y));
        let mut f = b.finish();
        assert_eq!(spread_schedule(&mut f), 0);
    }

    #[test]
    fn loops_schedule_safely() {
        let mut b = FunctionBuilder::new("loop");
        let n = b.param();
        let h = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let acc = b.iconst(0);
        let i = b.iconst(0);
        b.jump(h);
        b.switch_to(h);
        let done = b.cmpge(i, n);
        b.branch(done, exit, body);
        b.switch_to(body);
        let t1 = b.add(acc, i);
        let t2 = b.mul(i, i);
        let t3 = b.add(t1, t2);
        b.mov_into(acc, t3);
        let one = b.iconst(1);
        let i2 = b.add(i, one);
        b.mov_into(i, i2);
        b.jump(h);
        b.switch_to(exit);
        b.ret(Some(acc));
        let mut f = b.finish();
        let before = Interpreter::new(&f).run(&[8]).unwrap();
        spread_schedule(&mut f);
        assert!(Verifier::new(&f).run().is_ok(), "{f}");
        let after = Interpreter::new(&f).run(&[8]).unwrap();
        assert_eq!(before.ret, after.ret);
    }
}
