//! The wire protocol: JSON lines in both directions.
//!
//! A client sends one JSON object per line; the service answers with
//! one JSON object per line. Lines are the framing — no value may
//! contain a raw newline (the [`json::escape`] writer guarantees this
//! for everything the service emits). Responses carry the request's
//! `id` and may arrive **out of order** when the service processes
//! requests concurrently; clients correlate by id.
//!
//! # Requests
//!
//! ```json
//! {"id": 1, "op": "run-scenario", "scenario": "solo_baseline"}
//! {"id": 2, "op": "run-scenario", "scenario": "octa_shard", "workers": 2, "deadline_ms": 5000}
//! {"id": 3, "op": "analyze", "scenario": "solo_baseline", "source": "func @f(%0) { ... }"}
//! {"id": 4, "op": "analyze-module", "scenario": "solo_baseline", "source": "func @leaf(%0) { ... } func @main(%0) { ... }"}
//! {"id": 5, "op": "stats"}
//! {"id": 6, "op": "reload"}
//! {"id": 7, "op": "ping"}
//! {"id": 8, "op": "shutdown"}
//! ```
//!
//! `id` is a non-negative integer chosen by the client; `workers` and
//! `deadline_ms` are the per-request overrides forwarded to the
//! engine ([`RunOverrides`](tadfa_sched::RunOverrides)). Unknown ops
//! and unknown keys are rejected — a typo cannot silently run a
//! different request than intended, mirroring the scenario-spec
//! reader's philosophy.
//!
//! # Responses
//!
//! Success: `{"id": N, "ok": true, "op": "...", ...}` with op-specific
//! fields — most importantly `fingerprint`, which for `run-scenario`
//! is **exactly** the fingerprint the offline `tadfa run` golden
//! reports record (the service ≡ batch contract).
//! Failure: `{"id": N, "ok": false, "error": "<kind>", "message": "..."}`
//! where `<kind>` is one of the [`kind`] constants; `id` is `null`
//! only when the request line was too malformed to carry one.

use tadfa_sched::json::{self, escape, number, JsonValue};
use tadfa_sched::{hex_fingerprint, ScenarioResult};

/// Machine-readable error kinds carried in the `error` field.
pub mod kind {
    /// The request line was not valid protocol JSON.
    pub const BAD_REQUEST: &str = "bad-request";
    /// The named scenario is not loaded in this service.
    pub const UNKNOWN_SCENARIO: &str = "unknown-scenario";
    /// The admission queue was full; the request was never admitted.
    /// Retry later — nothing was computed.
    pub const QUEUE_FULL: &str = "queue-full";
    /// The service is shutting down; the request was never admitted
    /// and retrying against this server is pointless.
    pub const SHUTTING_DOWN: &str = "shutting-down";
    /// The request's deadline passed before its work finished.
    pub const DEADLINE_EXCEEDED: &str = "deadline-exceeded";
    /// The analysis itself failed (bad IR source, allocation failure).
    pub const ANALYSIS_FAILED: &str = "analysis-failed";
    /// The request line exceeded the configured size cap before a
    /// newline arrived; the connection is closed after this response.
    pub const REQUEST_TOO_LARGE: &str = "request-too-large";
    /// The request waited past the latency SLO before a worker could
    /// start it, so it was shed without computing — retrying later (or
    /// elsewhere) beats serving a uselessly late answer.
    pub const SLO_SHED: &str = "slo-shed";
    /// A `reload` failed; the previous environment stays in service.
    pub const RELOAD_FAILED: &str = "reload-failed";
    /// The fleet router shed the request: its own admission queue was
    /// full, or no worker answered within the retry budget and another
    /// retry would breach the request's deadline. Retryable — nothing
    /// was computed — and the typed form of graceful degradation (the
    /// router degrades loudly rather than hanging or dropping).
    pub const FLEET_OVERLOADED: &str = "fleet-overloaded";
}

/// One parsed request.
#[derive(Clone, PartialEq, Debug)]
pub struct Request {
    /// Client-chosen correlation id, echoed into the response.
    pub id: u64,
    /// What to do.
    pub op: Op,
}

/// The operation a [`Request`] asks for.
#[derive(Clone, PartialEq, Debug)]
pub enum Op {
    /// Run a loaded scenario end to end on its warm engine.
    RunScenario {
        /// Scenario stem (the spec's file stem, as listed at startup).
        scenario: String,
        /// Per-request engine worker override.
        workers: Option<usize>,
        /// Per-request deadline, milliseconds from admission.
        deadline_ms: Option<u64>,
    },
    /// Analyze one IR function in a loaded scenario's environment.
    Analyze {
        /// Scenario stem whose session/engine/cache to analyze under.
        scenario: String,
        /// The function, in `.tir` text form.
        source: String,
        /// Per-request engine worker override.
        workers: Option<usize>,
        /// Per-request deadline, milliseconds from admission.
        deadline_ms: Option<u64>,
    },
    /// Analyze a whole IR module interprocedurally (functions may
    /// `call` each other; callee bodies are summarised once, bottom-up)
    /// in a loaded scenario's environment.
    AnalyzeModule {
        /// Scenario stem whose session/engine/cache to analyze under.
        scenario: String,
        /// The module (one or more functions), in `.tir` text form.
        source: String,
        /// Per-request engine worker override.
        workers: Option<usize>,
        /// Per-request deadline, milliseconds from admission.
        deadline_ms: Option<u64>,
    },
    /// Report service counters (per-scenario cache stats, queue depth).
    Stats,
    /// Re-resolve and re-prepare the scenario directory, atomically
    /// swapping the environment; in-flight requests finish against
    /// whichever environment they resolve.
    Reload,
    /// Liveness probe; answered immediately, never queued.
    Ping,
    /// Stop accepting requests, drain, and exit.
    Shutdown,
}

/// A request-line rejection: what was wrong, and the id to echo into
/// the error response when the line was well-formed enough to carry
/// one.
#[derive(Clone, PartialEq, Debug)]
pub struct RequestError {
    /// The request id, when one could be extracted.
    pub id: Option<u64>,
    /// What went wrong.
    pub message: String,
}

impl RequestError {
    fn new(id: Option<u64>, message: impl Into<String>) -> RequestError {
        RequestError {
            id,
            message: message.into(),
        }
    }
}

/// Reads a `u64` out of a JSON number field (rejecting negatives and
/// fractions).
fn as_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    match v.as_f64() {
        Some(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Ok(n as u64),
        _ => Err(format!("'{key}' must be a non-negative integer")),
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a [`RequestError`] (carrying the id when extractable) for
/// malformed JSON, a missing/invalid `id` or `op`, an unknown op,
/// unknown keys, or missing/mis-typed op arguments.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let doc = json::parse(line).map_err(|e| RequestError::new(None, e.to_string()))?;
    let members = doc
        .as_object()
        .ok_or_else(|| RequestError::new(None, "request must be a JSON object"))?;
    let id = match doc.get("id") {
        Some(v) => Some(as_u64(v, "id").map_err(|m| RequestError::new(None, m))?),
        None => None,
    };
    let fail = |m: String| RequestError::new(id, m);
    let id = id.ok_or_else(|| RequestError::new(None, "missing 'id'".to_string()))?;
    let op_name = doc
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| fail("missing or non-string 'op'".to_string()))?;

    let allowed: &[&str] = match op_name {
        "run-scenario" => &["id", "op", "scenario", "workers", "deadline_ms"],
        "analyze" | "analyze-module" => {
            &["id", "op", "scenario", "source", "workers", "deadline_ms"]
        }
        "stats" | "reload" | "ping" | "shutdown" => &["id", "op"],
        other => return Err(fail(format!("unknown op '{other}'"))),
    };
    for (key, _) in members {
        if !allowed.contains(&key.as_str()) {
            return Err(fail(format!(
                "unknown key '{key}' for op '{op_name}' (allowed: {})",
                allowed.join(", ")
            )));
        }
    }

    let str_field = |key: &str| -> Result<String, RequestError> {
        doc.get(key)
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| RequestError::new(id.into(), format!("missing or non-string '{key}'")))
    };
    let u64_field = |key: &str| -> Result<Option<u64>, RequestError> {
        match doc.get(key) {
            None => Ok(None),
            Some(v) => as_u64(v, key)
                .map(Some)
                .map_err(|m| RequestError::new(id.into(), m)),
        }
    };

    let op = match op_name {
        "run-scenario" => Op::RunScenario {
            scenario: str_field("scenario")?,
            workers: u64_field("workers")?.map(|w| w as usize),
            deadline_ms: u64_field("deadline_ms")?,
        },
        "analyze" => Op::Analyze {
            scenario: str_field("scenario")?,
            source: str_field("source")?,
            workers: u64_field("workers")?.map(|w| w as usize),
            deadline_ms: u64_field("deadline_ms")?,
        },
        "analyze-module" => Op::AnalyzeModule {
            scenario: str_field("scenario")?,
            source: str_field("source")?,
            workers: u64_field("workers")?.map(|w| w as usize),
            deadline_ms: u64_field("deadline_ms")?,
        },
        "stats" => Op::Stats,
        "reload" => Op::Reload,
        "ping" => Op::Ping,
        "shutdown" => Op::Shutdown,
        _ => unreachable!("op validated above"),
    };
    Ok(Request { id, op })
}

/// The success response for `run-scenario`: the scenario fingerprint
/// (byte-for-byte the value the offline golden reports record) plus
/// the headline die numbers.
pub fn scenario_response(id: u64, stem: &str, r: &ScenarioResult) -> String {
    format!(
        "{{\"id\": {id}, \"ok\": true, \"op\": \"run-scenario\", \"scenario\": {}, \
         \"fingerprint\": {}, \"cores\": {}, \"tasks\": {}, \"migrations\": {}, \
         \"transient_peak_k\": {}, \"steady_peak_k\": {}, \"makespan_s\": {}}}",
        escape(stem),
        escape(&hex_fingerprint(r.fingerprint())),
        r.cores,
        r.tasks.len(),
        r.migrations,
        number(r.die.transient_peak),
        number(r.die.steady_peak),
        number(r.die.makespan),
    )
}

/// The success response for `analyze`: the report fingerprint and the
/// headline analysis numbers.
pub fn analyze_response(
    id: u64,
    stem: &str,
    func: &str,
    fingerprint: u128,
    peak_k: f64,
    converged: bool,
) -> String {
    format!(
        "{{\"id\": {id}, \"ok\": true, \"op\": \"analyze\", \"scenario\": {}, \
         \"function\": {}, \"fingerprint\": {}, \"peak_k\": {}, \"converged\": {converged}}}",
        escape(stem),
        escape(func),
        escape(&hex_fingerprint(fingerprint)),
        number(peak_k),
    )
}

/// The success response for `analyze-module`: the module fingerprint
/// (folding every function's name and report fingerprint, in module
/// order), the function names, and the module-wide headline numbers.
pub fn analyze_module_response(
    id: u64,
    stem: &str,
    functions: &[&str],
    fingerprint: u128,
    peak_k: f64,
    converged: bool,
) -> String {
    let mut names = String::new();
    for (i, f) in functions.iter().enumerate() {
        if i > 0 {
            names.push_str(", ");
        }
        names.push_str(&escape(f));
    }
    format!(
        "{{\"id\": {id}, \"ok\": true, \"op\": \"analyze-module\", \"scenario\": {}, \
         \"functions\": [{names}], \"fingerprint\": {}, \"peak_k\": {}, \"converged\": {converged}}}",
        escape(stem),
        escape(&hex_fingerprint(fingerprint)),
        number(peak_k),
    )
}

/// The success response for `ping`.
pub fn pong_response(id: u64) -> String {
    format!("{{\"id\": {id}, \"ok\": true, \"op\": \"ping\"}}")
}

/// The success response for `reload`: how many scenarios the fresh
/// environment serves.
pub fn reload_response(id: u64, scenarios: usize) -> String {
    format!("{{\"id\": {id}, \"ok\": true, \"op\": \"reload\", \"scenarios\": {scenarios}}}")
}

/// The success response for `shutdown` (sent before the service
/// drains and exits).
pub fn shutdown_response(id: u64) -> String {
    format!("{{\"id\": {id}, \"ok\": true, \"op\": \"shutdown\"}}")
}

/// An error response; `id` is `null` when the request line did not
/// carry a usable one.
pub fn error_response(id: Option<u64>, error_kind: &str, message: &str) -> String {
    let id = id.map_or_else(|| "null".to_string(), |v| v.to_string());
    format!(
        "{{\"id\": {id}, \"ok\": false, \"error\": {}, \"message\": {}}}",
        escape(error_kind),
        escape(message),
    )
}

/// A response as the client sees it: the envelope fields pre-extracted
/// plus the full document for op-specific fields.
#[derive(Clone, PartialEq, Debug)]
pub struct ParsedResponse {
    /// The echoed request id (`None` for a `null` id on a parse-reject).
    pub id: Option<u64>,
    /// Whether the request succeeded.
    pub ok: bool,
    /// The `fingerprint` field, when present.
    pub fingerprint: Option<String>,
    /// The error kind ([`kind`]) on failure.
    pub error: Option<String>,
    /// The human-readable failure message.
    pub message: Option<String>,
    /// The whole response document.
    pub doc: JsonValue,
}

/// Parses one response line (the client half of the protocol).
///
/// # Errors
///
/// Returns the underlying [`json::JsonError`] message for a line that
/// is not a JSON object with a boolean `ok`.
pub fn parse_response(line: &str) -> Result<ParsedResponse, String> {
    let doc = json::parse(line).map_err(|e| e.to_string())?;
    let ok = doc
        .get("ok")
        .and_then(JsonValue::as_bool)
        .ok_or("response has no boolean 'ok'")?;
    let id = doc.get("id").and_then(JsonValue::as_f64).map(|n| n as u64);
    Ok(ParsedResponse {
        id,
        ok,
        fingerprint: doc
            .get("fingerprint")
            .and_then(JsonValue::as_str)
            .map(str::to_string),
        error: doc
            .get("error")
            .and_then(JsonValue::as_str)
            .map(str::to_string),
        message: doc
            .get("message")
            .and_then(JsonValue::as_str)
            .map(str::to_string),
        doc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_with_overrides_and_defaults() {
        let r = parse_request(
            r#"{"id": 7, "op": "run-scenario", "scenario": "solo", "workers": 2, "deadline_ms": 50}"#,
        )
        .unwrap();
        assert_eq!(r.id, 7);
        assert_eq!(
            r.op,
            Op::RunScenario {
                scenario: "solo".to_string(),
                workers: Some(2),
                deadline_ms: Some(50),
            }
        );
        let r = parse_request(r#"{"id": 0, "op": "run-scenario", "scenario": "s"}"#).unwrap();
        assert!(matches!(
            r.op,
            Op::RunScenario {
                workers: None,
                deadline_ms: None,
                ..
            }
        ));
        let r = parse_request(r#"{"id": 1, "op": "analyze", "scenario": "s", "source": "func"}"#)
            .unwrap();
        assert!(matches!(r.op, Op::Analyze { .. }));
        for (op, expected) in [
            ("stats", Op::Stats),
            ("reload", Op::Reload),
            ("ping", Op::Ping),
            ("shutdown", Op::Shutdown),
        ] {
            let r = parse_request(&format!(r#"{{"id": 2, "op": "{op}"}}"#)).unwrap();
            assert_eq!(r.op, expected);
        }
    }

    #[test]
    fn malformed_requests_carry_the_id_when_possible() {
        // No id extractable: the error response must use null.
        assert_eq!(parse_request("not json").unwrap_err().id, None);
        assert_eq!(parse_request(r#"{"op": "ping"}"#).unwrap_err().id, None);
        assert_eq!(parse_request(r#"[1, 2]"#).unwrap_err().id, None);
        assert_eq!(
            parse_request(r#"{"id": -1, "op": "ping"}"#).unwrap_err().id,
            None
        );
        // Id extractable: later failures still correlate.
        let e = parse_request(r#"{"id": 9, "op": "nope"}"#).unwrap_err();
        assert_eq!(e.id, Some(9));
        let e = parse_request(r#"{"id": 9, "op": "run-scenario"}"#).unwrap_err();
        assert_eq!((e.id, e.message.contains("scenario")), (Some(9), true));
        let e = parse_request(r#"{"id": 9, "op": "ping", "bogus": 1}"#).unwrap_err();
        assert!(e.message.contains("bogus"), "{}", e.message);
        let e =
            parse_request(r#"{"id": 9, "op": "run-scenario", "scenario": "s", "workers": 1.5}"#)
                .unwrap_err();
        assert!(e.message.contains("workers"), "{}", e.message);
    }

    #[test]
    fn responses_are_single_lines_that_round_trip() {
        let lines = [
            analyze_response(3, "solo", "f\"n", 0xAB, 341.5, true),
            pong_response(1),
            shutdown_response(2),
            error_response(None, kind::BAD_REQUEST, "broken\nline"),
            error_response(Some(4), kind::QUEUE_FULL, "queue full (capacity 8)"),
        ];
        for line in &lines {
            assert!(!line.contains('\n'), "framing: {line}");
            let p = parse_response(line).unwrap();
            assert_eq!(p.ok, p.error.is_none());
        }
        let p = parse_response(&lines[0]).unwrap();
        assert_eq!(p.id, Some(3));
        assert_eq!(
            p.fingerprint.as_deref(),
            Some("0x000000000000000000000000000000ab")
        );
        assert_eq!(p.doc.get("function").unwrap().as_str(), Some("f\"n"));
        let p = parse_response(&lines[3]).unwrap();
        assert_eq!(p.id, None);
        assert_eq!(p.error.as_deref(), Some(kind::BAD_REQUEST));
        assert_eq!(p.message.as_deref(), Some("broken\nline"));
        assert!(parse_response("{}").is_err());
        assert!(parse_response("nope").is_err());
    }
}
