//! **E7 — the pre-assignment predictive analysis.** "The more ambitious
//! possibility … would be to develop predictive analyses performed at
//! earlier stages of compilation, i.e., before register allocation and
//! assignment" (§4).
//!
//! Two questions:
//! 1. Does the predictive critical set (computed before any assignment)
//!    match the post-assignment measured hot variables?
//!    → precision/recall of the predicted set.
//! 2. Does driving assignment with the prediction (coldest-first over the
//!    predicted map) approach chessboard-quality uniformity without the
//!    half-file restriction? → end-to-end σ and peak comparison.
//!
//! Run: `cargo run -p tadfa-bench --bin predictive_eval`

use tadfa_bench::{default_session, evaluate_policy, k2, k3, print_table};
use tadfa_core::{CriticalConfig, PlacementPrior, PredictiveConfig};
use tadfa_regalloc::ColdestFirst;
use tadfa_sim::{simulate_trace, CosimConfig, Interpreter};
use tadfa_thermal::MapStats;
use tadfa_workloads::standard_suite;

fn main() {
    let mut session = default_session();
    session
        .set_predictive_config(PredictiveConfig {
            prior: PlacementPrior::FirstFree,
            ..PredictiveConfig::default()
        })
        .expect("valid predictive config");
    session
        .set_critical_config(CriticalConfig { temp_fraction: 0.5 })
        .expect("valid critical config");

    println!("== E7: predictive (pre-assignment) analysis ==\n");

    // ---- 1. predicted vs measured critical variables -----------------
    println!("1) predicted critical set vs post-assignment critical set:");
    let mut rows = Vec::new();
    for w in standard_suite() {
        // Prediction before assignment.
        let Ok(pred) = session.predict(&w.func) else {
            rows.push(vec![w.name.to_string(), "alloc error".into()]);
            continue;
        };
        let predicted: std::collections::BTreeSet<_> =
            pred.predicted_critical(0.3).into_iter().collect();

        // Ground truth after assignment, through the same session.
        session
            .set_policy_name("first-free", 42)
            .expect("known policy");
        let Ok(report) = session.analyze(&w.func) else {
            rows.push(vec![w.name.to_string(), "alloc error".into()]);
            continue;
        };
        let measured: std::collections::BTreeSet<_> =
            report.critical.critical().iter().copied().collect();

        let tp = predicted.intersection(&measured).count();
        let precision = if predicted.is_empty() {
            1.0
        } else {
            tp as f64 / predicted.len() as f64
        };
        let recall = if measured.is_empty() {
            1.0
        } else {
            tp as f64 / measured.len() as f64
        };
        rows.push(vec![
            w.name.to_string(),
            predicted.len().to_string(),
            measured.len().to_string(),
            tp.to_string(),
            format!("{precision:.2}"),
            format!("{recall:.2}"),
        ]);
    }
    print_table(
        &[
            "workload",
            "predicted",
            "measured",
            "overlap",
            "precision",
            "recall",
        ],
        &rows,
    );

    // ---- 2. prediction-driven assignment ------------------------------
    println!("\n2) end-to-end: prediction-driven coldest-first vs the Fig. 1 policies:");
    let mut rows = Vec::new();
    for w in standard_suite() {
        let mut cells = vec![w.name.to_string()];

        // Baselines through the standard harness.
        for p in ["first-free", "chessboard"] {
            match evaluate_policy(&mut session, &w, p, 42) {
                Ok(eval) => {
                    cells.push(k2(eval.measured_stats.peak));
                    cells.push(k3(eval.measured_stats.stddev));
                }
                Err(_) => {
                    cells.push("err".into());
                    cells.push(String::new());
                }
            }
        }

        // Prediction-driven: coldest-first seeded with the predictive map.
        let measured = session.predict(&w.func).ok().and_then(|pred| {
            // Normalise scores to [0, 1] and use a self-heat of 0.25:
            // each choice visibly "heats" its cell so successive
            // temporaries rotate instead of funnelling into the single
            // coldest cell.
            let mut scores = pred.cell_scores();
            let max = scores.iter().cloned().fold(0.0f64, f64::max);
            if max > 0.0 {
                for s in &mut scores {
                    *s /= max;
                }
            }
            session.set_policy(Box::new(ColdestFirst::new(scores, 0.25)));
            let report = session.analyze(&w.func).ok()?;

            // Measure through traced co-simulation.
            let mut interp = Interpreter::new(&report.func)
                .with_assignment(&report.assignment)
                .with_fuel(50_000_000);
            for (slot, data) in &w.preload {
                interp = interp.with_slot_data(*slot, data.clone());
            }
            let exec = interp.run(&w.args).ok()?;
            let rf = session.register_file();
            let model =
                tadfa_thermal::ThermalModel::new(rf.floorplan().clone(), session.rc_params());
            let tl = simulate_trace(
                &exec.trace,
                rf,
                &model,
                &session.power_model(),
                &CosimConfig::default(),
            );
            Some(MapStats::of(&tl.peak_map, rf.floorplan()))
        });
        match measured {
            Some(stats) => {
                cells.push(k2(stats.peak));
                cells.push(k3(stats.stddev));
            }
            None => {
                cells.push("err".into());
                cells.push(String::new());
            }
        }
        rows.push(cells);
    }
    print_table(
        &[
            "workload",
            "ff peak",
            "ff sigma",
            "cb peak",
            "cb sigma",
            "pred peak",
            "pred sigma",
        ],
        &rows,
    );

    println!(
        "\nexpected shape: good precision/recall on loop kernels (the hot accumulators \
         are statically obvious); prediction-driven assignment approaches chessboard's \
         sigma and can beat it at high pressure (no half-file restriction)."
    );
}
