//! **Ablation — model-sensitivity of the reproduced results.** The
//! "threats to validity" experiment: how much do the E1 policy
//! separations depend on the calibrated lateral decay length
//! λ = √(R_vert/R_lat), and on the DFA merge rule?
//!
//! Run: `cargo run -p tadfa-bench --bin ablation`

use tadfa_bench::{default_register_file, k2, k3, print_table};
use tadfa_core::{AnalysisGrid, MergeRule, ThermalDfa, ThermalDfaConfig};
use tadfa_regalloc::{allocate_linear_scan, policy_by_name, RegAllocConfig};
use tadfa_sim::{simulate_trace, CosimConfig, Interpreter, RunStats};
use tadfa_thermal::{MapStats, PowerModel, RcParams, ThermalModel};
use tadfa_workloads::{generate, GeneratorConfig};

fn fig1_func() -> tadfa_ir::Function {
    generate(&GeneratorConfig {
        seed: 2009,
        segments: 5,
        exprs_per_segment: 10,
        pressure: 24,
        loops: 2,
        trip_count: 100,
        memory: false,
        hot_vars: 0,
        hot_weight: 8,
    })
}

fn main() {
    let rf = default_register_file();
    let pm = PowerModel::default();

    println!("== Ablation 1: policy separation vs lateral decay length λ ==");
    println!("(first-free peak − chessboard peak, K, on the Fig. 1 workload)\n");

    let base = RcParams::default();
    let mut rows = Vec::new();
    for factor in [0.25f64, 0.5, 1.0, 2.0, 4.0] {
        let params = RcParams {
            lateral_resistance: base.lateral_resistance * factor,
            ..base
        };
        let lambda = params.decay_length();

        let mut peaks = Vec::new();
        for p in ["first-free", "chessboard"] {
            let mut func = fig1_func();
            let mut policy = policy_by_name(p, &rf, 42).expect("known policy");
            let alloc = allocate_linear_scan(
                &mut func,
                &rf,
                policy.as_mut(),
                &RegAllocConfig::default(),
            )
            .expect("workload allocates");
            let exec = Interpreter::new(&func)
                .with_assignment(&alloc.assignment)
                .with_fuel(50_000_000)
                .run(&[3, 7])
                .expect("workload runs");
            let model = ThermalModel::new(rf.floorplan().clone(), params);
            let map =
                simulate_trace(&exec.trace, &rf, &model, &pm, &CosimConfig::default()).peak_map;
            peaks.push(MapStats::of(&map, rf.floorplan()));
        }
        rows.push(vec![
            format!("{:.2}", lambda),
            k2(peaks[0].peak),
            k2(peaks[1].peak),
            k2(peaks[0].peak - peaks[1].peak),
            k3(peaks[0].stddev / peaks[1].stddev.max(1e-9)),
        ]);
    }
    print_table(
        &["lambda", "ff peak(K)", "cb peak(K)", "separation(K)", "sigma ratio"],
        &rows,
    );
    println!(
        "\nexpected: separation shrinks as λ grows (diffusion flattens everything) but \
         first-free stays worst at every λ — the E1 ordering is calibration-robust."
    );

    println!("\n== Ablation 2: DFA merge rule on the suite ==");
    let grid = AnalysisGrid::full(&rf, RcParams::default());
    let mut rows = Vec::new();
    for w in tadfa_workloads::standard_suite().into_iter().take(6) {
        let mut func = w.func.clone();
        let mut policy = policy_by_name("first-free", &rf, 42).expect("known policy");
        let Ok(alloc) =
            allocate_linear_scan(&mut func, &rf, policy.as_mut(), &RegAllocConfig::default())
        else {
            continue;
        };
        let mut cells = vec![w.name.to_string()];
        for merge in [MergeRule::Max, MergeRule::Average] {
            let cfg = ThermalDfaConfig { merge, ..ThermalDfaConfig::default() };
            let r = ThermalDfa::new(&func, &alloc.assignment, &grid, pm, cfg).run();
            cells.push(k2(r.peak_temperature()));
            cells.push(r.convergence.iterations().to_string());
        }
        rows.push(cells);
    }
    print_table(
        &["workload", "max peak(K)", "max iters", "avg peak(K)", "avg iters"],
        &rows,
    );
    println!(
        "\nexpected: max-merge peak ≥ average-merge peak on every kernel (conservative \
         bound), with comparable iteration counts on regular programs."
    );

    println!("\n== Ablation 3: energy/performance axis of the NOP compromise ==");
    // fib with and without cooldown NOPs: RunStats shows the §4 cost.
    let mut func = tadfa_workloads::fibonacci().func;
    let mut policy = policy_by_name("first-free", &rf, 42).expect("known policy");
    let alloc =
        allocate_linear_scan(&mut func, &rf, policy.as_mut(), &RegAllocConfig::default())
            .expect("fib allocates");
    let before = Interpreter::new(&func)
        .with_assignment(&alloc.assignment)
        .run(&[30])
        .expect("fib runs");
    let before_stats =
        RunStats::of(&before.trace, before.cycles, before.insts_executed, &pm, 1e-9);

    let grid_full = AnalysisGrid::full(&rf, RcParams::default());
    tadfa_opt::cooldown_pass(
        &mut func,
        &alloc.assignment,
        &grid_full,
        pm,
        ThermalDfaConfig::default(),
        0.8,
        2,
    );
    let after = Interpreter::new(&func)
        .with_assignment(&alloc.assignment)
        .run(&[30])
        .expect("padded fib runs");
    let after_stats = RunStats::of(&after.trace, after.cycles, after.insts_executed, &pm, 1e-9);
    println!("before NOPs: {before_stats}");
    println!("after  NOPs: {after_stats}");
    println!(
        "EDP {:.3e} → {:.3e} J·s; avg RF power {:.3e} → {:.3e} W (cooler, slower)",
        before_stats.energy_delay_product(),
        after_stats.energy_delay_product(),
        before_stats.avg_rf_power,
        after_stats.avg_rf_power
    );
}
