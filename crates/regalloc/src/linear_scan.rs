//! Linear-scan register allocation with policy-driven assignment.

use crate::assignment::{AllocStats, AllocationResult, Assignment, RegAllocError};
use crate::policy::{AssignmentPolicy, ChoiceContext};
use crate::spill::rewrite_spills;
use tadfa_dataflow::{LiveIntervals, Liveness};
use tadfa_ir::{Cfg, Function, PReg, VReg, Verifier};
use tadfa_thermal::RegisterFile;

/// Allocator configuration shared by both allocators.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct RegAllocConfig {
    /// Maximum spill-and-retry rounds before giving up.
    pub max_rounds: usize,
}

impl Default for RegAllocConfig {
    fn default() -> RegAllocConfig {
        RegAllocConfig { max_rounds: 10 }
    }
}

/// Allocates registers for `func` with the classic linear-scan algorithm,
/// letting `policy` pick which free physical register each value gets.
///
/// Values that do not fit are spilled (furthest-end-first heuristic), the
/// function is rewritten with spill code, and allocation restarts — up to
/// [`RegAllocConfig::max_rounds`] times.
///
/// On success every live virtual register of the (possibly rewritten)
/// function has a physical register.
///
/// # Errors
///
/// * [`RegAllocError::TooFewRegisters`] for register files smaller than 2;
/// * [`RegAllocError::InvalidFunction`] if `func` fails verification;
/// * [`RegAllocError::DidNotTerminate`] if spilling keeps the pressure
///   above the file size for every round.
///
/// # Examples
///
/// ```
/// use tadfa_ir::FunctionBuilder;
/// use tadfa_regalloc::{allocate_linear_scan, FirstFree, RegAllocConfig};
/// use tadfa_thermal::{Floorplan, RegisterFile};
///
/// let mut b = FunctionBuilder::new("f");
/// let x = b.param();
/// let y = b.add(x, x);
/// b.ret(Some(y));
/// let mut f = b.finish();
///
/// let rf = RegisterFile::new(Floorplan::grid(4, 4));
/// let result = allocate_linear_scan(
///     &mut f, &rf, &mut FirstFree, &RegAllocConfig::default())?;
/// assert!(result.assignment.preg_of(x).is_some());
/// # Ok::<(), tadfa_regalloc::RegAllocError>(())
/// ```
pub fn allocate_linear_scan(
    func: &mut Function,
    rf: &RegisterFile,
    policy: &mut dyn AssignmentPolicy,
    config: &RegAllocConfig,
) -> Result<AllocationResult, RegAllocError> {
    let k = rf.num_regs();
    if k < 2 {
        return Err(RegAllocError::TooFewRegisters { available: k });
    }
    if let Err(e) = Verifier::new(func).run() {
        return Err(RegAllocError::InvalidFunction(e.to_string()));
    }

    let mut stats = AllocStats::default();
    for round in 1..=config.max_rounds {
        stats.rounds = round;
        policy.reset();

        let cfg = Cfg::compute(func);
        let live = Liveness::compute(func, &cfg);
        let li = LiveIntervals::compute(func, &cfg, &live);
        let intervals = li.sorted_by_start();

        let mut assignment = Assignment::new(func.num_vregs(), k);
        let mut free: Vec<PReg> = (0..k).map(|i| PReg::new(i as u16)).collect();
        // (end, vreg, preg), kept sorted by end ascending.
        let mut active: Vec<(u32, VReg, PReg)> = Vec::new();
        let mut spilled: Vec<VReg> = Vec::new();

        for iv in &intervals {
            // Expire intervals that ended.
            while let Some(&(end, _, r)) = active.first() {
                if end <= iv.start {
                    active.remove(0);
                    let pos = free.binary_search(&r).unwrap_err();
                    free.insert(pos, r);
                    policy.on_release(r);
                } else {
                    break;
                }
            }

            if free.is_empty() {
                // Spill the interval with the furthest end (current
                // included).
                let (last_end, last_v, last_r) =
                    *active.last().expect("k >= 2 implies active non-empty");
                if last_end > iv.end {
                    // Steal the register from the furthest active value.
                    spilled.push(last_v);
                    active.pop();
                    assignment.assign(iv.vreg, last_r);
                    let pos = active
                        .binary_search_by_key(&(iv.end, iv.vreg), |&(e, v, _)| (e, v))
                        .unwrap_or_else(|p| p);
                    active.insert(pos, (iv.end, iv.vreg, last_r));
                } else {
                    spilled.push(iv.vreg);
                }
                continue;
            }

            let active_pregs: Vec<PReg> = active.iter().map(|&(_, _, r)| r).collect();
            let ctx = ChoiceContext {
                rf,
                vreg: iv.vreg,
                active: &active_pregs,
                point: iv.start,
            };
            let r = policy.choose(&free, &ctx);
            let pos = free
                .iter()
                .position(|&x| x == r)
                .expect("policy must choose from the free list");
            free.remove(pos);
            assignment.assign(iv.vreg, r);
            let pos = active
                .binary_search_by_key(&(iv.end, iv.vreg), |&(e, v, _)| (e, v))
                .unwrap_or_else(|p| p);
            active.insert(pos, (iv.end, iv.vreg, r));
        }

        if spilled.is_empty() {
            return Ok(AllocationResult { assignment, stats });
        }
        spilled.sort();
        spilled.dedup();
        stats.spilled += spilled.len();
        stats.spill_code_insts += rewrite_spills(func, &spilled);
    }

    Err(RegAllocError::DidNotTerminate {
        rounds: config.max_rounds,
    })
}

/// Checks that an assignment is interference-free: no two simultaneously
/// live virtual registers share a physical register. Returns the list of
/// violating pairs (empty = valid).
///
/// This is the allocator's own acceptance test, also used by the property
/// tests.
pub fn validate_assignment(func: &Function, assignment: &Assignment) -> Vec<(VReg, VReg)> {
    let cfg = Cfg::compute(func);
    let live = Liveness::compute(func, &cfg);
    let ig = crate::interference::InterferenceGraph::build(func, &cfg, &live);
    let mut bad = Vec::new();
    for i in 0..func.num_vregs() {
        let a = VReg::new(i as u32);
        let Some(ra) = assignment.preg_of(a) else {
            continue;
        };
        for b in ig.neighbors(a) {
            if b.index() > i {
                if let Some(rb) = assignment.preg_of(b) {
                    if ra == rb {
                        bad.push((a, b));
                    }
                }
            }
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Chessboard, FirstFree, RandomPolicy, RoundRobin};
    use tadfa_ir::FunctionBuilder;
    use tadfa_thermal::Floorplan;

    fn rf(n_cells: usize) -> RegisterFile {
        let side = (n_cells as f64).sqrt() as usize;
        RegisterFile::new(Floorplan::grid(side, n_cells / side))
    }

    fn chain_function(len: usize) -> Function {
        // x0 = p; x_{i+1} = x_i + x_i — sequential, low pressure.
        let mut b = FunctionBuilder::new("chain");
        let mut v = b.param();
        for _ in 0..len {
            v = b.add(v, v);
        }
        b.ret(Some(v));
        b.finish()
    }

    fn wide_function(width: usize) -> Function {
        // Compute `width` values from the param, then sum them all:
        // pressure ≈ width.
        let mut b = FunctionBuilder::new("wide");
        let p = b.param();
        let vals: Vec<_> = (0..width).map(|_| b.add(p, p)).collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.add(acc, v);
        }
        b.ret(Some(acc));
        b.finish()
    }

    #[test]
    fn low_pressure_allocates_without_spills() {
        let mut f = chain_function(10);
        let rf = rf(16);
        let r =
            allocate_linear_scan(&mut f, &rf, &mut FirstFree, &RegAllocConfig::default()).unwrap();
        assert_eq!(r.stats.spilled, 0);
        assert_eq!(r.stats.rounds, 1);
        assert!(validate_assignment(&f, &r.assignment).is_empty());
    }

    #[test]
    fn first_free_concentrates_low_registers() {
        let mut f = chain_function(20);
        let rf = rf(16);
        let r =
            allocate_linear_scan(&mut f, &rf, &mut FirstFree, &RegAllocConfig::default()).unwrap();
        // Sequential chain: at most 2-3 registers ever needed, and
        // first-free keeps reusing the lowest ones.
        assert!(r.assignment.distinct_pregs_used() <= 3);
        let occ = r.assignment.occupancy();
        assert!(occ[0] > 0, "r0 heavily reused");
    }

    #[test]
    fn round_robin_spreads_across_the_file() {
        let mut f = chain_function(20);
        let rf = rf(16);
        let r = allocate_linear_scan(
            &mut f,
            &rf,
            &mut RoundRobin::default(),
            &RegAllocConfig::default(),
        )
        .unwrap();
        assert!(
            r.assignment.distinct_pregs_used() >= 10,
            "round robin touches many registers: {}",
            r.assignment.distinct_pregs_used()
        );
    }

    #[test]
    fn high_pressure_spills_and_still_validates() {
        let mut f = wide_function(24);
        let rf = rf(16);
        let r =
            allocate_linear_scan(&mut f, &rf, &mut FirstFree, &RegAllocConfig::default()).unwrap();
        assert!(
            r.stats.spilled > 0,
            "24 simultaneous values in 16 regs must spill"
        );
        assert!(r.stats.rounds > 1);
        assert!(r.stats.spill_code_insts > 0);
        assert!(validate_assignment(&f, &r.assignment).is_empty());
        assert!(tadfa_ir::Verifier::new(&f).run().is_ok());
    }

    #[test]
    fn all_policies_produce_valid_assignments() {
        let rf = rf(16);
        let policies: Vec<Box<dyn AssignmentPolicy>> = vec![
            Box::new(FirstFree),
            Box::new(RandomPolicy::new(7)),
            Box::new(Chessboard::default()),
            Box::new(RoundRobin::default()),
            Box::new(crate::policy::FarthestSpread),
            Box::new(crate::policy::ColdestFirst::uniform(16, 1.0)),
        ];
        for mut p in policies {
            let mut f = wide_function(12);
            let r =
                allocate_linear_scan(&mut f, &rf, p.as_mut(), &RegAllocConfig::default()).unwrap();
            assert!(
                validate_assignment(&f, &r.assignment).is_empty(),
                "policy {} produced conflicts",
                p.name()
            );
        }
    }

    #[test]
    fn chessboard_only_uses_black_cells_at_low_pressure() {
        let mut f = chain_function(12);
        let rf = rf(16);
        let r = allocate_linear_scan(
            &mut f,
            &rf,
            &mut Chessboard::default(),
            &RegAllocConfig::default(),
        )
        .unwrap();
        for (_, preg) in r.assignment.iter() {
            assert!(
                rf.floorplan().is_black(rf.cell_of(preg)),
                "{preg} is on a white cell at low pressure"
            );
        }
    }

    #[test]
    fn tiny_register_file_rejected() {
        let fp = Floorplan::grid(1, 1);
        let rf = RegisterFile::new(fp);
        let mut f = chain_function(2);
        let e = allocate_linear_scan(&mut f, &rf, &mut FirstFree, &RegAllocConfig::default())
            .unwrap_err();
        assert!(matches!(e, RegAllocError::TooFewRegisters { available: 1 }));
    }

    #[test]
    fn invalid_function_rejected() {
        let b = FunctionBuilder::new("open"); // unterminated block
        let mut f = b.finish();
        let rf = rf(16);
        let e = allocate_linear_scan(&mut f, &rf, &mut FirstFree, &RegAllocConfig::default())
            .unwrap_err();
        assert!(matches!(e, RegAllocError::InvalidFunction(_)));
    }

    #[test]
    fn loop_function_allocates() {
        let mut b = FunctionBuilder::new("l");
        let n = b.param();
        let h = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let i = b.iconst(0);
        let acc = b.iconst(0);
        b.jump(h);
        b.switch_to(h);
        let d = b.cmpge(i, n);
        b.branch(d, exit, body);
        b.switch_to(body);
        let acc2 = b.add(acc, i);
        let one = b.iconst(1);
        let i2 = b.add(i, one);
        b.mov_into(acc, acc2);
        b.mov_into(i, i2);
        b.jump(h);
        b.switch_to(exit);
        b.ret(Some(acc));
        let mut f = b.finish();
        let rf = rf(16);
        let r =
            allocate_linear_scan(&mut f, &rf, &mut FirstFree, &RegAllocConfig::default()).unwrap();
        assert!(validate_assignment(&f, &r.assignment).is_empty());
        // Loop-carried registers must be assigned.
        assert!(r.assignment.preg_of(i).is_some());
        assert!(r.assignment.preg_of(acc).is_some());
        assert!(r.assignment.preg_of(n).is_some());
    }
}
