//! Chaitin–Briggs style graph-coloring allocation with policy-driven
//! colour selection.

use crate::assignment::{AllocStats, AllocationResult, Assignment, RegAllocError};
use crate::interference::InterferenceGraph;
use crate::linear_scan::RegAllocConfig;
use crate::policy::{AssignmentPolicy, ChoiceContext};
use crate::spill::rewrite_spills;
use tadfa_dataflow::{DefUse, Liveness};
use tadfa_ir::{Cfg, Function, PReg, VReg, Verifier};
use tadfa_thermal::RegisterFile;

/// Allocates registers by graph coloring (simplify/select), with `policy`
/// choosing among the legal colours at each select step.
///
/// Nodes that cannot be simplified are optimistic-spill candidates; if
/// select finds no colour for them they are spilled and allocation
/// retries on the rewritten function.
///
/// # Errors
///
/// Same error contract as
/// [`allocate_linear_scan`](crate::allocate_linear_scan).
///
/// # Examples
///
/// ```
/// use tadfa_ir::FunctionBuilder;
/// use tadfa_regalloc::{allocate_coloring, FirstFree, RegAllocConfig};
/// use tadfa_thermal::{Floorplan, RegisterFile};
///
/// let mut b = FunctionBuilder::new("f");
/// let x = b.param();
/// let y = b.add(x, x);
/// b.ret(Some(y));
/// let mut f = b.finish();
/// let rf = RegisterFile::new(Floorplan::grid(4, 4));
/// let r = allocate_coloring(&mut f, &rf, &mut FirstFree, &RegAllocConfig::default())?;
/// assert!(r.assignment.preg_of(y).is_some());
/// # Ok::<(), tadfa_regalloc::RegAllocError>(())
/// ```
pub fn allocate_coloring(
    func: &mut Function,
    rf: &RegisterFile,
    policy: &mut dyn AssignmentPolicy,
    config: &RegAllocConfig,
) -> Result<AllocationResult, RegAllocError> {
    let k = rf.num_regs();
    if k < 2 {
        return Err(RegAllocError::TooFewRegisters { available: k });
    }
    if let Err(e) = Verifier::new(func).run() {
        return Err(RegAllocError::InvalidFunction(e.to_string()));
    }

    let mut stats = AllocStats::default();
    for round in 1..=config.max_rounds {
        stats.rounds = round;
        policy.reset();

        let cfg = Cfg::compute(func);
        let live = Liveness::compute(func, &cfg);
        let ig = InterferenceGraph::build(func, &cfg, &live);
        let du = DefUse::compute(func);

        // Only colour registers that actually appear.
        let n = func.num_vregs();
        let relevant: Vec<bool> = (0..n)
            .map(|i| {
                let v = VReg::new(i as u32);
                du.num_defs(v) > 0 || du.num_uses(v) > 0 || func.params().contains(&v)
            })
            .collect();

        // Simplify: repeatedly remove nodes with remaining degree < k.
        let mut removed = vec![false; n];
        let mut stack: Vec<(VReg, bool)> = Vec::new(); // (node, spill-candidate)
        let remaining_degree = |v: usize, removed: &[bool], ig: &InterferenceGraph| {
            ig.neighbors(VReg::new(v as u32))
                .filter(|nb| !removed[nb.index()])
                .count()
        };

        let mut left: usize = relevant.iter().filter(|&&r| r).count();
        while left > 0 {
            // Find a simplifiable node (lowest index for determinism).
            let mut picked = None;
            for v in 0..n {
                if relevant[v] && !removed[v] && remaining_degree(v, &removed, &ig) < k {
                    picked = Some((VReg::new(v as u32), false));
                    break;
                }
            }
            // None simplifiable: pick the max-degree node as a potential
            // spill (ties: lowest index).
            if picked.is_none() {
                let mut best: Option<(usize, usize)> = None;
                for v in 0..n {
                    if relevant[v] && !removed[v] {
                        let d = remaining_degree(v, &removed, &ig);
                        if best.is_none_or(|(bd, _)| d > bd) {
                            best = Some((d, v));
                        }
                    }
                }
                let (_, v) = best.expect("left > 0 means a node exists");
                picked = Some((VReg::new(v as u32), true));
            }
            let (v, spillish) = picked.expect("picked above");
            removed[v.index()] = true;
            stack.push((v, spillish));
            left -= 1;
        }

        // Select: pop and colour.
        let mut assignment = Assignment::new(n, k);
        let mut spilled: Vec<VReg> = Vec::new();
        while let Some((v, _)) = stack.pop() {
            let mut taken = vec![false; k];
            let mut active: Vec<PReg> = Vec::new();
            for nb in ig.neighbors(v) {
                if let Some(r) = assignment.preg_of(nb) {
                    taken[r.index()] = true;
                    active.push(r);
                }
            }
            let free: Vec<PReg> = (0..k)
                .filter(|&i| !taken[i])
                .map(|i| PReg::new(i as u16))
                .collect();
            if free.is_empty() {
                spilled.push(v);
                continue;
            }
            let ctx = ChoiceContext {
                rf,
                vreg: v,
                active: &active,
                point: 0,
            };
            let r = policy.choose(&free, &ctx);
            assert!(
                free.contains(&r),
                "policy {} chose a non-free register",
                policy.name()
            );
            assignment.assign(v, r);
        }

        if spilled.is_empty() {
            return Ok(AllocationResult { assignment, stats });
        }
        spilled.sort();
        spilled.dedup();
        stats.spilled += spilled.len();
        stats.spill_code_insts += rewrite_spills(func, &spilled);
    }

    Err(RegAllocError::DidNotTerminate {
        rounds: config.max_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear_scan::validate_assignment;
    use crate::policy::{Chessboard, FirstFree, RandomPolicy};
    use tadfa_ir::FunctionBuilder;
    use tadfa_thermal::Floorplan;

    fn rf_16() -> RegisterFile {
        RegisterFile::new(Floorplan::grid(4, 4))
    }

    fn wide_function(width: usize) -> Function {
        let mut b = FunctionBuilder::new("wide");
        let p = b.param();
        let vals: Vec<_> = (0..width).map(|_| b.add(p, p)).collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.add(acc, v);
        }
        b.ret(Some(acc));
        b.finish()
    }

    #[test]
    fn colors_low_pressure_without_spills() {
        let mut f = wide_function(8);
        let r = allocate_coloring(&mut f, &rf_16(), &mut FirstFree, &RegAllocConfig::default())
            .unwrap();
        assert_eq!(r.stats.spilled, 0);
        assert!(validate_assignment(&f, &r.assignment).is_empty());
    }

    #[test]
    fn spills_under_high_pressure_and_validates() {
        let mut f = wide_function(30);
        let r = allocate_coloring(&mut f, &rf_16(), &mut FirstFree, &RegAllocConfig::default())
            .unwrap();
        assert!(r.stats.spilled > 0);
        assert!(validate_assignment(&f, &r.assignment).is_empty());
        assert!(tadfa_ir::Verifier::new(&f).run().is_ok());
    }

    #[test]
    fn coloring_agrees_with_linear_scan_on_validity() {
        for seed in 0..3u64 {
            let mut f1 = wide_function(14);
            let mut f2 = f1.clone();
            let r1 = allocate_coloring(
                &mut f1,
                &rf_16(),
                &mut RandomPolicy::new(seed),
                &RegAllocConfig::default(),
            )
            .unwrap();
            let r2 = crate::allocate_linear_scan(
                &mut f2,
                &rf_16(),
                &mut RandomPolicy::new(seed),
                &RegAllocConfig::default(),
            )
            .unwrap();
            assert!(validate_assignment(&f1, &r1.assignment).is_empty());
            assert!(validate_assignment(&f2, &r2.assignment).is_empty());
        }
    }

    #[test]
    fn chessboard_coloring_prefers_black_cells() {
        let mut f = wide_function(6);
        let rf = rf_16();
        let r = allocate_coloring(
            &mut f,
            &rf,
            &mut Chessboard::default(),
            &RegAllocConfig::default(),
        )
        .unwrap();
        let black = r
            .assignment
            .iter()
            .filter(|&(_, p)| rf.floorplan().is_black(rf.cell_of(p)))
            .count();
        let total = r.assignment.iter().count();
        assert!(black * 2 >= total, "mostly black cells: {black}/{total}");
    }

    #[test]
    fn rejects_tiny_file_and_invalid_function() {
        let rf1 = RegisterFile::new(Floorplan::grid(1, 1));
        let mut f = wide_function(3);
        assert!(matches!(
            allocate_coloring(&mut f, &rf1, &mut FirstFree, &RegAllocConfig::default()),
            Err(RegAllocError::TooFewRegisters { .. })
        ));
        let open = FunctionBuilder::new("open").finish();
        let mut open = open;
        assert!(matches!(
            allocate_coloring(
                &mut open,
                &rf_16(),
                &mut FirstFree,
                &RegAllocConfig::default()
            ),
            Err(RegAllocError::InvalidFunction(_))
        ));
    }
}
