//! # tadfa — Thermal-Aware Data Flow Analysis
//!
//! A complete, from-scratch reproduction of *Thermal-Aware Data Flow
//! Analysis* (José L. Ayala, David Atienza, Philip Brisk — DAC 2009) as a
//! Rust workspace. This facade crate re-exports every sub-crate:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`ir`] | three-address IR, CFG, dominators, loops, parser, verifier |
//! | [`dataflow`] | worklist solver, liveness, reaching defs, available exprs, bitwidth, live intervals |
//! | [`thermal`] | register-file floorplan, RC compact model, power model, heat maps |
//! | [`regalloc`] | linear-scan + coloring allocators, Fig. 1 assignment policies |
//! | [`core`] | **the paper**: the thermal DFA (Fig. 2), δ-convergence, critical variables, predictive mode |
//! | [`opt`] | §4 optimizations: spill-critical, splitting, scheduling, promotion, NOPs |
//! | [`sim`] | IR interpreter, access traces, thermal co-simulation (ground truth) |
//! | [`workloads`] | benchmark kernels + seeded program generator |
//!
//! ## Quickstart
//!
//! ```
//! use tadfa::prelude::*;
//!
//! // 1. A workload.
//! let w = tadfa::workloads::fibonacci();
//! let mut func = w.func.clone();
//!
//! // 2. Allocate registers onto an 8×8 file with the compiler-default
//! //    (hot-spot-producing) first-free policy.
//! let rf = RegisterFile::new(Floorplan::grid(8, 8));
//! let alloc = allocate_linear_scan(
//!     &mut func, &rf, &mut FirstFree, &RegAllocConfig::default()).unwrap();
//!
//! // 3. Run the paper's thermal data flow analysis.
//! let grid = AnalysisGrid::full(&rf, RcParams::default());
//! let result = ThermalDfa::new(
//!     &func, &alloc.assignment, &grid,
//!     PowerModel::default(), ThermalDfaConfig::default()).run();
//!
//! assert!(result.convergence.is_converged());
//! assert!(result.peak_temperature() > grid.model().ambient());
//! ```

#![warn(missing_docs)]

pub use tadfa_core as core;
pub use tadfa_dataflow as dataflow;
pub use tadfa_ir as ir;
pub use tadfa_opt as opt;
pub use tadfa_regalloc as regalloc;
pub use tadfa_sim as sim;
pub use tadfa_thermal as thermal;
pub use tadfa_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use tadfa_core::{
        AnalysisGrid, Convergence, CriticalConfig, CriticalSet, MergeRule, PlacementPrior,
        PredictiveConfig, PredictiveDfa, ThermalDfa, ThermalDfaConfig,
    };
    pub use tadfa_dataflow::{DefUse, Liveness};
    pub use tadfa_ir::{Cfg, Function, FunctionBuilder, Opcode, PReg, VReg, Verifier};
    pub use tadfa_opt::{run_thermal_pipeline, OptKind, PipelineConfig};
    pub use tadfa_regalloc::{
        allocate_coloring, allocate_linear_scan, AssignmentPolicy, Chessboard, ColdestFirst,
        FarthestSpread, FirstFree, RandomPolicy, RegAllocConfig, RoundRobin,
    };
    pub use tadfa_sim::{compare_maps, simulate_trace, CosimConfig, Interpreter};
    pub use tadfa_thermal::{
        render_ascii_auto, Floorplan, MapStats, PowerModel, RcParams, RegisterFile, ThermalModel,
        ThermalState,
    };
    pub use tadfa_workloads::standard_suite;
}
