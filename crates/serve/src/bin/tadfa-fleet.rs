//! `tadfa-fleet` — the self-healing multi-process analysis service.
//!
//! Spawns `--workers` stock `tadfa-serve` processes (each with its own
//! cache slice under `--cache-root`) and serves the same JSON-lines
//! protocol on one front socket, sharding requests across the workers
//! by scenario fingerprint. The fleet heals itself: health probes
//! demote unresponsive workers (healthy → degraded → dead), a dead
//! worker's keyspace fails over to its backup (byte-identical, because
//! the solve is deterministic), the supervisor restarts crashed or
//! hung workers with capped backoff, and a restarted worker rejoins
//! only after preloading its segment directory — warm — and (with
//! `--warm-golden`) re-verifying every scenario fingerprint against
//! the committed goldens.
//!
//! ```text
//! tadfa-fleet --listen <addr:port> [--scenarios <dir>] [--workers N]
//!             [--cache-root <dir>] [--state-dir <dir>] [--warm-golden <dir>]
//!             [--serve-bin <path>] [--serve-arg <arg>]...
//!             [--health-interval-ms N] [--health-timeout-ms N] [--dead-after N]
//!             [--restart-backoff-ms N] [--spawn-timeout-ms N] [--compact-on-restart]
//!             [--queue-capacity N] [--forwarders N] [--default-deadline-ms N]
//!             [--attempt-timeout-ms N] [--max-retries N]
//! ```
//!
//! Exit codes: `0` clean shutdown, `2` usage/startup error. All
//! diagnostics (including each worker's stderr, line-prefixed
//! `[worker-N]`) go to stderr.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use tadfa_serve::{Fleet, FleetConfig, Router, RouterPolicy};

const USAGE: &str = "\
tadfa-fleet — self-healing sharded fleet of tadfa-serve workers

USAGE:
    tadfa-fleet --listen <addr:port> [--scenarios <dir>] [--workers N]
                [--cache-root <dir>] [--state-dir <dir>] [--warm-golden <dir>]
                [--serve-bin <path>] [--serve-arg <arg>]...
                [--health-interval-ms N] [--health-timeout-ms N] [--dead-after N]
                [--restart-backoff-ms N] [--spawn-timeout-ms N] [--compact-on-restart]
                [--queue-capacity N] [--forwarders N] [--default-deadline-ms N]
                [--attempt-timeout-ms N] [--max-retries N]

Spawns --workers tadfa-serve processes, each with its own persistent
cache slice under --cache-root/worker-<i>, and routes the standard
JSON-lines protocol from one socket: run-scenario shards by scenario
stem (cache locality), analyze/analyze-module by stem+source (spread),
each with the next worker as failover backup. Health probes
(ping + stats) demote workers healthy -> degraded -> dead; dead
workers lose their traffic to the backup and are restarted by the
supervisor with capped exponential backoff, rejoining warm from their
segment directory. Requests retry with backoff+jitter on queue-full
and connection errors, and are shed with a typed fleet-overloaded
error once another retry would breach the deadline. --state-dir holds
worker-<i>.pid files for chaos tooling; --serve-arg (repeatable)
passes extra flags through to every worker.";

fn main() -> ExitCode {
    let mut cfg = FleetConfig::default();
    let mut policy = RouterPolicy::default();
    let mut listen: Option<String> = None;
    // The sibling tadfa-serve is the default worker binary.
    if let Ok(exe) = std::env::current_exe() {
        if let Some(dir) = exe.parent() {
            cfg.serve_bin = dir.join("tadfa-serve");
        }
    }

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let u64_arg = |name: &str, v: Option<&String>| -> Result<u64, String> {
        v.ok_or_else(|| format!("{name} needs a value"))?
            .parse::<u64>()
            .map_err(|_| format!("{name} needs a non-negative integer"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => match it.next() {
                Some(addr) => listen = Some(addr.clone()),
                None => return usage_error("--listen needs an <addr:port>"),
            },
            "--scenarios" => match it.next() {
                Some(dir) => cfg.scenario_dir = PathBuf::from(dir),
                None => return usage_error("--scenarios needs a directory"),
            },
            "--workers" => match u64_arg(arg, it.next()) {
                Ok(v) => cfg.workers = v as usize,
                Err(e) => return usage_error(&e),
            },
            "--cache-root" => match it.next() {
                Some(dir) => cfg.cache_root = PathBuf::from(dir),
                None => return usage_error("--cache-root needs a directory"),
            },
            "--state-dir" => match it.next() {
                Some(dir) => cfg.state_dir = PathBuf::from(dir),
                None => return usage_error("--state-dir needs a directory"),
            },
            "--warm-golden" => match it.next() {
                Some(dir) => cfg.warm_golden = Some(PathBuf::from(dir)),
                None => return usage_error("--warm-golden needs a directory"),
            },
            "--serve-bin" => match it.next() {
                Some(path) => cfg.serve_bin = PathBuf::from(path),
                None => return usage_error("--serve-bin needs a path"),
            },
            "--serve-arg" => match it.next() {
                Some(extra) => cfg.serve_args.push(extra.clone()),
                None => return usage_error("--serve-arg needs a value"),
            },
            "--health-interval-ms" => match u64_arg(arg, it.next()) {
                Ok(v) => cfg.health.interval_ms = v,
                Err(e) => return usage_error(&e),
            },
            "--health-timeout-ms" => match u64_arg(arg, it.next()) {
                Ok(v) => cfg.health.timeout_ms = v,
                Err(e) => return usage_error(&e),
            },
            "--dead-after" => match u64_arg(arg, it.next()) {
                Ok(v) => cfg.health.dead_after = v as u32,
                Err(e) => return usage_error(&e),
            },
            "--restart-backoff-ms" => match u64_arg(arg, it.next()) {
                Ok(v) => cfg.restart_backoff_ms = v,
                Err(e) => return usage_error(&e),
            },
            "--spawn-timeout-ms" => match u64_arg(arg, it.next()) {
                Ok(v) => cfg.spawn_timeout_ms = v,
                Err(e) => return usage_error(&e),
            },
            "--compact-on-restart" => cfg.compact_on_restart = true,
            "--queue-capacity" => match u64_arg(arg, it.next()) {
                Ok(v) => policy.queue_capacity = v as usize,
                Err(e) => return usage_error(&e),
            },
            "--forwarders" => match u64_arg(arg, it.next()) {
                Ok(v) => policy.forwarders = v as usize,
                Err(e) => return usage_error(&e),
            },
            "--default-deadline-ms" => match u64_arg(arg, it.next()) {
                Ok(v) => policy.default_deadline_ms = v,
                Err(e) => return usage_error(&e),
            },
            "--attempt-timeout-ms" => match u64_arg(arg, it.next()) {
                Ok(v) => policy.attempt_timeout_ms = v,
                Err(e) => return usage_error(&e),
            },
            "--max-retries" => match u64_arg(arg, it.next()) {
                Ok(v) => policy.max_retries = v as u32,
                Err(e) => return usage_error(&e),
            },
            "--help" | "-h" | "help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument '{other}'")),
        }
    }
    let Some(listen) = listen else {
        return usage_error("--listen is required (the fleet has no pipe mode)");
    };

    // Bind the front door before paying for worker startup, so an
    // unusable address fails in milliseconds.
    let listener = match TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("tadfa-fleet: cannot bind {listen}: {e}");
            return ExitCode::from(2);
        }
    };

    let fleet = match Fleet::launch(cfg.clone()) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("tadfa-fleet: {e}");
            return ExitCode::from(2);
        }
    };
    let state = fleet.state();
    let addr = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or(listen);
    eprintln!(
        "tadfa-fleet: listening on {addr} ({} workers, scenarios from {})",
        state.worker_count(),
        cfg.scenario_dir.display(),
    );

    let fleet_threads = fleet.run_background();
    let router = Router::new(state, policy);
    let forwarders = router.run_forwarders();
    let served = router.serve(listener);
    for handle in forwarders.into_iter().chain(fleet_threads) {
        let _ = handle.join();
    }
    if let Err(e) = served {
        eprintln!("tadfa-fleet: {e}");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("{message}\n\n{USAGE}");
    ExitCode::from(2)
}
