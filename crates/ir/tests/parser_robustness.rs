//! Robustness property tests for the IR text parser: it must never
//! panic, only return errors — and must stay the inverse of the printer.
//!
//! (Seeded-loop style: the offline build has no proptest, so cases are
//! drawn from the workspace's deterministic `rand` stub.)

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tadfa_ir::{parse_function, FunctionBuilder, Verifier};

/// Builds a random but well-formed function directly through the
/// builder: straight-line arithmetic plus an optional diamond.
fn arb_function(rng: &mut StdRng) -> String {
    let n_ops = rng.gen_range(1usize..12);
    let diamond = rng.gen_bool(0.5);
    let imm = rng.gen_range(-100i64..100);

    let mut b = FunctionBuilder::new("gen");
    let x = b.param();
    let y = b.param();
    let mut last = x;
    let k = b.iconst(imm);
    let mut pool = vec![x, y, k];
    for i in 0..n_ops {
        let a = pool[i % pool.len()];
        let c = pool[(i * 7 + 1) % pool.len()];
        last = match rng.gen_range(0usize..6) {
            0 => b.add(a, c),
            1 => b.sub(a, c),
            2 => b.mul(a, c),
            3 => b.xor(a, c),
            4 => b.cmplt(a, c),
            _ => b.select(a, c, last),
        };
        pool.push(last);
    }
    if diamond {
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.cmpne(last, x);
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(Some(last));
    } else {
        b.ret(Some(last));
    }
    b.finish().to_string()
}

/// print → parse → print is the identity on generated functions, and
/// the reparsed function verifies.
#[test]
fn print_parse_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xA1);
    for case in 0..64 {
        let text = arb_function(&mut rng);
        let f = parse_function(&text).expect("printer output must parse");
        assert!(Verifier::new(&f).run().is_ok(), "case {case}");
        assert_eq!(f.to_string(), text, "case {case}");
    }
}

/// The parser returns Err (never panics) on corrupted inputs: random
/// single-character mutations of valid programs.
#[test]
fn parser_survives_mutations() {
    let mut rng = StdRng::seed_from_u64(0xA2);
    for _ in 0..128 {
        let text = arb_function(&mut rng);
        let bytes: Vec<char> = text.chars().collect();
        let pos = rng.gen_range(0usize..bytes.len().max(1));
        let replacement = char::from_u32(rng.gen_range(1u32..0xD800)).unwrap_or('\u{FFFD}');
        let mut mutated: String = bytes[..pos].iter().collect();
        mutated.push(replacement);
        mutated.extend(bytes[pos + 1..].iter());
        // Either parses (mutation was benign) or errors cleanly.
        let _ = parse_function(&mutated);
    }
}

/// The parser never panics on arbitrary junk.
#[test]
fn parser_survives_arbitrary_text() {
    let mut rng = StdRng::seed_from_u64(0xA3);
    for _ in 0..128 {
        let len = rng.gen_range(0usize..200);
        let junk: String = (0..len)
            .map(|_| char::from_u32(rng.gen_range(1u32..0xD800)).unwrap_or('\u{FFFD}'))
            .collect();
        let _ = parse_function(&junk);
    }
}

/// Line-dropped programs either parse or error cleanly — and if they
/// parse, the verifier still accepts or rejects without panicking.
#[test]
fn parser_survives_line_drops() {
    let mut rng = StdRng::seed_from_u64(0xA4);
    for _ in 0..64 {
        let text = arb_function(&mut rng);
        let lines: Vec<&str> = text.lines().collect();
        if lines.len() > 2 {
            let idx = rng.gen_range(0usize..lines.len());
            let reduced: String = lines
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != idx)
                .map(|(_, l)| *l)
                .collect::<Vec<_>>()
                .join("\n");
            if let Ok(f) = parse_function(&reduced) {
                let _ = Verifier::new(&f).run();
            }
        }
    }
}
