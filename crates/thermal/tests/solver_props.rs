//! Property tests for the RC thermal solvers: the physical invariants
//! every experiment implicitly relies on.
//!
//! (Seeded-loop style: the offline build has no proptest, so cases are
//! drawn from the workspace's deterministic `rand` stub.)

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tadfa_thermal::{Floorplan, RcParams, ThermalModel, ThermalState};

const CASES: usize = 64;

fn model() -> ThermalModel {
    ThermalModel::new(Floorplan::grid(4, 4), RcParams::default())
}

fn arb_power(rng: &mut StdRng) -> Vec<f64> {
    (0..16).map(|_| rng.gen_range(0.0f64..2e-3)).collect()
}

/// Long transients converge to the steady-state solution — the two
/// solvers agree with each other.
#[test]
fn transient_converges_to_steady_state() {
    let mut rng = StdRng::seed_from_u64(0xD1);
    let m = model();
    for case in 0..CASES {
        let power: Vec<f64> = (0..16).map(|_| rng.gen_range(0.0f64..1e-3)).collect();
        let ss = m.steady_state(&power);
        let mut s = m.ambient_state();
        // 30 vertical time constants.
        let tau = m.params().cell_capacitance * m.params().vertical_resistance;
        m.step(&mut s, &power, 30.0 * tau);
        let scale = (ss.peak() - m.ambient()).max(1e-3);
        assert!(
            s.linf_distance(&ss) < 0.02 * scale + 1e-6,
            "case {case}: transient {:?} vs steady {:?}",
            s.peak(),
            ss.peak()
        );
    }
}

/// Total steady-state heat balance: power in equals vertical heat out
/// (lateral flows cancel pairwise).
#[test]
fn steady_state_conserves_energy() {
    let mut rng = StdRng::seed_from_u64(0xD2);
    let m = model();
    for case in 0..CASES {
        let power = arb_power(&mut rng);
        let ss = m.steady_state(&power);
        let g_vert = 1.0 / m.params().vertical_resistance;
        let heat_out: f64 = ss.temps().iter().map(|&t| (t - m.ambient()) * g_vert).sum();
        let heat_in: f64 = power.iter().sum();
        assert!(
            (heat_out - heat_in).abs() <= 0.01 * heat_in.max(1e-9),
            "case {case}: in {heat_in} vs out {heat_out}"
        );
    }
}

/// Splitting a transient into two steps equals one combined step
/// (semigroup property of the discretised flow).
#[test]
fn stepping_is_a_semigroup() {
    let mut rng = StdRng::seed_from_u64(0xD3);
    let m = model();
    for case in 0..CASES {
        let power = arb_power(&mut rng);
        // Use sub-step-aligned durations: make both multiples of a common
        // micro-step so sub-stepping boundaries coincide.
        let h = m.max_stable_dt() / 4.0;
        let t1 = (rng.gen_range(1e-6f64..1e-3) / h).ceil() * h;
        let t2 = (rng.gen_range(1e-6f64..1e-3) / h).ceil() * h;

        let mut once = m.ambient_state();
        m.step(&mut once, &power, t1 + t2);

        let mut twice = m.ambient_state();
        m.step(&mut twice, &power, t1);
        m.step(&mut twice, &power, t2);

        // Explicit Euler re-derives its sub-step size per call, so the
        // split and combined runs integrate with different h; their
        // first-order errors differ by O(h/τ) per step. The property we
        // actually need is agreement within a modest fraction of the
        // total rise (catches instability and sign errors).
        let scale = (once.peak() - m.ambient()).max(1e-6);
        assert!(
            once.linf_distance(&twice) < 0.2 * scale + 1e-7,
            "case {case}: once {} vs twice {}",
            once.peak(),
            twice.peak()
        );
    }
}

/// The hottest cell is always one with power, or adjacent to heat —
/// never a far corner (maximum principle).
#[test]
fn maximum_sits_on_a_source() {
    let m = model();
    for cell in 0..16 {
        let mut power = vec![0.0; 16];
        power[cell] = 1e-3;
        let ss = m.steady_state(&power);
        assert_eq!(ss.argmax(), cell);
    }
}

/// States never drop below ambient under non-negative power.
#[test]
fn no_subcooling() {
    let mut rng = StdRng::seed_from_u64(0xD4);
    let m = model();
    for case in 0..CASES {
        let power = arb_power(&mut rng);
        let dt = rng.gen_range(1e-7f64..1e-2);
        let mut s = m.ambient_state();
        m.step(&mut s, &power, dt);
        assert!(s.min() >= m.ambient() - 1e-9, "case {case}");
        let ss = m.steady_state(&power);
        assert!(ss.min() >= m.ambient() - 1e-6, "case {case}");
    }
}

/// Pearson correlation of a map with itself is 1; scaling preserves it.
#[test]
fn correlation_sanity() {
    let mut rng = StdRng::seed_from_u64(0xD5);
    let m = model();
    let mut checked = 0;
    for case in 0..CASES {
        let power = arb_power(&mut rng);
        if !power.iter().any(|&p| p > 1e-5) {
            continue;
        }
        let ss = m.steady_state(&power);
        // Need spatial variation for correlation to be defined.
        if ss.stddev() <= 1e-9 {
            continue;
        }
        checked += 1;
        assert!((ss.pearson(&ss) - 1.0).abs() < 1e-9, "case {case}");
        let mut scaled = ThermalState::from_vec(ss.temps().iter().map(|t| t * 2.0 + 5.0).collect());
        assert!((ss.pearson(&scaled) - 1.0).abs() < 1e-9, "case {case}");
        scaled.scale(-1.0);
        assert!((ss.pearson(&scaled) + 1.0).abs() < 1e-9, "case {case}");
    }
    assert!(
        checked > CASES / 2,
        "most cases must be checkable, got {checked}"
    );
}
