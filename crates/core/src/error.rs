//! The workspace-wide error type.
//!
//! Every fallible operation reachable through the [`Session`] façade
//! reports failure as a [`TadfaError`] instead of panicking: invalid
//! analysis parameters, degenerate geometry, unknown policy names, and
//! allocation failures all flow through one `Result` channel.
//!
//! Analysis *outcomes* that the paper treats as information — most
//! importantly non-convergence of the fixpoint ("the thermal state of
//! the program may be too difficult to predict at compile time", §4) —
//! are **not** errors; they are reported as data via
//! [`Convergence`](crate::Convergence) on a successful result.
//!
//! [`Session`]: crate::Session

use std::error::Error;
use std::fmt;
use tadfa_regalloc::RegAllocError;
use tadfa_thermal::ThermalError;

/// Errors produced by the tadfa workspace.
#[derive(Clone, PartialEq, Debug)]
pub enum TadfaError {
    /// A numeric analysis parameter failed validation.
    InvalidConfig {
        /// The offending parameter, e.g. `"delta"`.
        param: &'static str,
        /// The rejected value.
        value: f64,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// A register-file floorplan with zero cells was requested.
    EmptyFloorplan {
        /// Requested rows.
        rows: usize,
        /// Requested columns.
        cols: usize,
    },
    /// An analysis grid with zero points was requested.
    EmptyGrid {
        /// Requested rows.
        rows: usize,
        /// Requested columns.
        cols: usize,
    },
    /// The analysis grid is finer than the physical register file in at
    /// least one dimension.
    GridTooFine {
        /// Requested analysis rows.
        rows: usize,
        /// Requested analysis columns.
        cols: usize,
        /// Physical rows.
        phys_rows: usize,
        /// Physical columns.
        phys_cols: usize,
    },
    /// A thermal state was offered to a grid of a different size.
    StateSizeMismatch {
        /// Points the grid expects.
        expected: usize,
        /// Points the state has.
        got: usize,
    },
    /// No built-in assignment policy has the given name.
    UnknownPolicy(String),
    /// A batch item was abandoned because the caller's deadline passed
    /// before a worker could start it. Items already finished keep
    /// their (deterministic) results; only the unstarted remainder
    /// reports this error.
    DeadlineExceeded,
    /// The session's assignment policy was installed as an object and
    /// cannot be recreated per engine worker; carries the policy's
    /// name. Use a named policy or a custom
    /// [`PolicyFactory`](crate::engine::PolicyFactory).
    UnsharablePolicy(String),
    /// A function containing `call` instructions was offered to a
    /// single-function entry point. Calls are resolved against callee
    /// summaries, which only the module-level analysis
    /// ([`Session::analyze_module`](crate::Session::analyze_module),
    /// [`Engine::analyze_module`](crate::engine::Engine::analyze_module))
    /// computes.
    CallsRequireModule {
        /// The function containing the call.
        function: String,
        /// The callee it invokes.
        callee: String,
    },
    /// A call-aware analysis was constructed without a summary for one
    /// of its callees — the bottom-up order was violated (internal
    /// misuse; the module entry points always summarise callees first).
    MissingSummary {
        /// The caller being analysed.
        function: String,
        /// The callee whose summary is missing.
        callee: String,
    },
    /// Module-level IR verification failed (unknown callee, call arity
    /// mismatch, recursive call cycle, or a per-function check).
    Verify(tadfa_ir::VerifyError),
    /// Register allocation failed.
    Alloc(RegAllocError),
    /// Thermal-model construction or validation failed.
    Thermal(ThermalError),
}

impl fmt::Display for TadfaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TadfaError::InvalidConfig {
                param,
                value,
                reason,
            } => {
                write!(f, "invalid config: {param} = {value}: {reason}")
            }
            TadfaError::EmptyFloorplan { rows, cols } => {
                write!(f, "empty floorplan: {rows}x{cols} has no cells")
            }
            TadfaError::EmptyGrid { rows, cols } => {
                write!(f, "empty analysis grid: {rows}x{cols} has no points")
            }
            TadfaError::GridTooFine {
                rows,
                cols,
                phys_rows,
                phys_cols,
            } => {
                write!(
                    f,
                    "analysis grid {rows}x{cols} finer than physical {phys_rows}x{phys_cols}"
                )
            }
            TadfaError::StateSizeMismatch { expected, got } => {
                write!(f, "thermal state has {got} points, grid expects {expected}")
            }
            TadfaError::UnknownPolicy(name) => {
                write!(f, "unknown assignment policy '{name}'")
            }
            TadfaError::DeadlineExceeded => {
                write!(f, "deadline exceeded before the item was started")
            }
            TadfaError::UnsharablePolicy(name) => {
                write!(
                    f,
                    "policy '{name}' was installed as an object and cannot be \
                     recreated per engine worker; use a named policy or a \
                     custom PolicyFactory"
                )
            }
            TadfaError::CallsRequireModule { function, callee } => {
                write!(
                    f,
                    "function '@{function}' calls '@{callee}'; analyze it \
                     through a module entry point so callees are summarised"
                )
            }
            TadfaError::MissingSummary { function, callee } => {
                write!(
                    f,
                    "no summary for '@{callee}' while analysing '@{function}' \
                     (callees must be summarised bottom-up first)"
                )
            }
            TadfaError::Verify(e) => write!(f, "module verification failed: {e}"),
            TadfaError::Alloc(e) => write!(f, "register allocation failed: {e}"),
            TadfaError::Thermal(e) => write!(f, "thermal model rejected: {e}"),
        }
    }
}

impl Error for TadfaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TadfaError::Verify(e) => Some(e),
            TadfaError::Alloc(e) => Some(e),
            TadfaError::Thermal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RegAllocError> for TadfaError {
    fn from(e: RegAllocError) -> TadfaError {
        TadfaError::Alloc(e)
    }
}

impl From<ThermalError> for TadfaError {
    fn from(e: ThermalError) -> TadfaError {
        TadfaError::Thermal(e)
    }
}

impl From<tadfa_ir::VerifyError> for TadfaError {
    fn from(e: tadfa_ir::VerifyError) -> TadfaError {
        TadfaError::Verify(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_parameter() {
        let e = TadfaError::InvalidConfig {
            param: "delta",
            value: -1.0,
            reason: "must be positive",
        };
        let s = e.to_string();
        assert!(s.contains("delta") && s.contains("must be positive"), "{s}");
    }

    #[test]
    fn alloc_errors_convert_and_chain() {
        let e: TadfaError = RegAllocError::TooFewRegisters { available: 1 }.into();
        assert!(matches!(e, TadfaError::Alloc(_)));
        assert!(e.to_string().contains("too small"));
        assert!(e.source().is_some());
    }

    #[test]
    fn interprocedural_errors_name_both_functions() {
        let e = TadfaError::CallsRequireModule {
            function: "main".into(),
            callee: "leaf".into(),
        };
        assert!(e.to_string().contains("@main") && e.to_string().contains("@leaf"));
        let e = TadfaError::MissingSummary {
            function: "main".into(),
            callee: "leaf".into(),
        };
        assert!(e.to_string().contains("@leaf"));
        let e: TadfaError = tadfa_ir::VerifyError::UnknownCallee {
            function: "main".into(),
            callee: "ghost".into(),
        }
        .into();
        assert!(matches!(e, TadfaError::Verify(_)));
        assert!(e.to_string().contains("@ghost"), "{e}");
        assert!(e.source().is_some());
    }

    #[test]
    fn geometry_errors_carry_dimensions() {
        let e = TadfaError::GridTooFine {
            rows: 16,
            cols: 16,
            phys_rows: 8,
            phys_cols: 8,
        };
        assert!(e.to_string().contains("16x16"));
        assert!(e.to_string().contains("8x8"));
        let e = TadfaError::EmptyFloorplan { rows: 0, cols: 8 };
        assert!(e.to_string().contains("0x8"));
    }
}
