//! Seeded random program generator with controllable register pressure.
//!
//! Two uses in the reproduction:
//!
//! * the §2 caveat experiment (E2) needs programs whose register pressure
//!   sweeps from a few registers to the whole file, to show the
//!   chessboard policy degrading;
//! * the §4 convergence discussion (E3) needs "irregular data usage"
//!   programs that stress the thermal DFA's fixpoint.
//!
//! Generated programs always terminate (loops are counted with fixed
//! trip counts), always verify, and are deterministic per seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tadfa_ir::{Function, FunctionBuilder, VReg};

/// Generator configuration.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct GeneratorConfig {
    /// RNG seed; same seed → identical program.
    pub seed: u64,
    /// Number of code segments (straight-line / diamond / loop).
    pub segments: usize,
    /// Expressions emitted per segment.
    pub exprs_per_segment: usize,
    /// Target register pressure: this many accumulators stay live from
    /// entry to the final sum.
    pub pressure: usize,
    /// How many of the segments are counted loops.
    pub loops: usize,
    /// Trip count of each generated loop.
    pub trip_count: i64,
    /// Whether to sprinkle memory traffic through a scratch slot.
    pub memory: bool,
    /// Number of "hot" accumulators that receive skewed traffic
    /// (0 = uniform traffic). Real programs concentrate accesses on a few
    /// loop-carried variables; this knob reproduces that, which is what
    /// makes assignment policy choices thermally visible (§2).
    pub hot_vars: usize,
    /// How much more often hot accumulators are touched than cold ones
    /// (odds multiplier; ignored when `hot_vars == 0`).
    pub hot_weight: u32,
}

impl Default for GeneratorConfig {
    fn default() -> GeneratorConfig {
        GeneratorConfig {
            seed: 0xDAC_2009,
            segments: 6,
            exprs_per_segment: 8,
            pressure: 8,
            loops: 2,
            trip_count: 40,
            memory: false,
            hot_vars: 0,
            hot_weight: 8,
        }
    }
}

/// Generates a random, terminating, verifier-clean function.
///
/// The program keeps `pressure` accumulators live throughout: every
/// segment updates a rotating subset of them, and the epilogue folds them
/// all into the return value, so liveness cannot shrink the set.
///
/// # Panics
///
/// Panics if `pressure` is zero.
pub fn generate(config: &GeneratorConfig) -> Function {
    assert!(config.pressure > 0, "pressure must be at least 1");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = FunctionBuilder::new(format!("rand_{:x}", config.seed));
    let p0 = b.param();
    let p1 = b.param();

    // Accumulator pool: the live set that defines register pressure.
    let mut pool: Vec<VReg> = Vec::with_capacity(config.pressure);
    for k in 0..config.pressure {
        let init = b.iconst(rng.gen_range(-50i64..50) + k as i64);
        let seeded = if k % 2 == 0 {
            b.add(init, p0)
        } else {
            b.xor(init, p1)
        };
        pool.push(seeded);
    }

    let scratch = config.memory.then(|| b.slot("scratch", 16));

    // Pick a pool member, biased toward the hot prefix when skew is on.
    fn pick(rng: &mut StdRng, pool: &[VReg], hot_vars: usize, hot_weight: u32) -> VReg {
        if hot_vars > 0 && rng.gen_ratio(hot_weight, hot_weight + 2) {
            pool[rng.gen_range(0..hot_vars.min(pool.len()))]
        } else {
            pool[rng.gen_range(0..pool.len())]
        }
    }

    // Emit one random expression updating a pool member.
    fn emit_expr(
        b: &mut FunctionBuilder,
        rng: &mut StdRng,
        pool: &[VReg],
        target: VReg,
        hot_vars: usize,
        hot_weight: u32,
    ) {
        let a = pick(rng, pool, hot_vars, hot_weight);
        let c = pick(rng, pool, hot_vars, hot_weight);
        let t = match rng.gen_range(0..8) {
            0 => b.add(a, c),
            1 => b.sub(a, c),
            2 => b.mul(a, c),
            3 => b.and(a, c),
            4 => b.or(a, c),
            5 => b.xor(a, c),
            6 => {
                let k = b.iconst(rng.gen_range(0..8));
                b.shl(a, k)
            }
            _ => {
                let k = b.iconst(rng.gen_range(0..8));
                b.shr(a, k)
            }
        };
        b.mov_into(target, t);
    }

    let mut loops_left = config.loops;
    for seg in 0..config.segments {
        let remaining = config.segments - seg;
        let make_loop = loops_left > 0 && (loops_left >= remaining || rng.gen_bool(0.5));
        if make_loop {
            loops_left -= 1;
            let limit = b.iconst(config.trip_count);
            let header = b.new_block();
            let body = b.new_block();
            let exit = b.new_block();
            let i = b.iconst(0);
            b.jump(header);
            b.switch_to(header);
            let done = b.cmpge(i, limit);
            b.branch(done, exit, body);
            b.switch_to(body);
            for e in 0..config.exprs_per_segment {
                let target = if config.hot_vars > 0 && e % 2 == 0 {
                    pool[(seg + e) % config.hot_vars.min(pool.len())]
                } else {
                    pool[(seg + e) % pool.len()]
                };
                emit_expr(
                    &mut b,
                    &mut rng,
                    &pool.clone(),
                    target,
                    config.hot_vars,
                    config.hot_weight,
                );
            }
            if let Some(slot) = scratch {
                let idx = b.iconst(rng.gen_range(0..16));
                let v = pool[rng.gen_range(0..pool.len())];
                b.store(slot, idx, v);
                let back = b.load(slot, idx);
                b.mov_into(pool[rng.gen_range(0..pool.len())], back);
            }
            let one = b.iconst(1);
            let i2 = b.add(i, one);
            b.mov_into(i, i2);
            b.jump(header);
            b.switch_to(exit);
        } else if rng.gen_bool(0.4) {
            // Diamond: both branches update the same accumulator.
            let ca = pool[rng.gen_range(0..pool.len())];
            let cb = pool[rng.gen_range(0..pool.len())];
            let cond = b.cmplt(ca, cb);
            let then_bb = b.new_block();
            let else_bb = b.new_block();
            let join = b.new_block();
            b.branch(cond, then_bb, else_bb);
            let target = pool[seg % pool.len()];
            b.switch_to(then_bb);
            for _ in 0..config.exprs_per_segment / 2 {
                emit_expr(
                    &mut b,
                    &mut rng,
                    &pool.clone(),
                    target,
                    config.hot_vars,
                    config.hot_weight,
                );
            }
            b.jump(join);
            b.switch_to(else_bb);
            for _ in 0..config.exprs_per_segment / 2 {
                emit_expr(
                    &mut b,
                    &mut rng,
                    &pool.clone(),
                    target,
                    config.hot_vars,
                    config.hot_weight,
                );
            }
            b.jump(join);
            b.switch_to(join);
        } else {
            for e in 0..config.exprs_per_segment {
                let target = pool[(seg * 3 + e) % pool.len()];
                emit_expr(
                    &mut b,
                    &mut rng,
                    &pool.clone(),
                    target,
                    config.hot_vars,
                    config.hot_weight,
                );
            }
        }
    }

    // Epilogue: fold the whole pool so every accumulator stays live.
    let mut acc = pool[0];
    for &v in &pool[1..] {
        acc = b.add(acc, v);
    }
    b.ret(Some(acc));
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tadfa_dataflow::Liveness;
    use tadfa_ir::{Cfg, Verifier};
    use tadfa_sim::Interpreter;

    #[test]
    fn generated_programs_verify_and_terminate() {
        for seed in 0..20u64 {
            let f = generate(&GeneratorConfig {
                seed,
                ..GeneratorConfig::default()
            });
            assert!(Verifier::new(&f).run().is_ok(), "seed {seed}: {f}");
            let r = Interpreter::new(&f)
                .with_fuel(5_000_000)
                .run(&[3, 7])
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(r.cycles > 0);
        }
    }

    #[test]
    fn same_seed_same_program() {
        let c = GeneratorConfig::default();
        let f1 = generate(&c);
        let f2 = generate(&c);
        assert_eq!(f1.to_string(), f2.to_string());
        let r1 = Interpreter::new(&f1).run(&[1, 2]).unwrap();
        let r2 = Interpreter::new(&f2).run(&[1, 2]).unwrap();
        assert_eq!(r1.ret, r2.ret);
    }

    #[test]
    fn different_seeds_differ() {
        let f1 = generate(&GeneratorConfig {
            seed: 1,
            ..GeneratorConfig::default()
        });
        let f2 = generate(&GeneratorConfig {
            seed: 2,
            ..GeneratorConfig::default()
        });
        assert_ne!(f1.to_string(), f2.to_string());
    }

    #[test]
    fn pressure_knob_controls_liveness() {
        for &target in &[2usize, 6, 12, 20] {
            let f = generate(&GeneratorConfig {
                pressure: target,
                ..GeneratorConfig::default()
            });
            let cfg = Cfg::compute(&f);
            let live = Liveness::compute(&f, &cfg);
            let measured = live.max_pressure(&f);
            assert!(measured >= target, "target {target}, measured {measured}");
        }
    }

    #[test]
    fn pressure_increases_monotonically_with_knob() {
        let measure = |p: usize| {
            let f = generate(&GeneratorConfig {
                pressure: p,
                ..GeneratorConfig::default()
            });
            let cfg = Cfg::compute(&f);
            Liveness::compute(&f, &cfg).max_pressure(&f)
        };
        assert!(measure(4) < measure(16));
    }

    #[test]
    fn loops_requested_loops_delivered() {
        let f = generate(&GeneratorConfig {
            loops: 3,
            segments: 5,
            ..GeneratorConfig::default()
        });
        let cfg = Cfg::compute(&f);
        let dom = tadfa_ir::DomTree::compute(&f, &cfg);
        let li = tadfa_ir::LoopInfo::compute(&f, &cfg, &dom);
        assert_eq!(li.loops().len(), 3);
    }

    #[test]
    fn memory_variant_runs() {
        let f = generate(&GeneratorConfig {
            memory: true,
            ..GeneratorConfig::default()
        });
        assert!(Verifier::new(&f).run().is_ok());
        let r = Interpreter::new(&f)
            .with_fuel(5_000_000)
            .run(&[5, 9])
            .unwrap();
        assert!(r.cycles > 0);
        assert_eq!(f.slots().len(), 1);
    }

    #[test]
    #[should_panic(expected = "pressure must be at least 1")]
    fn zero_pressure_rejected() {
        let _ = generate(&GeneratorConfig {
            pressure: 0,
            ..GeneratorConfig::default()
        });
    }
}
