//! **E2 — the §2 caveat.** "The chessboard policy only works if the
//! program only uses half of the registers in the RF. Indeed, if register
//! pressure is high, then all registers will be used … thermal gradients
//! may still appear."
//!
//! Sweeps generated programs across register-pressure levels and reports
//! gradient/σ per policy: chessboard's advantage should collapse as
//! pressure approaches (and passes) half the file.
//!
//! Run: `cargo run -p tadfa-bench --bin pressure_sweep`

use tadfa_bench::{default_session, evaluate_policy, k2, k3, print_table};
use tadfa_workloads::{pressure_ladder, Workload};

fn main() {
    let mut session = default_session();
    let half = session.register_file().num_regs() / 2;
    let levels = [4usize, 8, 16, 24, 32, 40, 48];

    println!("== E2: chessboard degradation under register pressure ==");
    println!(
        "RF: {} registers (half = {half}); generated programs, pressure ladder {:?}\n",
        session.register_file().num_regs(),
        levels
    );

    let ladder = pressure_ladder(&levels, 2009);
    let policies = ["first-free", "chessboard", "coldest-first"];

    let mut rows = Vec::new();
    for (pressure, func) in &ladder {
        let w = Workload {
            name: "generated",
            description: "pressure ladder",
            func: func.clone(),
            args: vec![3, 7],
            expected: None,
            preload: vec![],
        };
        let mut row = vec![pressure.to_string()];
        for p in policies {
            match evaluate_policy(&mut session, &w, p, 7) {
                Ok(eval) => {
                    row.push(k2(eval.measured_stats.peak));
                    row.push(k3(eval.measured_stats.stddev));
                }
                Err(e) => {
                    row.push(format!("err:{e}"));
                    row.push(String::new());
                }
            }
        }
        rows.push(row);
    }

    print_table(
        &[
            "pressure", "ff peak", "ff sigma", "cb peak", "cb sigma", "cf peak", "cf sigma",
        ],
        &rows,
    );

    println!(
        "\nexpected shape: chessboard sigma ~= uniform while pressure <= {half}, \
         then rises toward first-free as all cells fill (the paper's caveat); \
         coldest-first keeps spreading without the half-file restriction."
    );
}
