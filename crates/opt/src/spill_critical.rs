//! Spilling critical variables — "for the purposes of thermal management,
//! the greatest benefit will be achieved by spilling these 'critical'
//! variables to memory" (§4).
//!
//! Mechanically this reuses the allocator's spill rewriter; the thermal
//! twist is *which* variables get spilled: the hottest ones from the
//! [`CriticalSet`](tadfa_core::CriticalSet), not the allocator's
//! furthest-end heuristic. Spilled variables stop heating the register
//! file entirely (their traffic moves to memory), at the cost of the
//! inserted load/store instructions.

use tadfa_ir::{Function, VReg};
use tadfa_regalloc::rewrite_spills;

/// Spills up to `max_vars` of the given (hottest-first) critical
/// variables. Returns `(variables spilled, instructions inserted)`.
///
/// Variables are taken in the given order, so pass
/// [`CriticalSet::critical`](tadfa_core::CriticalSet::critical) or
/// [`CriticalSet::top`](tadfa_core::CriticalSet::top) directly.
pub fn spill_critical_variables(
    func: &mut Function,
    critical: &[VReg],
    max_vars: usize,
) -> (usize, usize) {
    let chosen: Vec<VReg> = critical.iter().copied().take(max_vars).collect();
    if chosen.is_empty() {
        return (0, 0);
    }
    let inserted = rewrite_spills(func, &chosen);
    (chosen.len(), inserted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tadfa_ir::{FunctionBuilder, Verifier};
    use tadfa_sim::Interpreter;

    fn sum_loop() -> (Function, VReg) {
        let mut b = FunctionBuilder::new("sum");
        let n = b.param();
        let h = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let acc = b.iconst(0);
        let i = b.iconst(0);
        b.jump(h);
        b.switch_to(h);
        let done = b.cmpge(i, n);
        b.branch(done, exit, body);
        b.switch_to(body);
        let acc2 = b.add(acc, i);
        let one = b.iconst(1);
        let i2 = b.add(i, one);
        b.mov_into(acc, acc2);
        b.mov_into(i, i2);
        b.jump(h);
        b.switch_to(exit);
        b.ret(Some(acc));
        (b.finish(), acc)
    }

    #[test]
    fn spilling_preserves_semantics() {
        let (mut f, acc) = sum_loop();
        let before = Interpreter::new(&f).run(&[25]).unwrap();
        let (n, inserted) = spill_critical_variables(&mut f, &[acc], 4);
        assert_eq!(n, 1);
        assert!(inserted > 0);
        assert!(Verifier::new(&f).run().is_ok(), "{f}");
        let after = Interpreter::new(&f).run(&[25]).unwrap();
        assert_eq!(before.ret, after.ret);
        // Memory traffic costs cycles.
        assert!(after.cycles > before.cycles);
    }

    #[test]
    fn max_vars_caps_the_spill() {
        let (mut f, acc) = sum_loop();
        let other = tadfa_ir::VReg::new(0); // the parameter n
        let (n, _) = spill_critical_variables(&mut f, &[acc, other], 1);
        assert_eq!(n, 1);
        assert_eq!(f.slots().len(), 1, "only one spill slot created");
    }

    #[test]
    fn empty_critical_set_is_a_no_op() {
        let (mut f, _) = sum_loop();
        let before = f.num_insts();
        let (n, inserted) = spill_critical_variables(&mut f, &[], 8);
        assert_eq!((n, inserted), (0, 0));
        assert_eq!(f.num_insts(), before);
    }

    #[test]
    fn spilling_multiple_variables() {
        let (mut f, acc) = sum_loop();
        let n_param = tadfa_ir::VReg::new(0);
        let before = Interpreter::new(&f).run(&[10]).unwrap();
        let (count, _) = spill_critical_variables(&mut f, &[acc, n_param], 8);
        assert_eq!(count, 2);
        assert!(Verifier::new(&f).run().is_ok(), "{f}");
        let after = Interpreter::new(&f).run(&[10]).unwrap();
        assert_eq!(before.ret, after.ret);
    }
}
