//! Keeps `docs/SCENARIO_AUTHORING.md` honest against the spec reader:
//!
//! * every fenced ```toml example in the guide must load through the
//!   real parser (`parse_spec_toml`) — examples cannot rot;
//! * every section and key the reader accepts (`SPEC_FIELDS`, the
//!   parser's single source of truth) must be mentioned in the guide —
//!   new spec fields cannot land undocumented.

use std::path::Path;
use tadfa::sched::{parse_spec_toml, SPEC_FIELDS};

fn guide_text() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("docs/SCENARIO_AUTHORING.md");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Extracts the bodies of every fenced ```toml code block.
fn toml_blocks(text: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in text.lines() {
        match &mut current {
            None if line.trim_start().starts_with("```toml") => current = Some(String::new()),
            None => {}
            Some(body) => {
                if line.trim_start().starts_with("```") {
                    blocks.push(current.take().unwrap());
                } else {
                    body.push_str(line);
                    body.push('\n');
                }
            }
        }
    }
    assert!(current.is_none(), "unterminated ```toml fence in guide");
    blocks
}

/// Every ```toml example in the authoring guide parses and validates.
#[test]
fn every_example_block_in_the_guide_parses() {
    let text = guide_text();
    let blocks = toml_blocks(&text);
    assert!(
        blocks.len() >= 3,
        "expected ≥3 toml examples in the guide, found {}",
        blocks.len()
    );
    for (i, block) in blocks.iter().enumerate() {
        let cfg = parse_spec_toml(block, "guide-example")
            .unwrap_or_else(|e| panic!("guide example #{}: {e}\n---\n{block}", i + 1));
        assert!(!cfg.tasks.is_empty(), "guide example #{}: no tasks", i + 1);
    }
}

/// Every parser-accepted section and key is documented in the guide.
#[test]
fn every_spec_field_is_documented() {
    let text = guide_text();
    for (section, keys) in SPEC_FIELDS {
        if !section.is_empty() {
            assert!(
                text.contains(&format!("[{section}]")),
                "guide does not mention section [{section}]"
            );
        }
        for key in *keys {
            assert!(
                text.contains(&format!("`{key}`")),
                "guide does not document key '{key}' of section [{section}]"
            );
        }
    }
}
