//! Simulator error types.

use std::error::Error;
use std::fmt;
use tadfa_ir::{BlockId, MemSlot};

/// Errors raised while executing a function.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// The argument count does not match the parameter list.
    ArgCount {
        /// Parameters expected.
        expected: usize,
        /// Arguments supplied.
        actual: usize,
    },
    /// A memory access fell outside its slot.
    MemoryOutOfBounds {
        /// The slot accessed.
        slot: MemSlot,
        /// The index used.
        index: i64,
        /// The slot's size in words.
        size: usize,
    },
    /// The cycle budget was exhausted (probable infinite loop).
    OutOfFuel {
        /// The budget that was exceeded.
        fuel: u64,
    },
    /// Execution reached a block without a terminator.
    MissingTerminator(BlockId),
    /// Execution reached a `call`; the single-function interpreter cannot
    /// execute calls — run callees individually or use the thermal
    /// module analysis, which summarizes callees instead of executing them.
    UnsupportedCall {
        /// The callee that was invoked.
        callee: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ArgCount { expected, actual } => {
                write!(f, "expected {expected} argument(s), got {actual}")
            }
            SimError::MemoryOutOfBounds { slot, index, size } => {
                write!(f, "{slot} access at index {index} outside size {size}")
            }
            SimError::OutOfFuel { fuel } => {
                write!(f, "execution exceeded the {fuel}-cycle budget")
            }
            SimError::MissingTerminator(bb) => {
                write!(f, "execution reached unterminated {bb}")
            }
            SimError::UnsupportedCall { callee } => {
                write!(f, "interpreter cannot execute call @{callee}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::ArgCount {
            expected: 2,
            actual: 0,
        };
        assert!(e.to_string().contains("expected 2"));
        let e = SimError::MemoryOutOfBounds {
            slot: MemSlot::new(1),
            index: -4,
            size: 8,
        };
        assert!(e.to_string().contains("-4"));
        let e = SimError::OutOfFuel { fuel: 100 };
        assert!(e.to_string().contains("100-cycle"));
        let e = SimError::MissingTerminator(BlockId::new(2));
        assert!(e.to_string().contains("block2"));
        let e = SimError::UnsupportedCall {
            callee: "leaf".to_string(),
        };
        assert!(e.to_string().contains("@leaf"));
    }
}
