//! # tadfa-core — thermal-aware data flow analysis (DAC 2009)
//!
//! The primary contribution of *Thermal-Aware Data Flow Analysis* (Ayala,
//! Atienza, Brisk — DAC 2009), reproduced in full:
//!
//! * [`Session`] — **the façade**: owns the register file, analysis
//!   grid, power model, configs and assignment policy once, validates
//!   everything up front ([`TadfaError`]), and runs the whole pipeline
//!   (allocate → thermal DFA → critical set) for any number of
//!   functions;
//! * [`ThermalDfa`] — the Fig. 2 fixpoint: a forward dataflow analysis
//!   whose fact is the register file's thermal state, re-estimated after
//!   every instruction until no change exceeds the user parameter δ;
//! * [`Convergence`] — the paper's explicit non-convergence signal ("if
//!   the analysis does not converge after a reasonable number of
//!   iterations … the thermal state of the program may be too difficult
//!   to predict at compile time", §4) — reported as data, never a panic;
//! * [`AnalysisGrid`] — the §3 granularity knob: the thermal state is "a
//!   discrete set of points" whose density trades accuracy for analysis
//!   time;
//! * [`CriticalSet`] — "which variables are most likely to be involved"
//!   in hot spots (§4), feeding the optimizations in `tadfa-opt`;
//! * [`PredictiveDfa`] — the pre-register-allocation predictive analysis
//!   the paper proposes as its "more ambitious possibility";
//! * [`engine`] — the parallel batch engine: an [`Engine`] shares a
//!   session's validated core ([`SessionCore`]) across a worker pool
//!   and memoises RC solves in a [`SolveCache`], with results
//!   byte-identical to the sequential session's.
//!
//! ## Quickstart
//!
//! ```
//! use tadfa_core::Session;
//!
//! // Geometry, grid, power model, policy and configs chosen once...
//! let mut session = Session::builder()
//!     .floorplan(4, 4)
//!     .policy_name("first-free", 0)
//!     .build()?;
//!
//! // ...then reused across every function analyzed.
//! let w = tadfa_workloads::fibonacci();
//! let report = session.analyze(&w.func)?;
//! assert!(report.convergence().is_converged());
//! assert!(report.peak_temperature() > report.ambient());
//! assert!(!report.critical.ranked().is_empty());
//! # Ok::<(), tadfa_core::TadfaError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
pub mod codec;
mod config;
mod critical;
mod dfa;
pub mod engine;
mod error;
mod grid;
mod predictive;
mod session;
mod summary;

pub use cache::{CacheStats, SolveCache, SpillEntry, SpillValue};
pub use config::{Convergence, MergeRule, ThermalDfaConfig};
pub use critical::{CriticalConfig, CriticalSet};
pub use dfa::{DfaScratch, ThermalDfa, ThermalDfaResult};
pub use engine::{BatchOptions, Engine, PolicyFactory, SweepCell, SweepConfig};
pub use error::TadfaError;
pub use grid::AnalysisGrid;
pub use predictive::{PlacementPrior, PredictiveConfig, PredictiveDfa, PredictiveResult};
pub use session::{ModuleReport, Session, SessionBuilder, SessionCore, ThermalReport};
pub use summary::ThermalSummary;
pub use tadfa_thermal::SolverMode;
