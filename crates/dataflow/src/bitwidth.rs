//! Bitwidth (value-range) analysis, after Stephenson et al., PLDI 2000.
//!
//! The paper (§3) uses bitwidth analysis as its complexity yardstick: "a
//! single bit per variable" (liveness) < "an interval per variable"
//! (bitwidth) < "a floorplan-aware thermal state" (the thermal DFA). We
//! implement the middle rung faithfully: a forward interval analysis with
//! widening, from which the number of significant bits per variable falls
//! out.

use serde::{Deserialize, Serialize};
use tadfa_ir::{BlockId, Cfg, Function, Opcode, VReg};

/// A signed 64-bit value interval `[lo, hi]`, with `Interval::BOTTOM`
/// denoting "no value yet" (unreached code).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Interval {
    /// The empty interval (unreached definition).
    pub const BOTTOM: Interval = Interval {
        lo: i64::MAX,
        hi: i64::MIN,
    };
    /// The full 64-bit range.
    pub const TOP: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// A single-value interval.
    pub fn point(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// An interval from explicit bounds.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` (use [`Interval::BOTTOM`] for emptiness).
    pub fn new(lo: i64, hi: i64) -> Interval {
        assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// Whether this is the empty interval.
    pub fn is_bottom(self) -> bool {
        self.lo > self.hi
    }

    /// Whether this is the full range.
    pub fn is_top(self) -> bool {
        self == Interval::TOP
    }

    /// Least upper bound (union hull).
    pub fn join(self, other: Interval) -> Interval {
        if self.is_bottom() {
            return other;
        }
        if other.is_bottom() {
            return self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Widening: bounds still moving after the iteration budget jump to
    /// the 64-bit extremes.
    pub fn widen(self, previous: Interval) -> Interval {
        if previous.is_bottom() {
            return self;
        }
        if self.is_bottom() {
            return previous;
        }
        Interval {
            lo: if self.lo < previous.lo {
                i64::MIN
            } else {
                self.lo
            },
            hi: if self.hi > previous.hi {
                i64::MAX
            } else {
                self.hi
            },
        }
    }

    /// Number of bits needed to represent every value in the interval in
    /// two's complement (including the sign bit for negative ranges).
    ///
    /// `BOTTOM` needs 0 bits; a `[0, 0]` interval needs 1.
    pub fn bits(self) -> u32 {
        if self.is_bottom() {
            return 0;
        }
        fn bits_for(v: i64) -> u32 {
            if v >= 0 {
                // Unsigned magnitude + we reserve no sign bit for
                // non-negative-only intervals handled below.
                64 - (v as u64).leading_zeros()
            } else {
                // Two's complement: need enough bits that MIN <= v.
                65 - (!(v as u64)).leading_zeros()
            }
        }
        if self.lo >= 0 {
            bits_for(self.hi).max(1)
        } else {
            // Signed: one sign bit plus magnitude bits of both ends.
            (bits_for(self.lo).max(bits_for(self.hi).saturating_add(1))).max(1)
        }
    }

    /// Corner evaluation with saturating arithmetic. Like most practical
    /// range analyses we assume computations do not wrap; a corner that
    /// would overflow saturates to the 64-bit extreme, which keeps the
    /// other bound tight (e.g. a loop counter keeps `lo = 0` even after
    /// its upper bound widens to `i64::MAX`).
    fn sat_binop(self, other: Interval, f: impl Fn(i64, i64) -> i64) -> Interval {
        if self.is_bottom() || other.is_bottom() {
            return Interval::BOTTOM;
        }
        let corners = [
            f(self.lo, other.lo),
            f(self.lo, other.hi),
            f(self.hi, other.lo),
            f(self.hi, other.hi),
        ];
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for v in corners {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Interval { lo, hi }
    }
}

fn transfer_op(op: Opcode, imm: Option<i64>, srcs: &[Interval]) -> Interval {
    match op {
        Opcode::Const => Interval::point(imm.unwrap_or(0)),
        Opcode::Mov => srcs[0],
        Opcode::Add => srcs[0].sat_binop(srcs[1], i64::saturating_add),
        Opcode::Sub => srcs[0].sat_binop(srcs[1], i64::saturating_sub),
        Opcode::Mul => srcs[0].sat_binop(srcs[1], i64::saturating_mul),
        Opcode::Div | Opcode::Rem => {
            // Conservative: division by an interval containing 0 yields 0
            // in our semantics, so the result always fits the dividend's
            // magnitude for Div; keep TOP for simplicity except the
            // common non-negative case.
            let a = srcs[0];
            let b = srcs[1];
            if a.is_bottom() || b.is_bottom() {
                Interval::BOTTOM
            } else if a.lo >= 0 && b.lo >= 0 {
                if op == Opcode::Div {
                    Interval::new(0, a.hi)
                } else {
                    // rem result in [0, max(divisor-1, 0)]; divisor 0 -> 0.
                    Interval::new(0, b.hi.saturating_sub(1).max(0))
                }
            } else {
                Interval::TOP
            }
        }
        Opcode::And => {
            let (a, b) = (srcs[0], srcs[1]);
            if a.is_bottom() || b.is_bottom() {
                Interval::BOTTOM
            } else if a.lo >= 0 && b.lo >= 0 {
                Interval::new(0, a.hi.min(b.hi))
            } else if a.lo >= 0 {
                Interval::new(0, a.hi)
            } else if b.lo >= 0 {
                Interval::new(0, b.hi)
            } else {
                Interval::TOP
            }
        }
        Opcode::Or | Opcode::Xor => {
            let (a, b) = (srcs[0], srcs[1]);
            if a.is_bottom() || b.is_bottom() {
                Interval::BOTTOM
            } else if a.lo >= 0 && b.lo >= 0 {
                // Bounded by the next all-ones mask above both maxima.
                let m = mask_above(a.hi as u64 | b.hi as u64);
                Interval::new(0, m as i64)
            } else {
                Interval::TOP
            }
        }
        Opcode::Shl => {
            let (a, b) = (srcs[0], srcs[1]);
            if a.is_bottom() || b.is_bottom() {
                Interval::BOTTOM
            } else if a.lo >= 0 && b.lo >= 0 && b.hi < 63 {
                match a.hi.checked_shl(b.hi as u32) {
                    Some(hi) if hi >= 0 => Interval::new(0, hi),
                    _ => Interval::TOP,
                }
            } else {
                Interval::TOP
            }
        }
        Opcode::Shr => {
            let (a, b) = (srcs[0], srcs[1]);
            if a.is_bottom() || b.is_bottom() {
                Interval::BOTTOM
            } else if a.lo >= 0 && b.lo >= 0 {
                Interval::new(0, a.hi >> b.lo.min(63))
            } else {
                Interval::TOP
            }
        }
        Opcode::Neg => {
            let a = srcs[0];
            if a.is_bottom() {
                Interval::BOTTOM
            } else {
                a.sat_binop(Interval::point(0), |x, _| x.saturating_neg())
            }
        }
        Opcode::Not => {
            let a = srcs[0];
            if a.is_bottom() {
                Interval::BOTTOM
            } else {
                // !x = -x - 1, monotone decreasing.
                Interval::new(!a.hi, !a.lo)
            }
        }
        Opcode::CmpEq
        | Opcode::CmpNe
        | Opcode::CmpLt
        | Opcode::CmpLe
        | Opcode::CmpGt
        | Opcode::CmpGe => Interval::new(0, 1),
        Opcode::Select => srcs[1].join(srcs[2]),
        Opcode::Load => Interval::TOP,
        Opcode::Call => Interval::TOP, // callee result unknown intraprocedurally
        Opcode::Store | Opcode::Nop => Interval::BOTTOM, // no value produced
    }
}

fn mask_above(v: u64) -> u64 {
    if v == 0 {
        0
    } else {
        u64::MAX >> v.leading_zeros()
    }
}

/// Number of solver passes after which still-moving bounds are widened.
const WIDEN_AFTER: usize = 3;

/// Result of bitwidth analysis: a value interval per virtual register at
/// each block entry, plus a per-function summary.
///
/// # Examples
///
/// ```
/// use tadfa_ir::{FunctionBuilder, Cfg};
/// use tadfa_dataflow::Bitwidth;
///
/// let mut b = FunctionBuilder::new("f");
/// let k = b.iconst(200);
/// let s = b.add(k, k);
/// b.ret(Some(s));
/// let f = b.finish();
/// let cfg = Cfg::compute(&f);
/// let bw = Bitwidth::compute(&f, &cfg);
/// assert_eq!(bw.summary(s).bits(), 9); // 400 needs 9 bits
/// ```
#[derive(Clone, Debug)]
pub struct Bitwidth {
    entry_facts: Vec<Vec<Interval>>,
    summary: Vec<Interval>,
    /// Solver passes used (diagnostic).
    pub passes: usize,
}

impl Bitwidth {
    /// Runs the forward interval fixpoint with widening.
    ///
    /// Function parameters start at `TOP` (unknown caller values); every
    /// other register starts at `BOTTOM`.
    pub fn compute(func: &Function, cfg: &Cfg) -> Bitwidth {
        let nv = func.num_vregs();
        let bottom_env = vec![Interval::BOTTOM; nv];
        let mut entry_env: Vec<Vec<Interval>> = vec![bottom_env.clone(); func.num_blocks()];
        let mut exit_env: Vec<Vec<Interval>> = vec![bottom_env.clone(); func.num_blocks()];

        let mut boundary = bottom_env.clone();
        for &p in func.params() {
            boundary[p.index()] = Interval::TOP;
        }

        let mut passes = 0;
        let mut changed = true;
        while changed {
            changed = false;
            passes += 1;
            for &bb in cfg.rpo() {
                let mut env = if bb == func.entry() {
                    boundary.clone()
                } else {
                    let mut acc = bottom_env.clone();
                    for &p in cfg.preds(bb) {
                        for (a, e) in acc.iter_mut().zip(&exit_env[p.index()]) {
                            *a = a.join(*e);
                        }
                    }
                    acc
                };
                if passes > WIDEN_AFTER {
                    for (new, old) in env.iter_mut().zip(&entry_env[bb.index()]) {
                        *new = new.widen(*old);
                    }
                }
                if env != entry_env[bb.index()] {
                    entry_env[bb.index()] = env.clone();
                    changed = true;
                }
                for &id in func.block(bb).insts() {
                    let inst = func.inst(id);
                    let srcs: Vec<Interval> = inst.uses().iter().map(|u| env[u.index()]).collect();
                    if let Some(d) = inst.def() {
                        env[d.index()] = transfer_op(inst.op, inst.imm, &srcs);
                    }
                }
                if env != exit_env[bb.index()] {
                    exit_env[bb.index()] = env;
                    changed = true;
                }
            }
            assert!(
                passes < 1000,
                "bitwidth analysis failed to stabilise — widening is broken"
            );
        }

        // Summary: union over every block exit (covers all definitions).
        let mut summary = boundary;
        for env in &exit_env {
            for (s, e) in summary.iter_mut().zip(env) {
                *s = s.join(*e);
            }
        }

        Bitwidth {
            entry_facts: entry_env,
            summary,
            passes,
        }
    }

    /// Interval of `v` on entry to `bb`.
    pub fn at_block_entry(&self, bb: BlockId, v: VReg) -> Interval {
        self.entry_facts[bb.index()][v.index()]
    }

    /// Function-wide interval of `v` (union over all program points).
    pub fn summary(&self, v: VReg) -> Interval {
        self.summary[v.index()]
    }

    /// Significant bits of `v` across the whole function.
    pub fn bits(&self, v: VReg) -> u32 {
        self.summary[v.index()].bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tadfa_ir::FunctionBuilder;

    #[test]
    fn interval_algebra() {
        let a = Interval::new(1, 5);
        let b = Interval::new(3, 9);
        assert_eq!(a.join(b), Interval::new(1, 9));
        assert_eq!(a.join(Interval::BOTTOM), a);
        assert_eq!(Interval::BOTTOM.join(b), b);
        assert!(Interval::BOTTOM.is_bottom());
        assert!(Interval::TOP.is_top());
    }

    #[test]
    fn widen_freezes_stable_bounds() {
        let prev = Interval::new(0, 10);
        let grown = Interval::new(0, 12);
        let w = grown.widen(prev);
        assert_eq!(w.lo, 0, "stable bound kept");
        assert_eq!(w.hi, i64::MAX, "moving bound widened");
    }

    #[test]
    fn bits_computation() {
        assert_eq!(Interval::point(0).bits(), 1);
        assert_eq!(Interval::point(1).bits(), 1);
        assert_eq!(Interval::point(255).bits(), 8);
        assert_eq!(Interval::point(256).bits(), 9);
        assert_eq!(Interval::new(-1, 0).bits(), 1); // two's complement -1 fits in 1 bit? sign-only
        assert_eq!(Interval::new(-128, 127).bits(), 8);
        assert_eq!(Interval::BOTTOM.bits(), 0);
        assert_eq!(Interval::TOP.bits(), 64);
    }

    #[test]
    fn constants_and_arithmetic_propagate() {
        let mut b = FunctionBuilder::new("c");
        let k1 = b.iconst(100);
        let k2 = b.iconst(27);
        let s = b.add(k1, k2);
        let p = b.mul(s, k2);
        b.ret(Some(p));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let bw = Bitwidth::compute(&f, &cfg);
        assert_eq!(bw.summary(s), Interval::point(127));
        assert_eq!(bw.summary(p), Interval::point(127 * 27));
        assert_eq!(bw.bits(s), 7);
    }

    #[test]
    fn comparisons_are_single_bit() {
        let mut b = FunctionBuilder::new("cmp");
        let x = b.param();
        let y = b.param();
        let c = b.cmplt(x, y);
        b.ret(Some(c));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let bw = Bitwidth::compute(&f, &cfg);
        assert_eq!(bw.summary(c), Interval::new(0, 1));
        assert_eq!(bw.bits(c), 1);
    }

    #[test]
    fn params_are_unknown() {
        let mut b = FunctionBuilder::new("p");
        let x = b.param();
        b.ret(Some(x));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let bw = Bitwidth::compute(&f, &cfg);
        assert!(bw.summary(x).is_top());
    }

    #[test]
    fn loop_counter_widens_not_diverges() {
        // i grows each iteration: widening must terminate the analysis.
        let mut b = FunctionBuilder::new("l");
        let n = b.param();
        let h = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let i = b.iconst(0);
        b.jump(h);
        b.switch_to(h);
        let d = b.cmpge(i, n);
        b.branch(d, exit, body);
        b.switch_to(body);
        let one = b.iconst(1);
        let i2 = b.add(i, one);
        b.mov_into(i, i2);
        b.jump(h);
        b.switch_to(exit);
        b.ret(Some(i));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let bw = Bitwidth::compute(&f, &cfg);
        // Lower bound stays 0 (never decreases); upper bound widened.
        let iv = bw.summary(i);
        assert_eq!(iv.lo, 0);
        assert_eq!(iv.hi, i64::MAX);
        assert!(bw.passes < 1000);
    }

    #[test]
    fn select_joins_arms_and_masking_bounds() {
        let mut b = FunctionBuilder::new("s");
        let c = b.param();
        let x = b.param();
        let k255 = b.iconst(255);
        let masked = b.and(x, k255);
        let k10 = b.iconst(10);
        let sel = b.select(c, masked, k10);
        b.ret(Some(sel));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let bw = Bitwidth::compute(&f, &cfg);
        assert_eq!(bw.summary(masked), Interval::new(0, 255));
        assert_eq!(bw.summary(sel), Interval::new(0, 255));
        assert_eq!(bw.bits(sel), 8);
    }

    #[test]
    fn shifts_bound_when_safe() {
        let mut b = FunctionBuilder::new("sh");
        let k3 = b.iconst(3);
        let k5 = b.iconst(5);
        let l = b.shl(k5, k3);
        let r = b.shr(l, k3);
        b.ret(Some(r));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let bw = Bitwidth::compute(&f, &cfg);
        assert_eq!(bw.summary(l), Interval::new(0, 40));
        assert_eq!(bw.summary(r), Interval::new(0, 5));
    }
}
