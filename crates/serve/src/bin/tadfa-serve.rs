//! `tadfa-serve` — the persistent analysis service.
//!
//! Loads every scenario spec in a directory once, prepares a warm
//! engine + solve cache per scenario, and serves `run-scenario` /
//! `analyze` / `analyze-module` / `stats` requests over the
//! JSON-lines protocol until
//! EOF or a `shutdown` request. Pipe mode (stdin/stdout, the default)
//! is what CI and `tadfa-load --spawn` drive; `--listen` serves TCP.
//!
//! ```text
//! tadfa-serve [--scenarios <dir>] [--pipe | --listen <addr:port>]
//!             [--queue-capacity N] [--service-workers N] [--engine-workers N]
//!             [--cache-dir <dir>] [--warm-golden <dir>] [--shed-after-ms N]
//!             [--reactor-shards N] [--idle-sleep-us N]
//!             [--max-line-bytes N] [--stall-timeout-ms N]
//!             [--compact-cache]
//! ```
//!
//! `--cache-dir` turns on the persistent solve-cache tier (preload at
//! startup, spill new entries per request); `--warm-golden` runs every
//! scenario once at startup and fingerprint-verifies it against its
//! committed golden; `--shed-after-ms` is the queueing-latency SLO
//! beyond which waiting requests are shed instead of computed;
//! `--idle-sleep-us` caps the reactor shards' idle backoff;
//! `--compact-cache` (with `--cache-dir`) compacts every scenario's
//! segment directory — dropping duplicate-key records accumulated
//! across process lifetimes — and exits instead of serving.
//!
//! Exit codes: `0` clean shutdown, `2` usage or configuration error.
//! All diagnostics go to stderr — stdout is the protocol channel.

use std::path::PathBuf;
use std::process::ExitCode;
use tadfa_serve::{Server, ServerConfig};

const USAGE: &str = "\
tadfa-serve — persistent thermal-scenario analysis service

USAGE:
    tadfa-serve [--scenarios <dir>] [--pipe | --listen <addr:port>]
                [--queue-capacity N] [--service-workers N] [--engine-workers N]
                [--cache-dir <dir>] [--warm-golden <dir>] [--shed-after-ms N]
                [--reactor-shards N] [--idle-sleep-us N]
                [--max-line-bytes N] [--stall-timeout-ms N] [--compact-cache]

Loads every scenarios/*.toml|json spec once, then serves JSON-lines
requests ({\"id\": 1, \"op\": \"run-scenario\", \"scenario\": \"<stem>\"},
analyze, analyze-module, stats, reload, ping, shutdown) against warm
engines. Pipe mode (the
default) speaks the protocol on stdin/stdout; --listen serves TCP
through reactor shards that scale to thousands of connections.
Requests beyond --queue-capacity are rejected with a queue-full error,
never buffered unboundedly; requests older than --shed-after-ms are
shed with an slo-shed error instead of computed late. --cache-dir
persists every solve-cache entry to checksummed segment files and
preloads them at the next start; --warm-golden <dir> runs each
scenario once at startup and refuses to serve on any fingerprint
mismatch with the committed goldens. --idle-sleep-us caps the reactor
shards' idle-sleep backoff (lower = snappier wake after a lull,
higher = less idle CPU). --compact-cache rewrites every scenario's
segment directory under --cache-dir dropping duplicate-key records,
then exits without serving (safe: a crash mid-compaction never loses
pre-compaction data).";

fn main() -> ExitCode {
    let mut cfg = ServerConfig::default();
    let mut listen: Option<String> = None;
    let mut pipe = false;
    let mut compact = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let usize_arg = |name: &str, v: Option<&String>| -> Result<usize, String> {
        v.ok_or_else(|| format!("{name} needs a value"))?
            .parse::<usize>()
            .map_err(|_| format!("{name} needs a non-negative integer"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scenarios" => match it.next() {
                Some(dir) => cfg.scenario_dir = PathBuf::from(dir),
                None => return usage_error("--scenarios needs a directory"),
            },
            "--pipe" => pipe = true,
            "--listen" => match it.next() {
                Some(addr) => listen = Some(addr.clone()),
                None => return usage_error("--listen needs an <addr:port>"),
            },
            "--queue-capacity" => match usize_arg(arg, it.next()) {
                Ok(v) => cfg.queue_capacity = v,
                Err(e) => return usage_error(&e),
            },
            "--service-workers" => match usize_arg(arg, it.next()) {
                Ok(v) => cfg.service_workers = v,
                Err(e) => return usage_error(&e),
            },
            "--engine-workers" => match usize_arg(arg, it.next()) {
                Ok(v) => cfg.engine_workers = Some(v),
                Err(e) => return usage_error(&e),
            },
            "--cache-dir" => match it.next() {
                Some(dir) => cfg.cache_dir = Some(PathBuf::from(dir)),
                None => return usage_error("--cache-dir needs a directory"),
            },
            "--warm-golden" => match it.next() {
                Some(dir) => cfg.warm_golden = Some(PathBuf::from(dir)),
                None => return usage_error("--warm-golden needs a directory"),
            },
            "--shed-after-ms" => match usize_arg(arg, it.next()) {
                Ok(v) => cfg.shed_after_ms = Some(v as u64),
                Err(e) => return usage_error(&e),
            },
            "--reactor-shards" => match usize_arg(arg, it.next()) {
                Ok(v) => cfg.reactor_shards = v,
                Err(e) => return usage_error(&e),
            },
            "--idle-sleep-us" => match usize_arg(arg, it.next()) {
                Ok(v) => cfg.idle_sleep_us = v as u64,
                Err(e) => return usage_error(&e),
            },
            "--compact-cache" => compact = true,
            "--max-line-bytes" => match usize_arg(arg, it.next()) {
                Ok(v) => cfg.max_line_bytes = v,
                Err(e) => return usage_error(&e),
            },
            "--stall-timeout-ms" => match usize_arg(arg, it.next()) {
                Ok(v) => cfg.stall_timeout_ms = v as u64,
                Err(e) => return usage_error(&e),
            },
            "--help" | "-h" | "help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument '{other}'")),
        }
    }
    if pipe && listen.is_some() {
        return usage_error("--pipe and --listen are mutually exclusive");
    }
    if compact {
        return compact_cache(&cfg);
    }

    let server = match Server::load(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tadfa-serve: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "tadfa-serve: loaded {} scenario(s) from {}: {}",
        server.scenario_names().len(),
        cfg.scenario_dir.display(),
        server.scenario_names().join(", ")
    );

    let result = match listen {
        Some(addr) => server.run_tcp(&addr),
        None => server.run_pipe(),
    };
    if let Err(e) = result {
        eprintln!("tadfa-serve: {e}");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

/// `--compact-cache`: compact every scenario segment directory under
/// `--cache-dir` and exit. Runs *instead of* serving — compaction must
/// never race a live appender on the same directory.
fn compact_cache(cfg: &ServerConfig) -> ExitCode {
    let Some(root) = &cfg.cache_dir else {
        return usage_error("--compact-cache needs --cache-dir");
    };
    let entries = match std::fs::read_dir(root) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("tadfa-serve: cannot read {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let mut failed = false;
    for entry in entries.flatten() {
        let dir = entry.path();
        if !dir.is_dir() {
            continue;
        }
        match tadfa_serve::persist::compact_dir(&dir) {
            Ok(r) => eprintln!(
                "tadfa-serve: compacted {}: {} unique record(s) kept, \
                 {} duplicate(s) dropped, {} corrupt skipped, {} -> 1 segment(s)",
                dir.display(),
                r.unique,
                r.duplicates,
                r.skipped,
                r.segments_before,
            ),
            Err(e) => {
                eprintln!("tadfa-serve: compaction of {} failed: {e}", dir.display());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("{message}\n\n{USAGE}");
    ExitCode::from(2)
}
