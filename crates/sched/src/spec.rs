//! Declarative scenario specs: the `tadfa` CLI's input format.
//!
//! A spec describes a whole multi-core scenario — die layout, task
//! set, mapping policy, DFA configuration — in TOML (the committed
//! `scenarios/*.toml` files) or JSON (same sections as an object of
//! objects). The build container has no crates.io access, so the TOML
//! reader here covers exactly the subset the specs use: `[section]`
//! headers, `key = value` pairs with string/number/boolean/array
//! values, and `#` comments.
//!
//! # Spec format
//!
//! ```toml
//! name = "quad-balanced"
//!
//! [floorplan]
//! cores = 4
//! rows = 8
//! cols = 8
//! coupling_resistance = 40.0   # K/W; omit for uncoupled cores
//!
//! [tasks]
//! source = "generated"         # generated | suite | files | module
//! count = 12
//! seed = 42
//! pressure = 8                 # generated only
//! arrival_period = 0.0005      # seconds between arrivals
//! length = 0.001               # seconds each task occupies its core
//! # files = ["tasks/kernel.tir"]   # files only; relative to the spec
//! # module = "tasks/prog.tir"      # module only; one task per function,
//! #                                # analyzed interprocedurally
//!
//! [schedule]
//! mapping = "thermal-balanced" # round-robin | coolest-core |
//!                              # thermal-balanced | static-shard
//! workers = 4
//!
//! [assignment]
//! policy = "first-free"
//! seed = 0
//!
//! [dfa]
//! delta = 0.01
//! max_iterations = 1000
//! merge = "max"                # max | average
//! leakage = true
//! ```
//!
//! Every key is optional except `[tasks] source` (and `files` when the
//! source is `files`); unknown sections or keys are errors, so a typo
//! cannot silently run a different scenario than the golden report was
//! recorded for.

use crate::json::{self, JsonValue};
use crate::multicore::MultiCoreFloorplan;
use crate::runner::ScenarioConfig;
use crate::task::{generated_tasks, suite_tasks, Task};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use tadfa_core::{MergeRule, SolverMode, ThermalDfaConfig};
use tadfa_thermal::RcParams;

/// A spec loading/validation failure, with context.
#[derive(Clone, PartialEq, Debug)]
pub struct SpecError {
    /// What went wrong, with enough context to fix the spec.
    pub message: String,
}

impl SpecError {
    fn new(message: impl Into<String>) -> SpecError {
        SpecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario spec error: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

/// One scalar (or array-of-scalar) spec value.
#[derive(Clone, PartialEq, Debug)]
enum SpecValue {
    Str(String),
    Num(f64),
    Bool(bool),
    List(Vec<SpecValue>),
}

/// Sections → keys → values. Top-level keys live in the `""` section.
type Sections = BTreeMap<String, BTreeMap<String, SpecValue>>;

/// Loads and validates a scenario spec from disk. The format is chosen
/// by extension (`.toml` or `.json`); task files referenced by the spec
/// are resolved relative to the spec's directory.
///
/// # Errors
///
/// Returns a [`SpecError`] describing the first I/O, syntax, or
/// validation problem.
pub fn load_spec(path: &Path) -> Result<ScenarioConfig, SpecError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SpecError::new(format!("cannot read {}: {e}", path.display())))?;
    let base = path.parent().unwrap_or_else(|| Path::new("."));
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    let sections = match ext {
        "toml" => parse_toml(&text)?,
        "json" => json_sections(&text)?,
        other => {
            return Err(SpecError::new(format!(
                "unknown spec extension '.{other}' for {} (expected .toml or .json)",
                path.display()
            )))
        }
    };
    let default_name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("scenario");
    build_config(&sections, base, default_name)
}

/// Loads every scenario spec in a directory — the resolution step the
/// `tadfa` CLI, the `tadfa-serve` service, and the `tadfa-load` client
/// all share, so they can never disagree about what "the committed
/// scenarios" means.
///
/// Non-recursive: each `*.toml` / `*.json` file directly in `dir` is
/// loaded through [`load_spec`] (subdirectories such as `golden/` are
/// ignored). Entries come back sorted by file stem, which is also the
/// key golden reports are filed under (`golden/<stem>.json`).
///
/// # Errors
///
/// Returns a [`SpecError`] for an unreadable directory, an empty spec
/// set, two specs sharing a stem (`x.toml` + `x.json` — their golden
/// reports would collide), or the first spec that fails to load.
pub fn load_spec_dir(dir: &Path) -> Result<Vec<(String, ScenarioConfig)>, SpecError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| SpecError::new(format!("cannot read spec dir {}: {e}", dir.display())))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let path = entry
            .map_err(|e| SpecError::new(format!("cannot read spec dir {}: {e}", dir.display())))?
            .path();
        if path.is_file()
            && matches!(
                path.extension().and_then(|e| e.to_str()),
                Some("toml") | Some("json")
            )
        {
            paths.push(path);
        }
    }
    let mut stemmed: Vec<(String, PathBuf)> = paths
        .into_iter()
        .map(|path| {
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("scenario")
                .to_string();
            (stem, path)
        })
        .collect();
    // Sorted by stem, not path: "foo" < "foo-bar" even though the path
    // "foo-bar.toml" < "foo.json" (`-` sorts before `.`).
    stemmed.sort();
    let mut specs: Vec<(String, ScenarioConfig)> = Vec::with_capacity(stemmed.len());
    for (stem, path) in stemmed {
        if specs.iter().any(|(name, _)| *name == stem) {
            return Err(SpecError::new(format!(
                "duplicate scenario stem '{stem}' in {} (one golden slot per stem)",
                dir.display()
            )));
        }
        specs.push((stem, load_spec(&path)?));
    }
    if specs.is_empty() {
        return Err(SpecError::new(format!(
            "no *.toml / *.json scenario specs in {}",
            dir.display()
        )));
    }
    Ok(specs)
}

// ---------------------------------------------------------------- TOML

fn parse_toml(text: &str) -> Result<Sections, SpecError> {
    let mut sections: Sections = BTreeMap::new();
    let mut current = String::new();
    sections.entry(current.clone()).or_default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let at = |msg: String| SpecError::new(format!("line {}: {msg}", lineno + 1));
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| at("unterminated section header".to_string()))?
                .trim();
            if name.is_empty() {
                return Err(at("empty section name".to_string()));
            }
            current = name.to_string();
            if sections.contains_key(&current) && !current.is_empty() {
                return Err(at(format!("duplicate section [{current}]")));
            }
            sections.entry(current.clone()).or_default();
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| at(format!("expected 'key = value', got '{line}'")))?;
        let key = key.trim().to_string();
        if key.is_empty() {
            return Err(at("empty key".to_string()));
        }
        let value = parse_toml_value(value.trim()).map_err(|e| at(e.message))?;
        let section = sections.entry(current.clone()).or_default();
        if section.insert(key.clone(), value).is_some() {
            return Err(at(format!("duplicate key '{key}'")));
        }
    }
    Ok(sections)
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_toml_value(text: &str) -> Result<SpecValue, SpecError> {
    if let Some(inner) = text.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| SpecError::new(format!("unterminated string {text}")))?;
        if inner.contains('"') {
            return Err(SpecError::new(format!("embedded quote in {text}")));
        }
        return Ok(SpecValue::Str(inner.to_string()));
    }
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| SpecError::new(format!("unterminated array {text}")))?
            .trim();
        let mut items = Vec::new();
        if !inner.is_empty() {
            for item in split_top_level(inner) {
                items.push(parse_toml_value(item.trim())?);
            }
        }
        return Ok(SpecValue::List(items));
    }
    match text {
        "true" => return Ok(SpecValue::Bool(true)),
        "false" => return Ok(SpecValue::Bool(false)),
        _ => {}
    }
    text.parse::<f64>()
        .map(SpecValue::Num)
        .map_err(|_| SpecError::new(format!("cannot parse value '{text}'")))
}

/// Splits an array body on commas outside strings (nested arrays are
/// not part of the spec subset).
fn split_top_level(body: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    for (i, c) in body.char_indices() {
        match c {
            '"' => in_string = !in_string,
            ',' if !in_string => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&body[start..]);
    parts
}

// ---------------------------------------------------------------- JSON

fn json_sections(text: &str) -> Result<Sections, SpecError> {
    let doc = json::parse(text).map_err(|e| SpecError::new(e.to_string()))?;
    let members = doc
        .as_object()
        .ok_or_else(|| SpecError::new("JSON spec must be an object"))?;
    let mut sections: Sections = BTreeMap::new();
    sections.entry(String::new()).or_default();
    // Duplicates are rejected exactly as the TOML reader rejects them —
    // a stale copy-pasted section must not silently win.
    for (key, value) in members {
        match value {
            JsonValue::Obj(inner) => {
                if sections.contains_key(key) {
                    return Err(SpecError::new(format!("duplicate section \"{key}\"")));
                }
                let section = sections.entry(key.clone()).or_default();
                for (k, v) in inner {
                    if section.insert(k.clone(), json_scalar(v, k)?).is_some() {
                        return Err(SpecError::new(format!(
                            "duplicate key \"{k}\" in section \"{key}\""
                        )));
                    }
                }
            }
            other => {
                let top = sections.entry(String::new()).or_default();
                if top.insert(key.clone(), json_scalar(other, key)?).is_some() {
                    return Err(SpecError::new(format!("duplicate top-level key \"{key}\"")));
                }
            }
        }
    }
    Ok(sections)
}

fn json_scalar(v: &JsonValue, key: &str) -> Result<SpecValue, SpecError> {
    Ok(match v {
        JsonValue::Str(s) => SpecValue::Str(s.clone()),
        JsonValue::Num(n) => SpecValue::Num(*n),
        JsonValue::Bool(b) => SpecValue::Bool(*b),
        JsonValue::Arr(items) => SpecValue::List(
            items
                .iter()
                .map(|i| json_scalar(i, key))
                .collect::<Result<_, _>>()?,
        ),
        JsonValue::Null | JsonValue::Obj(_) => {
            return Err(SpecError::new(format!(
                "key '{key}': null / nested objects are not spec values"
            )))
        }
    })
}

// ----------------------------------------------------------- semantics

/// Typed access with unknown-key rejection.
struct Section<'a> {
    name: &'a str,
    entries: Option<&'a BTreeMap<String, SpecValue>>,
}

impl Section<'_> {
    fn check_keys(&self, allowed: &[&str]) -> Result<(), SpecError> {
        if let Some(entries) = self.entries {
            for key in entries.keys() {
                if !allowed.contains(&key.as_str()) {
                    return Err(SpecError::new(format!(
                        "unknown key '{key}' in [{}] (allowed: {})",
                        self.name,
                        allowed.join(", ")
                    )));
                }
            }
        }
        Ok(())
    }

    fn get(&self, key: &str) -> Option<&SpecValue> {
        self.entries.and_then(|e| e.get(key))
    }

    fn str(&self, key: &str, default: &str) -> Result<String, SpecError> {
        match self.get(key) {
            None => Ok(default.to_string()),
            Some(SpecValue::Str(s)) => Ok(s.clone()),
            Some(other) => Err(self.type_err(key, "a string", other)),
        }
    }

    fn num(&self, key: &str, default: f64) -> Result<f64, SpecError> {
        match self.get(key) {
            None => Ok(default),
            Some(SpecValue::Num(v)) => Ok(*v),
            Some(other) => Err(self.type_err(key, "a number", other)),
        }
    }

    fn usize(&self, key: &str, default: usize) -> Result<usize, SpecError> {
        let v = self.num(key, default as f64)?;
        if v < 0.0 || v.fract() != 0.0 || v > u32::MAX as f64 {
            return Err(SpecError::new(format!(
                "[{}] {key} = {v} must be a non-negative integer",
                self.name
            )));
        }
        Ok(v as usize)
    }

    fn bool(&self, key: &str, default: bool) -> Result<bool, SpecError> {
        match self.get(key) {
            None => Ok(default),
            Some(SpecValue::Bool(b)) => Ok(*b),
            Some(other) => Err(self.type_err(key, "a boolean", other)),
        }
    }

    fn str_list(&self, key: &str) -> Result<Vec<String>, SpecError> {
        match self.get(key) {
            None => Ok(Vec::new()),
            Some(SpecValue::List(items)) => items
                .iter()
                .map(|i| match i {
                    SpecValue::Str(s) => Ok(s.clone()),
                    other => Err(self.type_err(key, "an array of strings", other)),
                })
                .collect(),
            Some(other) => Err(self.type_err(key, "an array of strings", other)),
        }
    }

    fn type_err(&self, key: &str, expected: &str, got: &SpecValue) -> SpecError {
        SpecError::new(format!(
            "[{}] {key} must be {expected}, got {got:?}",
            self.name
        ))
    }
}

fn build_config(
    sections: &Sections,
    base: &Path,
    default_name: &str,
) -> Result<ScenarioConfig, SpecError> {
    for name in sections.keys() {
        if !["", "floorplan", "tasks", "schedule", "assignment", "dfa"].contains(&name.as_str()) {
            return Err(SpecError::new(format!("unknown section [{name}]")));
        }
    }
    let section = |name: &'static str| Section {
        name,
        entries: sections.get(name),
    };

    let top = Section {
        name: "top level",
        entries: sections.get(""),
    };
    top.check_keys(&["name"])?;
    let name = top.str("name", default_name)?;

    let fp = section("floorplan");
    fp.check_keys(&["cores", "rows", "cols", "coupling_resistance"])?;
    let cores = fp.usize("cores", 1)?;
    let rows = fp.usize("rows", 8)?;
    let cols = fp.usize("cols", 8)?;
    let coupling = match fp.get("coupling_resistance") {
        None => None,
        Some(SpecValue::Num(r)) => Some(*r),
        Some(other) => return Err(fp.type_err("coupling_resistance", "a number", other)),
    };
    let die = MultiCoreFloorplan::new(cores, rows, cols, RcParams::default(), coupling)
        .map_err(|e| SpecError::new(format!("[floorplan]: {e}")))?;

    let tasks_sec = section("tasks");
    tasks_sec.check_keys(&[
        "source",
        "count",
        "seed",
        "pressure",
        "arrival_period",
        "length",
        "files",
        "module",
    ])?;
    let source = tasks_sec.str("source", "")?;
    if source != "module" && tasks_sec.get("module").is_some() {
        return Err(SpecError::new(
            "[tasks] 'module' is only meaningful with source = \"module\"",
        ));
    }
    let arrival_period = tasks_sec.num("arrival_period", 5e-4)?;
    let length = tasks_sec.num("length", 1e-3)?;
    let count = tasks_sec.usize("count", 8)?;
    let mut module = None;
    let tasks: Vec<Task> = match source.as_str() {
        "generated" => generated_tasks(
            count,
            tasks_sec.usize("seed", 42)? as u64,
            tasks_sec.usize("pressure", 8)?,
            arrival_period,
            length,
        ),
        "suite" => suite_tasks(count, arrival_period, length),
        "files" => {
            let files = tasks_sec.str_list("files")?;
            if files.is_empty() {
                return Err(SpecError::new(
                    "[tasks] source = \"files\" needs a non-empty 'files' array",
                ));
            }
            let mut tasks = Vec::with_capacity(files.len());
            for (k, file) in files.iter().enumerate() {
                let path = base.join(file);
                let src = std::fs::read_to_string(&path).map_err(|e| {
                    SpecError::new(format!("cannot read task file {}: {e}", path.display()))
                })?;
                let func = tadfa_ir::parse_function(&src)
                    .map_err(|e| SpecError::new(format!("task file {}: {e}", path.display())))?;
                tasks.push(Task {
                    name: func.name().to_string(),
                    func,
                    arrival: k as f64 * arrival_period,
                    length,
                });
            }
            tasks
        }
        "module" => {
            let file = tasks_sec.str("module", "")?;
            if file.is_empty() {
                return Err(SpecError::new(
                    "[tasks] source = \"module\" needs a 'module' file path",
                ));
            }
            let path = base.join(&file);
            let src = std::fs::read_to_string(&path).map_err(|e| {
                SpecError::new(format!("cannot read module file {}: {e}", path.display()))
            })?;
            let parsed = tadfa_ir::parse_module(&src)
                .map_err(|e| SpecError::new(format!("module file {}: {e}", path.display())))?;
            // One task per function, in module order — the same order
            // the interprocedural analysis reports come back in.
            let tasks = parsed
                .functions()
                .iter()
                .enumerate()
                .map(|(k, func)| Task {
                    name: func.name().to_string(),
                    func: func.clone(),
                    arrival: k as f64 * arrival_period,
                    length,
                })
                .collect();
            module = Some(parsed);
            tasks
        }
        "" => {
            return Err(SpecError::new(
                "[tasks] source is required (generated | suite | files | module)",
            ))
        }
        other => {
            return Err(SpecError::new(format!(
                "[tasks] unknown source '{other}' (generated | suite | files | module)"
            )))
        }
    };

    let sched = section("schedule");
    sched.check_keys(&["mapping", "workers"])?;
    let mapping = sched.str("mapping", "round-robin")?;
    let workers = sched.usize("workers", 4)?;

    let assign = section("assignment");
    assign.check_keys(&["policy", "seed"])?;
    let assignment_policy = assign.str("policy", "first-free")?;
    let assignment_seed = assign.usize("seed", 0)? as u64;

    let dfa_sec = section("dfa");
    dfa_sec.check_keys(&["delta", "max_iterations", "merge", "leakage", "solver"])?;
    let defaults = ThermalDfaConfig::default();
    let merge = match dfa_sec.str("merge", "max")?.as_str() {
        "max" => MergeRule::Max,
        "average" => MergeRule::Average,
        other => {
            return Err(SpecError::new(format!(
                "[dfa] unknown merge rule '{other}' (max | average)"
            )))
        }
    };
    let solver_raw = dfa_sec.str("solver", SolverMode::default().as_str())?;
    let solver_mode = SolverMode::parse(&solver_raw).ok_or_else(|| {
        SpecError::new(format!(
            "[dfa] unknown solver mode '{solver_raw}' (exact | fast)"
        ))
    })?;
    let dfa = ThermalDfaConfig {
        delta: dfa_sec.num("delta", defaults.delta)?,
        max_iterations: dfa_sec.usize("max_iterations", defaults.max_iterations)?,
        merge,
        leakage_feedback: dfa_sec.bool("leakage", defaults.leakage_feedback)?,
        solver_mode,
        ..defaults
    };

    Ok(ScenarioConfig {
        name,
        die,
        tasks,
        mapping,
        assignment_policy,
        assignment_seed,
        dfa,
        workers,
        module,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_to_config(toml: &str) -> Result<ScenarioConfig, SpecError> {
        build_config(&parse_toml(toml)?, Path::new("."), "unnamed")
    }

    const GOOD: &str = r#"
        name = "quad"  # a comment
        [floorplan]
        cores = 4
        rows = 6
        cols = 6
        coupling_resistance = 40.0
        [tasks]
        source = "generated"
        count = 6
        seed = 9
        arrival_period = 0.0005
        length = 0.001
        [schedule]
        mapping = "coolest-core"
        workers = 2
        [assignment]
        policy = "round-robin"
        seed = 3
        [dfa]
        delta = 0.05
        merge = "average"
        leakage = false
    "#;

    #[test]
    fn toml_spec_roundtrips_every_section() {
        let cfg = parse_to_config(GOOD).unwrap();
        assert_eq!(cfg.name, "quad");
        assert_eq!(cfg.die.cores(), 4);
        assert_eq!(cfg.die.rows(), 6);
        assert_eq!(cfg.die.coupling_resistance(), Some(40.0));
        assert_eq!(cfg.tasks.len(), 6);
        assert!((cfg.tasks[2].arrival - 1e-3).abs() < 1e-15);
        assert_eq!(cfg.mapping, "coolest-core");
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.assignment_policy, "round-robin");
        assert_eq!(cfg.assignment_seed, 3);
        assert_eq!(cfg.dfa.delta, 0.05);
        assert_eq!(cfg.dfa.merge, MergeRule::Average);
        assert!(!cfg.dfa.leakage_feedback);
    }

    #[test]
    fn defaults_fill_every_optional_key() {
        let cfg = parse_to_config("[tasks]\nsource = \"suite\"\n").unwrap();
        assert_eq!(cfg.name, "unnamed");
        assert_eq!(cfg.die.cores(), 1);
        assert_eq!(cfg.die.rows(), 8);
        assert_eq!(cfg.die.coupling_resistance(), None);
        assert_eq!(cfg.tasks.len(), 8);
        assert_eq!(cfg.mapping, "round-robin");
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.assignment_policy, "first-free");
        assert_eq!(cfg.dfa.delta, ThermalDfaConfig::default().delta);
    }

    #[test]
    fn unknown_sections_keys_and_values_are_rejected() {
        assert!(parse_to_config("[bogus]\nx = 1\n").is_err());
        assert!(parse_to_config("[tasks]\nsource = \"suite\"\nbogus = 1\n").is_err());
        assert!(parse_to_config("[tasks]\nsource = \"nope\"\n").is_err());
        assert!(parse_to_config("[tasks]\n").is_err(), "source required");
        assert!(parse_to_config("[tasks]\nsource = \"files\"\n").is_err());
        assert!(parse_to_config("[tasks]\nsource = \"suite\"\ncount = 1.5\n").is_err());
        assert!(
            parse_to_config("[dfa]\nmerge = \"median\"\n[tasks]\nsource = \"suite\"\n").is_err()
        );
        assert!(parse_toml("key value\n").is_err());
        assert!(parse_toml("[unterminated\n").is_err());
        assert!(parse_toml("k = \"open\n").is_err());
        assert!(
            parse_toml("[a]\nx = 1\n[a]\ny = 2\n").is_err(),
            "duplicate section"
        );
        assert!(parse_toml("x = 1\nx = 2\n").is_err(), "duplicate key");
    }

    #[test]
    fn json_spec_parses_like_toml() {
        let json = r#"{
            "name": "duo",
            "floorplan": {"cores": 2, "rows": 4, "cols": 4},
            "tasks": {"source": "suite", "count": 3},
            "schedule": {"mapping": "static-shard", "workers": 1}
        }"#;
        let cfg = build_config(&json_sections(json).unwrap(), Path::new("."), "x").unwrap();
        assert_eq!(cfg.name, "duo");
        assert_eq!(cfg.die.cores(), 2);
        assert_eq!(cfg.tasks.len(), 3);
        assert_eq!(cfg.mapping, "static-shard");
        assert!(json_sections("[1, 2]").is_err(), "spec must be an object");
        assert!(json_sections(r#"{"tasks": {"source": null}}"#).is_err());
        // Duplicates are errors, exactly like the TOML path.
        assert!(
            json_sections(r#"{"schedule": {"mapping": "a"}, "schedule": {"mapping": "b"}}"#)
                .is_err(),
            "duplicate section"
        );
        assert!(
            json_sections(r#"{"schedule": {"mapping": "a", "mapping": "b"}}"#).is_err(),
            "duplicate key"
        );
        assert!(
            json_sections(r#"{"name": "x", "name": "y"}"#).is_err(),
            "duplicate top-level key"
        );
    }

    #[test]
    fn comments_respect_strings() {
        assert_eq!(
            strip_comment(r##"key = "a#b" # real comment"##),
            r##"key = "a#b" "##
        );
        assert_eq!(strip_comment("plain"), "plain");
    }

    #[test]
    fn spec_dir_loads_sorted_and_rejects_collisions() {
        let dir = std::env::temp_dir().join(format!("tadfa_spec_dir_{}", std::process::id()));
        std::fs::create_dir_all(dir.join("golden")).unwrap();
        std::fs::write(dir.join("b_two.toml"), "[tasks]\nsource = \"suite\"\n").unwrap();
        std::fs::write(
            dir.join("a_one.json"),
            r#"{"tasks": {"source": "suite", "count": 2}}"#,
        )
        .unwrap();
        // Subdirectories (the golden reports) are not specs.
        std::fs::write(dir.join("golden/a_one.json"), "{}").unwrap();
        // Non-spec files are ignored.
        std::fs::write(dir.join("README.md"), "notes").unwrap();
        // Stem order differs from path order here: the path
        // "b_two-x.json" sorts before "b_two.toml" ('-' < '.'), but the
        // stem "b_two" sorts before "b_two-x".
        std::fs::write(
            dir.join("b_two-x.json"),
            r#"{"tasks": {"source": "suite", "count": 1}}"#,
        )
        .unwrap();

        let specs = load_spec_dir(&dir).unwrap();
        let names: Vec<&str> = specs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a_one", "b_two", "b_two-x"], "sorted by stem");
        assert_eq!(specs[0].1.tasks.len(), 2);

        // A stem collision would make two specs fight over one golden.
        std::fs::write(dir.join("a_one.toml"), "[tasks]\nsource = \"suite\"\n").unwrap();
        assert!(load_spec_dir(&dir).unwrap_err().message.contains("a_one"));

        // An empty directory is a configuration error, not an empty Ok,
        // and so is an unreadable one.
        let empty = dir.join("none");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(load_spec_dir(&empty).unwrap_err().message.contains("no "));
        assert!(load_spec_dir(&dir.join("missing")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn module_tasks_load_in_module_order_and_keep_the_module() {
        let dir = std::env::temp_dir().join("tadfa_spec_module_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("prog.tir"),
            "func @leaf(%0) {\nblock0:\n  %1 = mul %0, %0\n  ret %1\n}\n\n\
             func @main(%0) {\nblock0:\n  %1 = call @leaf(%0)\n  ret %1\n}\n",
        )
        .unwrap();
        let toml = "[tasks]\nsource = \"module\"\nmodule = \"prog.tir\"\narrival_period = 0.001\n";
        let cfg = build_config(&parse_toml(toml).unwrap(), &dir, "x").unwrap();
        assert_eq!(cfg.tasks.len(), 2);
        assert_eq!(cfg.tasks[0].name, "leaf");
        assert_eq!(cfg.tasks[1].name, "main");
        assert!((cfg.tasks[1].arrival - 0.001).abs() < 1e-15);
        let module = cfg.module.as_ref().expect("module kept for analysis");
        assert_eq!(module.len(), 2);

        // A module source without a path, and a 'module' key on any
        // other source, are both spec errors.
        let missing = "[tasks]\nsource = \"module\"\n";
        assert!(build_config(&parse_toml(missing).unwrap(), &dir, "x").is_err());
        let stray = "[tasks]\nsource = \"suite\"\nmodule = \"prog.tir\"\n";
        assert!(build_config(&parse_toml(stray).unwrap(), &dir, "x").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_tasks_load_through_the_ir_parser() {
        let dir = std::env::temp_dir().join("tadfa_spec_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("t.tir"),
            "func @double(%0) {\nblock0:\n  %1 = add %0, %0\n  ret %1\n}\n",
        )
        .unwrap();
        let toml = "[tasks]\nsource = \"files\"\nfiles = [\"t.tir\"]\n";
        let cfg = build_config(&parse_toml(toml).unwrap(), &dir, "x").unwrap();
        assert_eq!(cfg.tasks.len(), 1);
        assert_eq!(cfg.tasks[0].name, "double");
        std::fs::remove_dir_all(&dir).ok();
    }
}
