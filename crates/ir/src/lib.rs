//! # tadfa-ir — compiler intermediate representation
//!
//! A phi-free three-address IR with the analyses every other `tadfa` crate
//! builds on: control-flow graphs, dominators, natural loops, a textual
//! parser/printer, and a verifier.
//!
//! This crate is the "compiler substrate" of the reproduction of
//! *Thermal-Aware Data Flow Analysis* (Ayala, Atienza, Brisk — DAC 2009):
//! the paper assumes an ordinary compiler IR on which a thermal dataflow
//! analysis can run; this is that IR.
//!
//! ## Quick tour
//!
//! ```
//! use tadfa_ir::{FunctionBuilder, Cfg, DomTree, LoopInfo, Verifier};
//!
//! // f(n) = sum of 0..n
//! let mut b = FunctionBuilder::new("sum");
//! let n = b.param();
//! let header = b.new_block();
//! let body = b.new_block();
//! let exit = b.new_block();
//! let acc = b.iconst(0);
//! let i = b.iconst(0);
//! b.jump(header);
//! b.switch_to(header);
//! let done = b.cmpge(i, n);
//! b.branch(done, exit, body);
//! b.switch_to(body);
//! let acc2 = b.add(acc, i);
//! let one = b.iconst(1);
//! let i2 = b.add(i, one);
//! b.mov_into(acc, acc2);
//! b.mov_into(i, i2);
//! b.jump(header);
//! b.switch_to(exit);
//! b.ret(Some(acc));
//! let f = b.finish();
//!
//! Verifier::new(&f).run()?;
//! let cfg = Cfg::compute(&f);
//! let dom = DomTree::compute(&f, &cfg);
//! let loops = LoopInfo::compute(&f, &cfg, &dom);
//! assert_eq!(loops.loops().len(), 1);
//!
//! // Round-trip through text.
//! let reparsed = tadfa_ir::parse_function(&f.to_string()).unwrap();
//! assert_eq!(reparsed.num_insts(), f.num_insts());
//! # Ok::<(), tadfa_ir::VerifyError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod callgraph;
mod cfg;
mod dom;
mod entities;
mod function;
mod inst;
mod loops;
mod module;
mod parser;
mod printer;
mod verifier;

pub use builder::FunctionBuilder;
pub use callgraph::CallGraph;
pub use cfg::Cfg;
pub use dom::DomTree;
pub use entities::{BlockId, InstId, MemSlot, PReg, VReg};
pub use function::{Block, Function, SlotInfo};
pub use inst::{Inst, Opcode, Terminator, ALL_OPCODES};
pub use loops::{LoopInfo, NaturalLoop};
pub use module::{DuplicateFunction, Module};
pub use parser::{parse_function, parse_module, ParseError};
pub use verifier::{verify_module, verify_module_all, Verifier, VerifyError};
