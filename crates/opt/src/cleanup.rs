//! Classic cleanup passes: single-definition constant propagation and
//! dead-code elimination.
//!
//! These are not thermal optimizations themselves, but the thermal passes
//! manufacture garbage — register promotion leaves dead `const 0` index
//! computations, splitting leaves single-use copies — and dead
//! instructions still heat the register file in the model (every def is
//! a write). Cleaning them up is itself a (small) thermal optimization.

use std::collections::HashMap;
use tadfa_dataflow::DefUse;
use tadfa_ir::{Function, Inst, Opcode, VReg};

/// Folds pure instructions whose operands are all *single-definition*
/// constants into `Const` instructions, iterating to a fixpoint.
/// Single-definition means the operand register is defined exactly once
/// in the whole function (SSA-like), so the fold needs no path analysis.
///
/// Returns the number of instructions folded.
pub fn propagate_constants(func: &mut Function) -> usize {
    let mut total = 0;
    loop {
        let du = DefUse::compute(func);
        // vreg -> constant value, for single-def Const registers.
        let mut known: HashMap<VReg, i64> = HashMap::new();
        for (_bb, id) in func.inst_ids_in_layout_order() {
            let inst = func.inst(id);
            if inst.op == Opcode::Const {
                if let Some(d) = inst.def() {
                    if du.num_defs(d) == 1 {
                        known.insert(d, inst.imm.unwrap_or(0));
                    }
                }
            }
        }
        if known.is_empty() {
            break;
        }

        let mut folded = 0;
        for (_bb, id) in func.inst_ids_in_layout_order() {
            let inst = func.inst(id);
            if inst.op == Opcode::Const || inst.op.has_slot() || !inst.op.has_dst() {
                continue;
            }
            let Some(dst) = inst.def() else { continue };
            let vals: Option<Vec<i64>> =
                inst.uses().iter().map(|u| known.get(u).copied()).collect();
            let Some(vals) = vals else { continue };
            let value = match (inst.op, vals.as_slice()) {
                (Opcode::Mov, [a]) => *a,
                (Opcode::Add, [a, b]) => a.wrapping_add(*b),
                (Opcode::Sub, [a, b]) => a.wrapping_sub(*b),
                (Opcode::Mul, [a, b]) => a.wrapping_mul(*b),
                (Opcode::Div, [a, b]) => {
                    if *b == 0 {
                        0
                    } else {
                        a.wrapping_div(*b)
                    }
                }
                (Opcode::Rem, [a, b]) => {
                    if *b == 0 {
                        0
                    } else {
                        a.wrapping_rem(*b)
                    }
                }
                (Opcode::And, [a, b]) => a & b,
                (Opcode::Or, [a, b]) => a | b,
                (Opcode::Xor, [a, b]) => a ^ b,
                (Opcode::Shl, [a, b]) => a.wrapping_shl(*b as u32 & 63),
                (Opcode::Shr, [a, b]) => a.wrapping_shr(*b as u32 & 63),
                (Opcode::Neg, [a]) => a.wrapping_neg(),
                (Opcode::Not, [a]) => !a,
                (Opcode::CmpEq, [a, b]) => (a == b) as i64,
                (Opcode::CmpNe, [a, b]) => (a != b) as i64,
                (Opcode::CmpLt, [a, b]) => (a < b) as i64,
                (Opcode::CmpLe, [a, b]) => (a <= b) as i64,
                (Opcode::CmpGt, [a, b]) => (a > b) as i64,
                (Opcode::CmpGe, [a, b]) => (a >= b) as i64,
                (Opcode::Select, [c, a, b]) => {
                    if *c != 0 {
                        *a
                    } else {
                        *b
                    }
                }
                _ => continue,
            };
            *func.inst_mut(id) = Inst::konst(dst, value);
            folded += 1;
        }
        total += folded;
        if folded == 0 {
            break;
        }
    }
    total
}

/// Removes side-effect-free instructions whose results are never read,
/// iterating until nothing more dies. Loads are removable (no side
/// effects in this memory model); stores and NOPs are kept (NOPs are
/// deliberate cooling padding).
///
/// Returns the number of instructions removed.
pub fn eliminate_dead_code(func: &mut Function) -> usize {
    let mut removed_total = 0;
    loop {
        let du = DefUse::compute(func);
        let mut removed = 0;
        for bb in func.block_ids().collect::<Vec<_>>() {
            let mut pos = 0;
            while pos < func.block(bb).insts().len() {
                let id = func.block(bb).insts()[pos];
                let inst = func.inst(id);
                let dead = match inst.def() {
                    Some(d) => {
                        !inst.op.has_side_effect() && inst.op != Opcode::Nop && du.num_uses(d) == 0
                    }
                    None => false,
                };
                if dead {
                    func.remove_inst_at(bb, pos);
                    removed += 1;
                } else {
                    pos += 1;
                }
            }
        }
        removed_total += removed;
        if removed == 0 {
            break;
        }
    }
    removed_total
}

/// Runs constant propagation then DCE, returning
/// `(constants folded, instructions removed)`.
pub fn cleanup(func: &mut Function) -> (usize, usize) {
    let folded = propagate_constants(func);
    let removed = eliminate_dead_code(func);
    (folded, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tadfa_ir::{FunctionBuilder, Verifier};
    use tadfa_sim::Interpreter;

    #[test]
    fn folds_constant_chains() {
        let mut b = FunctionBuilder::new("c");
        let k1 = b.iconst(6);
        let k2 = b.iconst(7);
        let p = b.mul(k1, k2);
        let one = b.iconst(1);
        let q = b.add(p, one);
        b.ret(Some(q));
        let mut f = b.finish();
        let folded = propagate_constants(&mut f);
        assert_eq!(folded, 2, "mul and add both fold");
        assert!(Verifier::new(&f).run().is_ok());
        let r = Interpreter::new(&f).run(&[]).unwrap();
        assert_eq!(r.ret, Some(43));
        // The folded ops are now consts; DCE can strip the feeders.
        let removed = eliminate_dead_code(&mut f);
        assert!(removed >= 3, "k1, k2, one and p are dead: {removed}");
        let r = Interpreter::new(&f).run(&[]).unwrap();
        assert_eq!(r.ret, Some(43));
    }

    #[test]
    fn does_not_fold_params_or_multi_def() {
        let mut b = FunctionBuilder::new("nf");
        let x = b.param();
        let k = b.iconst(0);
        b.mov_into(k, x); // k has two defs: not a constant
        let y = b.add(k, k);
        b.ret(Some(y));
        let mut f = b.finish();
        assert_eq!(propagate_constants(&mut f), 0);
        let r = Interpreter::new(&f).run(&[21]).unwrap();
        assert_eq!(r.ret, Some(42));
    }

    #[test]
    fn dce_removes_dead_loads_but_not_stores() {
        let mut b = FunctionBuilder::new("d");
        let slot = b.slot("m", 4);
        let x = b.param();
        let i = b.iconst(0);
        b.store(slot, i, x); // side effect: kept
        let dead_load = b.load(slot, i); // never used: removed
        let _ = dead_load;
        b.ret(Some(x));
        let mut f = b.finish();
        let removed = eliminate_dead_code(&mut f);
        assert_eq!(removed, 1, "only the dead load goes");
        let r = Interpreter::new(&f).run(&[5]).unwrap();
        assert_eq!(r.memory[0][0], 5, "store survived");
    }

    #[test]
    fn dce_keeps_nops() {
        let mut b = FunctionBuilder::new("n");
        let x = b.param();
        b.nop();
        b.nop();
        b.ret(Some(x));
        let mut f = b.finish();
        assert_eq!(eliminate_dead_code(&mut f), 0);
        assert_eq!(f.num_insts(), 2, "cooling NOPs are deliberate");
    }

    #[test]
    fn dce_cascades_through_chains() {
        let mut b = FunctionBuilder::new("ch");
        let x = b.param();
        let a = b.add(x, x);
        let c = b.mul(a, a);
        let d = b.xor(c, a); // d dead -> c dead -> a dead
        let _ = d;
        b.ret(Some(x));
        let mut f = b.finish();
        assert_eq!(eliminate_dead_code(&mut f), 3);
        assert_eq!(f.num_insts(), 0);
    }

    #[test]
    fn cleanup_after_promotion_strips_index_garbage() {
        use crate::promote::promote_scalar_slots;
        // Spill-like pattern: scalar slot accessed with const-0 indices.
        let mut b = FunctionBuilder::new("p");
        let x = b.param();
        let slot = b.slot("s", 1);
        let z1 = b.iconst(0);
        b.store(slot, z1, x);
        let z2 = b.iconst(0);
        let v = b.load(slot, z2);
        let y = b.add(v, v);
        b.ret(Some(y));
        let mut f = b.finish();
        let golden = Interpreter::new(&f).run(&[4]).unwrap();

        promote_scalar_slots(&mut f);
        let (_, removed) = cleanup(&mut f);
        assert!(removed >= 2, "dead const-0 indices stripped: {removed}");
        assert!(Verifier::new(&f).run().is_ok());
        let after = Interpreter::new(&f).run(&[4]).unwrap();
        assert_eq!(golden.ret, after.ret);
    }

    #[test]
    fn cleanup_preserves_loop_semantics() {
        let mut b = FunctionBuilder::new("l");
        let n = b.param();
        let h = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let acc = b.iconst(0);
        let i = b.iconst(0);
        let dead = b.iconst(99); // loop-invariant dead value
        let _ = dead;
        b.jump(h);
        b.switch_to(h);
        let done = b.cmpge(i, n);
        b.branch(done, exit, body);
        b.switch_to(body);
        let a2 = b.add(acc, i);
        b.mov_into(acc, a2);
        let one = b.iconst(1);
        let i2 = b.add(i, one);
        b.mov_into(i, i2);
        b.jump(h);
        b.switch_to(exit);
        b.ret(Some(acc));
        let mut f = b.finish();
        let golden = Interpreter::new(&f).run(&[10]).unwrap();
        let (folded, removed) = cleanup(&mut f);
        let _ = folded;
        assert!(removed >= 1, "the dead const goes");
        let after = Interpreter::new(&f).run(&[10]).unwrap();
        assert_eq!(golden.ret, after.ret);
        assert_eq!(after.ret, Some(45));
    }
}
