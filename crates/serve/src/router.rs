//! The fleet router: one JSON-lines front door over N workers.
//!
//! The router speaks **exactly** the `tadfa-serve` protocol — a fleet
//! is a drop-in replacement for a single process, and `tadfa-load`
//! drives both with the same bytes. Behind the socket it shards: each
//! analysis request is hashed ([`shard_of`] — scenario stem for
//! `run-scenario`, so a scenario's cache warms in *one* worker;
//! stem + source for `analyze`/`analyze-module`, so ad-hoc load
//! spreads) to a **primary** worker, with the next slot as designated
//! **backup**. The forward itself rides pooled connections with one
//! in-flight request per connection, a per-attempt timeout, and a
//! bounded retry loop: connection errors and the worker's retryable
//! rejections (`queue-full`, `slo-shed`, `shutting-down`) trigger
//! capped exponential backoff with deterministic jitter, alternating
//! primary and backup. Because the solve is deterministic and golden
//! -verified, a failover answer is byte-identical to the primary's —
//! failure costs latency, never bytes.
//!
//! Degradation is graceful and typed: when the router's own admission
//! queue is full, or when another retry could not land inside the
//! request's deadline, the client gets
//! [`crate::protocol::kind::FLEET_OVERLOADED`]
//! — retryable, explicit, and cheap — never a hang and never a
//! silently dropped request.
//!
//! Fan-out ops are handled at the router: `ping` answers inline
//! (router liveness), `stats` merges every worker's counters (summed
//! per scenario stem, so single-process gates like "total `preloaded`
//! after restart" keep working unchanged against a fleet) and adds a
//! `fleet` section with per-worker health/restart/generation detail,
//! `reload` broadcasts, and `shutdown` tears the whole fleet down.

use crate::fleet::{FleetState, WorkerSlot};
use crate::latency::LatencyHistogram;
use crate::protocol::{self, kind, Op, Request};
use crate::queue::{AdmissionQueue, RejectReason};
use crate::service::{sink, write_line, Sink};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// FNV-1a 64 — the shard hash (stable across processes and runs, no
/// dependency on the std hasher's per-process seed).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The primary worker index for a scenario stem in an `n`-worker
/// fleet. Public so chaos harnesses can aim at (or away from) the
/// worker that owns a given scenario's keyspace; the backup is always
/// `(shard_of(..) + 1) % n`.
pub fn shard_of(scenario: &str, workers: usize) -> usize {
    (fnv1a64(scenario.as_bytes()) % workers.max(1) as u64) as usize
}

/// The shard hash for one request op (`None` for ops the router
/// handles itself rather than forwarding to one worker).
fn shard_key(op: &Op) -> Option<u64> {
    match op {
        Op::RunScenario { scenario, .. } => Some(fnv1a64(scenario.as_bytes())),
        Op::Analyze {
            scenario, source, ..
        }
        | Op::AnalyzeModule {
            scenario, source, ..
        } => {
            let mut h = fnv1a64(scenario.as_bytes());
            h ^= fnv1a64(source.as_bytes());
            Some(h)
        }
        Op::Stats | Op::Reload | Op::Ping | Op::Shutdown => None,
    }
}

/// Routing, retry, and shedding knobs.
#[derive(Clone, Debug)]
pub struct RouterPolicy {
    /// Router admission-queue slots (overflow is shed as
    /// `fleet-overloaded`).
    pub queue_capacity: usize,
    /// Forwarder threads draining the queue.
    pub forwarders: usize,
    /// Per-connect timeout when dialing a worker.
    pub connect_timeout_ms: u64,
    /// Deadline applied when a request does not carry `deadline_ms`.
    pub default_deadline_ms: u64,
    /// Cap on any single forward attempt (so one hung worker burns one
    /// attempt, not the whole deadline).
    pub attempt_timeout_ms: u64,
    /// Retries after the first attempt before the request is shed.
    pub max_retries: u32,
    /// First backoff; doubles per attempt.
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_cap_ms: u64,
    /// Longest accepted request line.
    pub max_line_bytes: usize,
}

impl Default for RouterPolicy {
    fn default() -> RouterPolicy {
        RouterPolicy {
            queue_capacity: 64,
            forwarders: 8,
            connect_timeout_ms: 1_000,
            default_deadline_ms: 30_000,
            attempt_timeout_ms: 5_000,
            max_retries: 5,
            backoff_base_ms: 20,
            backoff_cap_ms: 1_000,
            max_line_bytes: 1 << 20,
        }
    }
}

/// One admitted request: the raw line to forward verbatim, its parsed
/// form (for sharding and deadline), its admission instant (the
/// deadline epoch), and the client sink for the response.
struct RouterJob {
    line: String,
    request: Request,
    admitted: Instant,
    out: Sink,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("workers", &self.state.worker_count())
            .field("queue", &self.queue.stats())
            .finish()
    }
}

/// The fleet front-end. Share via `Arc`; [`Router::run_forwarders`]
/// starts the drain threads and [`Router::serve`] runs the accept
/// loop until shutdown.
pub struct Router {
    state: Arc<FleetState>,
    policy: RouterPolicy,
    queue: AdmissionQueue<RouterJob>,
    latency: LatencyHistogram,
    forwarded: AtomicU64,
    retries: AtomicU64,
    failovers: AtomicU64,
    shed: AtomicU64,
    served_ok: AtomicU64,
    served_err: AtomicU64,
}

impl Router {
    /// A router over a fleet's shared state.
    pub fn new(state: Arc<FleetState>, policy: RouterPolicy) -> Arc<Router> {
        let queue_capacity = policy.queue_capacity;
        Arc::new(Router {
            state,
            policy,
            queue: AdmissionQueue::new(queue_capacity),
            latency: LatencyHistogram::new(),
            forwarded: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            served_ok: AtomicU64::new(0),
            served_err: AtomicU64::new(0),
        })
    }

    /// Starts the forwarder threads that drain the admission queue.
    pub fn run_forwarders(self: &Arc<Router>) -> Vec<std::thread::JoinHandle<()>> {
        (0..self.policy.forwarders.max(1))
            .map(|_| {
                let router = Arc::clone(self);
                std::thread::spawn(move || {
                    while let Some(job) = router.queue.pop() {
                        let response = router.forward(&job);
                        let ok = protocol::parse_response(&response)
                            .map(|r| r.ok)
                            .unwrap_or(false);
                        if ok {
                            router.served_ok.fetch_add(1, Ordering::Relaxed);
                        } else {
                            router.served_err.fetch_add(1, Ordering::Relaxed);
                        }
                        let elapsed = job.admitted.elapsed();
                        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
                        router.latency.record(ns);
                        write_line(&job.out, &response);
                    }
                })
            })
            .collect()
    }

    /// The accept loop: one thread per client connection, polling the
    /// shutdown flag between accepts. Returns once shutdown is
    /// requested (by a client `shutdown` or externally).
    ///
    /// # Errors
    ///
    /// Only the initial nonblocking-mode switch can fail; accept
    /// errors are logged and survived.
    pub fn serve(self: &Arc<Router>, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        while !self.state.shutting_down() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    // Small request/response lines; Nagle queuing them
                    // behind a delayed ACK costs ~40ms per hop.
                    let _ = stream.set_nodelay(true);
                    let router = Arc::clone(self);
                    std::thread::spawn(move || {
                        if stream.set_nonblocking(false).is_ok() {
                            router.handle_conn(stream);
                        }
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => {
                    eprintln!("tadfa-fleet: accept error: {e}");
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
        self.queue.close();
        Ok(())
    }

    /// One client connection: parse lines, answer router-local ops
    /// inline, enqueue the rest for the forwarders. Responses may be
    /// written out of order by forwarder threads — that is the
    /// protocol's contract, and the per-sink lock keeps lines atomic.
    fn handle_conn(self: &Arc<Router>, stream: TcpStream) {
        let out = match stream.try_clone() {
            Ok(w) => sink(w),
            Err(_) => return,
        };
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
            if line.len() > self.policy.max_line_bytes {
                write_line(
                    &out,
                    &protocol::error_response(
                        None,
                        kind::REQUEST_TOO_LARGE,
                        &format!("request line exceeds {} bytes", self.policy.max_line_bytes),
                    ),
                );
                return;
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let request = match protocol::parse_request(trimmed) {
                Ok(r) => r,
                Err(e) => {
                    write_line(
                        &out,
                        &protocol::error_response(e.id, kind::BAD_REQUEST, &e.message),
                    );
                    continue;
                }
            };
            match &request.op {
                Op::Ping => write_line(&out, &protocol::pong_response(request.id)),
                Op::Stats => {
                    let response = self.fleet_stats(request.id);
                    write_line(&out, &response);
                }
                Op::Reload => {
                    let response = self.broadcast_reload(request.id);
                    write_line(&out, &response);
                }
                Op::Shutdown => {
                    write_line(&out, &protocol::shutdown_response(request.id));
                    self.state.request_shutdown();
                    self.queue.close();
                    return;
                }
                Op::RunScenario { .. } | Op::Analyze { .. } | Op::AnalyzeModule { .. } => {
                    let job = RouterJob {
                        line: trimmed.to_string(),
                        request,
                        admitted: Instant::now(),
                        out: Arc::clone(&out),
                    };
                    if let Err((job, reason)) = self.queue.try_push(job) {
                        let (error_kind, message) = match reason {
                            RejectReason::Full => {
                                self.shed.fetch_add(1, Ordering::Relaxed);
                                (
                                    kind::FLEET_OVERLOADED,
                                    format!(
                                        "router queue full (capacity {})",
                                        self.policy.queue_capacity
                                    ),
                                )
                            }
                            RejectReason::Closed => {
                                (kind::SHUTTING_DOWN, "fleet is shutting down".to_string())
                            }
                        };
                        write_line(
                            &job.out,
                            &protocol::error_response(Some(job.request.id), error_kind, &message),
                        );
                    }
                }
            }
        }
    }

    /// Forwards one job to its shard with deadline-aware bounded retry
    /// and primary/backup alternation; always returns a response line.
    fn forward(&self, job: &RouterJob) -> String {
        let workers = self.state.worker_count();
        let key = shard_key(&job.request.op).expect("only shardable ops are enqueued");
        let primary = (key % workers as u64) as usize;
        let backup = (primary + 1) % workers;
        let deadline_ms = match &job.request.op {
            Op::RunScenario { deadline_ms, .. }
            | Op::Analyze { deadline_ms, .. }
            | Op::AnalyzeModule { deadline_ms, .. } => {
                deadline_ms.unwrap_or(self.policy.default_deadline_ms)
            }
            _ => self.policy.default_deadline_ms,
        };
        let deadline = job.admitted + Duration::from_millis(deadline_ms.max(1));
        let attempt_cap = Duration::from_millis(self.policy.attempt_timeout_ms.max(1));

        let mut attempt: u32 = 0;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return self.shed_response(job, attempt, "deadline passed");
            }
            let remaining = deadline - now;
            // Alternate preference between primary and backup so a
            // flapping primary doesn't absorb every retry.
            let order = if attempt.is_multiple_of(2) {
                [primary, backup]
            } else {
                [backup, primary]
            };
            let slot = order
                .iter()
                .map(|&i| &self.state.slots()[i])
                .find(|s| s.routable());
            if let Some(slot) = slot {
                if attempt > 0 {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                }
                match call_worker(
                    slot,
                    &job.line,
                    remaining.min(attempt_cap),
                    Duration::from_millis(self.policy.connect_timeout_ms.max(1)),
                ) {
                    Ok(response) => {
                        let retryable = protocol::parse_response(&response)
                            .ok()
                            .and_then(|r| r.error)
                            .is_some_and(|e| {
                                e == kind::QUEUE_FULL
                                    || e == kind::SLO_SHED
                                    || e == kind::SHUTTING_DOWN
                            });
                        if !retryable {
                            self.forwarded.fetch_add(1, Ordering::Relaxed);
                            slot.count_forward();
                            if slot.index() != primary {
                                self.failovers.fetch_add(1, Ordering::Relaxed);
                            }
                            return response;
                        }
                        // Worker said "not now": back off and retry.
                    }
                    Err(_) => {
                        // Connection-level failure: the connection was
                        // dropped by `call_worker`; back off and retry
                        // (possibly against the backup).
                    }
                }
            }
            attempt += 1;
            if attempt > self.policy.max_retries {
                return self.shed_response(job, attempt, "retry budget exhausted");
            }
            let backoff = self.backoff(job.request.id, attempt);
            if Instant::now() + backoff >= deadline {
                return self.shed_response(job, attempt, "next retry would breach the deadline");
            }
            std::thread::sleep(backoff);
        }
    }

    /// The backoff before retry `attempt` (1-based).
    fn backoff(&self, id: u64, attempt: u32) -> Duration {
        backoff_for(&self.policy, id, attempt)
    }

    /// The typed graceful-degradation response.
    fn shed_response(&self, job: &RouterJob, attempts: u32, why: &str) -> String {
        self.shed.fetch_add(1, Ordering::Relaxed);
        protocol::error_response(
            Some(job.request.id),
            kind::FLEET_OVERLOADED,
            &format!("fleet overloaded after {attempts} attempt(s): {why}"),
        )
    }

    /// Broadcasts `reload` to every routable worker; ok only if every
    /// one of them reloaded.
    fn broadcast_reload(&self, id: u64) -> String {
        let line = format!("{{\"id\": {id}, \"op\": \"reload\"}}");
        let timeout = Duration::from_millis(self.policy.default_deadline_ms.max(1));
        let connect = Duration::from_millis(self.policy.connect_timeout_ms.max(1));
        let mut scenarios: Option<u64> = None;
        let mut reloaded = 0usize;
        for slot in self.state.slots() {
            if !slot.routable() {
                continue;
            }
            let parsed = call_worker(slot, &line, timeout, connect)
                .ok()
                .and_then(|r| protocol::parse_response(&r).ok());
            match parsed {
                Some(r) if r.ok => {
                    reloaded += 1;
                    if scenarios.is_none() {
                        scenarios = r
                            .doc
                            .get("scenarios")
                            .and_then(|v| v.as_f64())
                            .map(|n| n as u64);
                    }
                }
                _ => {
                    return protocol::error_response(
                        Some(id),
                        kind::RELOAD_FAILED,
                        &format!("worker-{} failed to reload", slot.index()),
                    )
                }
            }
        }
        if reloaded == 0 {
            return protocol::error_response(Some(id), kind::RELOAD_FAILED, "no routable workers");
        }
        protocol::reload_response(id, scenarios.unwrap_or(0) as usize)
    }

    /// The merged fleet `stats` response: per-scenario counters summed
    /// across workers (same shape as a single worker's, so existing
    /// clients and gates work unchanged), the router's own queue and
    /// latency, and a `fleet` section with per-worker detail.
    fn fleet_stats(&self, id: u64) -> String {
        use tadfa_sched::json::JsonValue;

        let line = "{\"id\": 0, \"op\": \"stats\"}";
        let timeout = Duration::from_millis(self.policy.attempt_timeout_ms.max(1));
        let connect = Duration::from_millis(self.policy.connect_timeout_ms.max(1));

        // stem -> section ("cache"/"persist"/"" for top-level counters)
        // -> field -> sum. Stems keep first-appearance order.
        let mut stem_order: Vec<String> = Vec::new();
        let mut merged: BTreeMap<String, BTreeMap<&'static str, BTreeMap<String, u64>>> =
            BTreeMap::new();
        let mut workers_json = String::new();

        for (i, slot) in self.state.slots().iter().enumerate() {
            let snap = slot.snapshot();
            let doc = if snap.addr.is_some() {
                call_worker(slot, line, timeout, connect)
                    .ok()
                    .and_then(|r| protocol::parse_response(&r).ok())
                    .filter(|r| r.ok)
                    .map(|r| r.doc)
            } else {
                None
            };
            let (mut preloaded, mut entries) = (0u64, 0u64);
            if let Some(doc) = &doc {
                if let Some(list) = doc.get("scenarios").and_then(JsonValue::as_array) {
                    for sc in list {
                        let Some(stem) = sc.get("name").and_then(JsonValue::as_str) else {
                            continue;
                        };
                        if !merged.contains_key(stem) {
                            stem_order.push(stem.to_string());
                        }
                        let per_stem = merged.entry(stem.to_string()).or_default();
                        for section in ["cache", "persist"] {
                            let Some(obj) = sc.get(section).and_then(JsonValue::as_object) else {
                                continue;
                            };
                            let sums = per_stem.entry(section).or_default();
                            for (field, value) in obj {
                                if let Some(n) = value.as_f64() {
                                    *sums.entry(field.clone()).or_insert(0) += n as u64;
                                }
                            }
                        }
                        let top = per_stem.entry("").or_default();
                        for field in ["runs", "analyzes", "module_analyzes"] {
                            if let Some(n) = sc.get(field).and_then(JsonValue::as_f64) {
                                *top.entry(field.to_string()).or_insert(0) += n as u64;
                            }
                        }
                        let cache = sc.get("cache");
                        preloaded += cache
                            .and_then(|c| c.get("preloaded"))
                            .and_then(JsonValue::as_f64)
                            .unwrap_or(0.0) as u64;
                        entries += cache
                            .and_then(|c| c.get("entries"))
                            .and_then(JsonValue::as_f64)
                            .unwrap_or(0.0) as u64;
                    }
                }
            }
            if i > 0 {
                workers_json.push_str(", ");
            }
            let (probes, probe_failures) = snap.probe_counts;
            workers_json.push_str(&format!(
                "{{\"worker\": {}, \"state\": \"{}\", \"pid\": {}, \"generation\": {}, \
                 \"restarts\": {}, \"forwarded\": {}, \"probes\": {}, \
                 \"probe_failures\": {}, \"preloaded\": {}, \"entries\": {}}}",
                snap.index,
                snap.state.name(),
                snap.pid
                    .map_or_else(|| "null".to_string(), |p| p.to_string()),
                snap.generation,
                snap.restarts,
                snap.forwarded,
                probes,
                probe_failures,
                preloaded,
                entries,
            ));
        }

        let mut scenarios = String::new();
        for (i, stem) in stem_order.iter().enumerate() {
            if i > 0 {
                scenarios.push_str(", ");
            }
            let per_stem = &merged[stem];
            let top = |f: &str| {
                per_stem
                    .get("")
                    .and_then(|m| m.get(f))
                    .copied()
                    .unwrap_or(0)
            };
            scenarios.push_str(&format!(
                "{{\"name\": {}, \"runs\": {}, \"analyzes\": {}, \"module_analyzes\": {}",
                tadfa_sched::json::escape(stem),
                top("runs"),
                top("analyzes"),
                top("module_analyzes"),
            ));
            for section in ["cache", "persist"] {
                let Some(sums) = per_stem.get(section) else {
                    continue;
                };
                scenarios.push_str(&format!(", \"{section}\": {{"));
                for (j, (field, sum)) in sums.iter().enumerate() {
                    if j > 0 {
                        scenarios.push_str(", ");
                    }
                    scenarios.push_str(&format!("\"{field}\": {sum}"));
                }
                scenarios.push('}');
            }
            scenarios.push('}');
        }

        let q = self.queue.stats();
        let l = self.latency.snapshot();
        format!(
            "{{\"id\": {id}, \"ok\": true, \"op\": \"stats\", \"scenarios\": [{scenarios}], \
             \"fleet\": {{\"workers\": [{workers_json}], \
             \"router\": {{\"forwarded\": {}, \"retries\": {}, \"failovers\": {}, \
             \"shed\": {}}}}}, \
             \"queue\": {{\"accepted\": {}, \"rejected\": {}, \"peak_depth\": {}, \
             \"depth\": {}, \"capacity\": {}}}, \
             \"latency\": {{\"count\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"p999_ns\": {}, \"max_ns\": {}}}, \
             \"requests\": {{\"ok\": {}, \"errors\": {}, \"shed\": {}, \"persist_errors\": 0}}}}",
            self.forwarded.load(Ordering::Relaxed),
            self.retries.load(Ordering::Relaxed),
            self.failovers.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
            q.accepted,
            q.rejected,
            q.peak_depth,
            q.depth,
            q.capacity,
            l.count,
            l.mean_ns,
            l.p50_ns,
            l.p99_ns,
            l.p999_ns,
            l.max_ns,
            self.served_ok.load(Ordering::Relaxed),
            self.served_err.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
        )
    }
}

/// The capped exponential backoff before retry `attempt` (1-based),
/// with deterministic jitter keyed on `(id, attempt)` so a burst of
/// rejected requests does not retry in lockstep.
fn backoff_for(policy: &RouterPolicy, id: u64, attempt: u32) -> Duration {
    let base = policy
        .backoff_base_ms
        .max(1)
        .saturating_mul(1u64 << (attempt - 1).min(16))
        .min(policy.backoff_cap_ms.max(1));
    let mut seed = [0u8; 12];
    seed[..8].copy_from_slice(&id.to_le_bytes());
    seed[8..].copy_from_slice(&attempt.to_le_bytes());
    let jitter = fnv1a64(&seed) % (base / 2 + 1);
    Duration::from_millis(base + jitter)
}

/// One request/response exchange with a worker over a pooled
/// connection. A clean exchange returns the connection to the pool;
/// *any* error drops it (a half-used connection with an abandoned
/// in-flight request must never be reused).
fn call_worker(
    slot: &WorkerSlot,
    line: &str,
    timeout: Duration,
    connect_timeout: Duration,
) -> Result<String, String> {
    let (generation, stream) = slot
        .checkout(connect_timeout.min(timeout))
        .map_err(|e| format!("connect: {e}"))?;
    let exchange = (|| -> std::io::Result<String> {
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let mut writer = &stream;
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        // One request in flight per connection, so read-ahead past the
        // newline cannot swallow anyone else's bytes.
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut response = String::new();
        let n = reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "worker closed the connection mid-exchange",
            ));
        }
        Ok(response.trim().to_string())
    })();
    match exchange {
        Ok(response) => {
            slot.checkin(generation, stream);
            Ok(response)
        }
        Err(e) => Err(format!("exchange: {e}")), // stream dropped here
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for n in 1..=8usize {
            for stem in ["solo_baseline", "octa_shard", "files_pair", "x"] {
                let s = shard_of(stem, n);
                assert!(s < n);
                assert_eq!(s, shard_of(stem, n), "deterministic");
            }
        }
        assert_eq!(shard_of("anything", 0), 0, "worker count clamped");
    }

    #[test]
    fn scenario_requests_shard_by_stem_alone() {
        let a = shard_key(&Op::RunScenario {
            scenario: "solo_baseline".to_string(),
            workers: None,
            deadline_ms: None,
        })
        .unwrap();
        assert_eq!(a % 8, shard_of("solo_baseline", 8) as u64 % 8);
        let b = shard_key(&Op::Analyze {
            scenario: "solo_baseline".to_string(),
            source: "func @f(%0) {}".to_string(),
            workers: None,
            deadline_ms: None,
        })
        .unwrap();
        let c = shard_key(&Op::Analyze {
            scenario: "solo_baseline".to_string(),
            source: "func @g(%0) {}".to_string(),
            workers: None,
            deadline_ms: None,
        })
        .unwrap();
        assert_ne!(b, c, "analyze load spreads by source");
        assert!(shard_key(&Op::Ping).is_none());
        assert!(shard_key(&Op::Stats).is_none());
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let policy = RouterPolicy {
            backoff_base_ms: 20,
            backoff_cap_ms: 1_000,
            ..RouterPolicy::default()
        };
        for attempt in 1..=12u32 {
            let base = 20u64.saturating_mul(1 << (attempt - 1).min(16)).min(1_000);
            let d = backoff_for(&policy, 7, attempt);
            assert!(
                d >= Duration::from_millis(base),
                "attempt {attempt}: {d:?} below base {base} ms"
            );
            assert!(
                d <= Duration::from_millis(base + base / 2),
                "attempt {attempt}: {d:?} above jitter ceiling"
            );
            assert_eq!(d, backoff_for(&policy, 7, attempt), "deterministic");
        }
        // Different ids jitter differently (no retry lockstep) for at
        // least some attempt.
        assert!(
            (1..=6).any(|a| backoff_for(&policy, 1, a) != backoff_for(&policy, 2, a)),
            "jitter must depend on the request id"
        );
    }

    #[test]
    fn launch_with_a_bogus_binary_fails_cleanly() {
        let fleet = crate::fleet::Fleet::launch(crate::fleet::FleetConfig {
            workers: 1,
            serve_bin: std::path::PathBuf::from("/nonexistent-tadfa-serve"),
            spawn_timeout_ms: 10,
            ..crate::fleet::FleetConfig::default()
        });
        assert!(fleet.is_err(), "bogus binary cannot launch");
    }
}
