//! **E7 — the pre-assignment predictive analysis.** "The more ambitious
//! possibility … would be to develop predictive analyses performed at
//! earlier stages of compilation, i.e., before register allocation and
//! assignment" (§4).
//!
//! Two questions:
//! 1. Does the predictive critical set (computed before any assignment)
//!    match the post-assignment measured hot variables?
//!    → precision/recall of the predicted set.
//! 2. Does driving assignment with the prediction (coldest-first over the
//!    predicted map) approach chessboard-quality uniformity without the
//!    half-file restriction? → end-to-end σ and peak comparison.
//!
//! Run: `cargo run -p tadfa-bench --bin predictive_eval`

use tadfa_bench::{default_register_file, evaluate_policy, k2, k3, print_table};
use tadfa_core::{
    AnalysisGrid, CriticalConfig, CriticalSet, PlacementPrior, PredictiveConfig, PredictiveDfa,
    ThermalDfa, ThermalDfaConfig,
};
use tadfa_regalloc::{allocate_linear_scan, ColdestFirst, FirstFree, RegAllocConfig};
use tadfa_thermal::{PowerModel, RcParams};
use tadfa_workloads::standard_suite;

fn main() {
    let rf = default_register_file();
    let pm = PowerModel::default();
    let dfa_config = ThermalDfaConfig::default();

    println!("== E7: predictive (pre-assignment) analysis ==\n");

    // ---- 1. predicted vs measured critical variables -----------------
    println!("1) predicted critical set vs post-assignment critical set:");
    let mut rows = Vec::new();
    for w in standard_suite() {
        // Prediction before assignment.
        let predictive = PredictiveDfa::new(
            &w.func,
            &rf,
            RcParams::default(),
            pm,
            PredictiveConfig { prior: PlacementPrior::FirstFree, ..PredictiveConfig::default() },
        );
        let Ok(pred) = predictive.run() else {
            rows.push(vec![w.name.to_string(), "alloc error".into()]);
            continue;
        };
        let predicted: std::collections::BTreeSet<_> =
            pred.predicted_critical(0.3).into_iter().collect();

        // Ground truth after assignment.
        let mut func = w.func.clone();
        let Ok(alloc) =
            allocate_linear_scan(&mut func, &rf, &mut FirstFree, &RegAllocConfig::default())
        else {
            rows.push(vec![w.name.to_string(), "alloc error".into()]);
            continue;
        };
        let grid = AnalysisGrid::full(&rf, RcParams::default());
        let result = ThermalDfa::new(&func, &alloc.assignment, &grid, pm, dfa_config).run();
        let measured: std::collections::BTreeSet<_> = CriticalSet::identify(
            &func,
            &alloc.assignment,
            &grid,
            &result,
            &pm,
            CriticalConfig { temp_fraction: 0.5 },
        )
        .critical()
        .iter()
        .copied()
        .collect();

        let tp = predicted.intersection(&measured).count();
        let precision = if predicted.is_empty() { 1.0 } else { tp as f64 / predicted.len() as f64 };
        let recall = if measured.is_empty() { 1.0 } else { tp as f64 / measured.len() as f64 };
        rows.push(vec![
            w.name.to_string(),
            predicted.len().to_string(),
            measured.len().to_string(),
            tp.to_string(),
            format!("{precision:.2}"),
            format!("{recall:.2}"),
        ]);
    }
    print_table(
        &["workload", "predicted", "measured", "overlap", "precision", "recall"],
        &rows,
    );

    // ---- 2. prediction-driven assignment ------------------------------
    println!("\n2) end-to-end: prediction-driven coldest-first vs the Fig. 1 policies:");
    let mut rows = Vec::new();
    for w in standard_suite() {
        let mut cells = vec![w.name.to_string()];

        // Baselines through the standard harness.
        for p in ["first-free", "chessboard"] {
            match evaluate_policy(&w, &rf, p, 42, dfa_config) {
                Ok(eval) => {
                    cells.push(k2(eval.measured_stats.peak));
                    cells.push(k3(eval.measured_stats.stddev));
                }
                Err(_) => {
                    cells.push("err".into());
                    cells.push(String::new());
                }
            }
        }

        // Prediction-driven: coldest-first seeded with the predictive map.
        let predictive = PredictiveDfa::new(
            &w.func,
            &rf,
            RcParams::default(),
            pm,
            PredictiveConfig { prior: PlacementPrior::FirstFree, ..PredictiveConfig::default() },
        );
        match predictive.run() {
            Ok(pred) => {
                let mut func = w.func.clone();
                // Normalise scores to [0, 1] and use a self-heat of 0.25:
                // each choice visibly "heats" its cell so successive
                // temporaries rotate instead of funnelling into the single
                // coldest cell.
                let mut scores = pred.cell_scores();
                let max = scores.iter().cloned().fold(0.0f64, f64::max);
                if max > 0.0 {
                    for s in &mut scores {
                        *s /= max;
                    }
                }
                let mut policy = ColdestFirst::new(scores, 0.25);
                match allocate_linear_scan(&mut func, &rf, &mut policy, &RegAllocConfig::default())
                {
                    Ok(alloc) => {
                        // Measure through traced co-simulation.
                        let mut interp = tadfa_sim::Interpreter::new(&func)
                            .with_assignment(&alloc.assignment)
                            .with_fuel(50_000_000);
                        for (slot, data) in &w.preload {
                            interp = interp.with_slot_data(*slot, data.clone());
                        }
                        match interp.run(&w.args) {
                            Ok(exec) => {
                                let model = tadfa_thermal::ThermalModel::new(
                                    rf.floorplan().clone(),
                                    RcParams::default(),
                                );
                                let tl = tadfa_sim::simulate_trace(
                                    &exec.trace,
                                    &rf,
                                    &model,
                                    &pm,
                                    &tadfa_sim::CosimConfig::default(),
                                );
                                let stats =
                                    tadfa_thermal::MapStats::of(&tl.peak_map, rf.floorplan());
                                cells.push(k2(stats.peak));
                                cells.push(k3(stats.stddev));
                            }
                            Err(_) => {
                                cells.push("err".into());
                                cells.push(String::new());
                            }
                        }
                    }
                    Err(_) => {
                        cells.push("err".into());
                        cells.push(String::new());
                    }
                }
            }
            Err(_) => {
                cells.push("err".into());
                cells.push(String::new());
            }
        }
        rows.push(cells);
    }
    print_table(
        &[
            "workload",
            "ff peak",
            "ff sigma",
            "cb peak",
            "cb sigma",
            "pred peak",
            "pred sigma",
        ],
        &rows,
    );

    println!(
        "\nexpected shape: good precision/recall on loop kernels (the hot accumulators \
         are statically obvious); prediction-driven assignment approaches chessboard's \
         sigma and can beat it at high pressure (no half-file restriction)."
    );
}
