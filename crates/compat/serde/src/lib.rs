//! Offline stand-in for the `serde` facade.
//!
//! Re-exports the no-op derive macros so `use serde::{Deserialize,
//! Serialize}` + `#[derive(...)]` compile without network access. See
//! `crates/compat/serde_derive` for the rationale.

pub use serde_derive::{Deserialize, Serialize};
