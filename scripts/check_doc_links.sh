#!/usr/bin/env bash
# Fails if any Markdown file in the repo contains a relative link whose
# target does not exist on disk — the docs-link gate CI runs, usable
# locally as `scripts/check_doc_links.sh`.
#
# Checked: `[text](relative/path.md)` and `[text](path#anchor)` forms.
# Skipped: absolute URLs (anything with a scheme, i.e. a `:` in the
# target), pure in-page anchors (`#section`), and files under target/
# and .git/.
set -u
cd "$(dirname "$0")/.."

status=0
checked=0
while IFS='|' read -r file link; do
    target="${link%%#*}"
    [ -z "$target" ] && continue # pure anchor
    checked=$((checked + 1))
    if [ ! -e "$(dirname "$file")/$target" ]; then
        echo "dangling link in $file: ($link)" >&2
        status=1
    fi
done < <(
    grep -RoE --include='*.md' --exclude-dir=target --exclude-dir=.git \
        '\]\([^)#:[:space:]]+(#[^)]*)?\)' . |
        sed -E 's/^([^:]+):\]\((.*)\)$/\1|\2/'
)

echo "checked $checked relative link(s)"
exit $status
