//! A minimal timing harness for the `benches/` binaries.
//!
//! The build container has no crates.io access, so criterion is
//! unavailable; this module supplies the subset the benches need —
//! warmup, repeated timed samples, and an aligned min/median/mean
//! report — behind a criterion-like API (`bench_function`, groups via
//! name prefixes). Swap back to criterion when a registry is reachable;
//! the bench sources only touch this façade.

use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink, re-exported for bench bodies.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// One benchmark's collected samples.
#[derive(Clone, Debug)]
struct Record {
    name: String,
    samples: Vec<Duration>,
}

impl Record {
    fn summary(&self) -> Summary {
        let mut sorted = self.samples.clone();
        sorted.sort();
        let total: Duration = sorted.iter().sum();
        Summary {
            name: self.name.clone(),
            min_ns: sorted[0].as_nanos(),
            median_ns: sorted[sorted.len() / 2].as_nanos(),
            mean_ns: (total / sorted.len() as u32).as_nanos(),
            samples: sorted.len(),
        }
    }
}

/// One benchmark's summary statistics, nanosecond-denominated — the
/// machine-readable row of [`Harness::export_json`].
#[derive(Clone, Debug)]
pub struct Summary {
    /// Benchmark name.
    pub name: String,
    /// Fastest sample, ns.
    pub min_ns: u128,
    /// Median sample, ns.
    pub median_ns: u128,
    /// Mean sample, ns.
    pub mean_ns: u128,
    /// Samples collected.
    pub samples: usize,
}

// JSON escaping/number formatting comes from the workspace's single
// source of truth (`tadfa_sched::json`), so bench files and scenario
// reports can never drift byte-wise from each other.
use tadfa_sched::json::{escape as json_string, number as json_number};

/// A set of benchmarks sharing a report table.
#[derive(Debug)]
pub struct Harness {
    records: Vec<Record>,
    /// Timed samples collected per benchmark.
    pub sample_size: usize,
    /// Untimed warmup iterations per benchmark.
    pub warmup_iters: usize,
}

impl Default for Harness {
    fn default() -> Harness {
        Harness {
            records: Vec::new(),
            sample_size: 10,
            warmup_iters: 3,
        }
    }
}

impl Harness {
    /// A harness with the default sample and warmup counts.
    pub fn new() -> Harness {
        Harness::default()
    }

    /// Times `f` (`warmup_iters` untimed runs, then `sample_size` timed
    /// samples) and records it under `name`.
    pub fn bench_function<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        for _ in 0..self.warmup_iters {
            std_black_box(f());
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(f());
            samples.push(start.elapsed());
        }
        self.records.push(Record {
            name: name.to_string(),
            samples,
        });
    }

    /// Records externally collected samples under `name` — for callers
    /// that need a sampling discipline `bench_function` cannot express
    /// (e.g. interleaved A/B pairs that cancel out frequency drift).
    pub fn record_samples(&mut self, name: &str, samples: Vec<Duration>) {
        assert!(!samples.is_empty(), "need at least one sample");
        self.records.push(Record {
            name: name.to_string(),
            samples,
        });
    }

    /// The mean duration recorded under `name`, if it was benched.
    pub fn mean_of(&self, name: &str) -> Option<Duration> {
        let r = self.records.iter().find(|r| r.name == name)?;
        let total: Duration = r.samples.iter().sum();
        Some(total / r.samples.len() as u32)
    }

    /// The summary (min/median/mean in ns, sample count) recorded under
    /// `name`, if it was benched.
    pub fn summary_of(&self, name: &str) -> Option<Summary> {
        self.records
            .iter()
            .find(|r| r.name == name)
            .map(Record::summary)
    }

    /// Writes the machine-readable report: every benchmark's summary
    /// plus caller-supplied scalar `metrics` (speedups, throughputs) —
    /// the format the perf trajectory is tracked in from PR 3 on
    /// (`BENCH_solver.json`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing `path`.
    pub fn export_json(&self, path: &Path, metrics: &[(&str, f64)]) -> std::io::Result<()> {
        self.export_json_with_text(path, metrics, &[])
    }

    /// [`export_json`](Harness::export_json) with additional
    /// string-valued metrics — identity digests and other non-numeric
    /// facts the perf-trend gate compares (e.g. the `suite_digest`
    /// fingerprint in `BENCH_solver.json`). Text metrics are emitted
    /// after the scalar ones, inside the same `"metrics"` object.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing `path`.
    pub fn export_json_with_text(
        &self,
        path: &Path,
        metrics: &[(&str, f64)],
        text_metrics: &[(&str, &str)],
    ) -> std::io::Result<()> {
        let mut out = std::fs::File::create(path)?;
        writeln!(out, "{{")?;
        writeln!(out, "  \"benches\": [")?;
        for (i, r) in self.records.iter().enumerate() {
            let s = r.summary();
            let comma = if i + 1 < self.records.len() { "," } else { "" };
            writeln!(
                out,
                "    {{\"name\": {}, \"min_ns\": {}, \"median_ns\": {}, \
                 \"mean_ns\": {}, \"samples\": {}}}{comma}",
                json_string(&s.name),
                s.min_ns,
                s.median_ns,
                s.mean_ns,
                s.samples
            )?;
        }
        writeln!(out, "  ],")?;
        writeln!(out, "  \"metrics\": {{")?;
        let total = metrics.len() + text_metrics.len();
        for (i, (name, value)) in metrics.iter().enumerate() {
            let comma = if i + 1 < total { "," } else { "" };
            writeln!(
                out,
                "    {}: {}{comma}",
                json_string(name),
                json_number(*value)
            )?;
        }
        for (i, (name, value)) in text_metrics.iter().enumerate() {
            let comma = if metrics.len() + i + 1 < total {
                ","
            } else {
                ""
            };
            writeln!(
                out,
                "    {}: {}{comma}",
                json_string(name),
                json_string(value)
            )?;
        }
        writeln!(out, "  }}")?;
        writeln!(out, "}}")?;
        Ok(())
    }

    /// Prints the aligned report table for everything benched so far.
    pub fn report(&self) {
        let name_w = self
            .records
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(4)
            .max("name".len());
        println!(
            "{:<name_w$}  {:>12}  {:>12}  {:>12}  {:>7}",
            "name", "min", "median", "mean", "samples"
        );
        println!(
            "{}  {}  {}  {}  {}",
            "-".repeat(name_w),
            "-".repeat(12),
            "-".repeat(12),
            "-".repeat(12),
            "-".repeat(7)
        );
        for r in &self.records {
            let mut sorted = r.samples.clone();
            sorted.sort();
            let min = sorted[0];
            let median = sorted[sorted.len() / 2];
            let total: Duration = sorted.iter().sum();
            let mean = total / sorted.len() as u32;
            println!(
                "{:<name_w$}  {:>12}  {:>12}  {:>12}  {:>7}",
                r.name,
                fmt_duration(min),
                fmt_duration(median),
                fmt_duration(mean),
                sorted.len()
            );
        }
    }
}

/// Human-scale duration formatting (ns/µs/ms/s).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports() {
        let mut h = Harness::new();
        h.sample_size = 3;
        h.warmup_iters = 1;
        let mut count = 0u64;
        h.bench_function("spin", || {
            count += 1;
            (0..1000u64).sum::<u64>()
        });
        assert_eq!(count, 4, "1 warmup + 3 samples");
        assert!(h.mean_of("spin").is_some());
        assert!(h.mean_of("missing").is_none());
        h.report(); // must not panic
    }

    #[test]
    fn export_json_is_machine_readable() {
        let mut h = Harness::new();
        h.sample_size = 2;
        h.warmup_iters = 0;
        h.bench_function("kernel/step \"x\"", || 1 + 1);
        let s = h.summary_of("kernel/step \"x\"").expect("benched");
        assert_eq!(s.samples, 2);
        assert!(s.min_ns <= s.median_ns, "{s:?}");
        // With 2 samples the median is the larger one, so it bounds the
        // mean from above — catches a mean divided by the wrong count.
        assert!(s.mean_ns <= s.median_ns, "{s:?}");

        let path = std::env::temp_dir().join("tadfa_quickbench_export_test.json");
        h.export_json_with_text(
            &path,
            &[("speedup", 3.5), ("bad", f64::NAN)],
            &[("digest", "0xabc")],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.contains("\"kernel/step \\\"x\\\"\""), "{text}");
        assert!(text.contains("\"speedup\": 3.5"), "{text}");
        assert!(text.contains("\"bad\": null,"), "{text}");
        assert!(text.contains("\"digest\": \"0xabc\""), "{text}");
        assert!(
            !text.contains("\"0xabc\","),
            "text metrics close the object"
        );
        assert!(text.contains("\"min_ns\""), "{text}");
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(12)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(12)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).contains(" s"));
    }
}
