//! Offline stand-in for `serde_derive`.
//!
//! The build container has no crates.io access, so the real serde derive
//! macros are replaced by no-ops: `#[derive(Serialize, Deserialize)]`
//! attributes across the workspace compile but generate no impls. The
//! derives mark which types are intended to be wire-serializable; the
//! real crate can be swapped in via `[workspace.dependencies]` without
//! touching any annotated type.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepts the input, emits nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepts the input, emits nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
