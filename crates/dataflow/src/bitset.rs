//! A dense, fixed-capacity bit set used as the fact domain of the classic
//! bit-vector analyses (liveness, reaching definitions, available
//! expressions).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A fixed-capacity set of small integers backed by `u64` words.
///
/// All binary operations panic if the operands have different capacities;
/// analyses always build their sets from one capacity, so a mismatch is a
/// programming error.
///
/// # Examples
///
/// ```
/// use tadfa_dataflow::DenseBitSet;
/// let mut s = DenseBitSet::new(100);
/// s.insert(3);
/// s.insert(64);
/// assert!(s.contains(3));
/// assert_eq!(s.count(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DenseBitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl DenseBitSet {
    /// Creates an empty set able to hold values in `0..capacity`.
    pub fn new(capacity: usize) -> DenseBitSet {
        DenseBitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a set containing every value in `0..capacity`.
    pub fn full(capacity: usize) -> DenseBitSet {
        let mut s = DenseBitSet::new(capacity);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.trim();
        s
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn trim(&mut self) {
        let extra = self.words.len() * 64 - self.capacity;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }

    /// Inserts `value`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `value >= capacity`.
    pub fn insert(&mut self, value: usize) -> bool {
        assert!(
            value < self.capacity,
            "bit {value} out of capacity {}",
            self.capacity
        );
        let (w, b) = (value / 64, value % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `value`; returns `true` if it was present.
    pub fn remove(&mut self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        let (w, b) = (value / 64, value % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Whether `value` is in the set.
    pub fn contains(&self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        self.words[value / 64] & (1 << (value % 64)) != 0
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Number of elements in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self |= other`; returns `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &DenseBitSet) -> bool {
        self.check(other);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self &= other`; returns `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &DenseBitSet) -> bool {
        self.check(other);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a & b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self -= other`; returns `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn subtract(&mut self, other: &DenseBitSet) -> bool {
        self.check(other);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a & !b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Whether `self` and `other` share no elements.
    pub fn is_disjoint(&self, other: &DenseBitSet) -> bool {
        self.check(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Whether every element of `self` is in `other`.
    pub fn is_subset(&self, other: &DenseBitSet) -> bool {
        self.check(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the elements in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }

    fn check(&self, other: &DenseBitSet) {
        assert_eq!(
            self.capacity, other.capacity,
            "bit set capacity mismatch: {} vs {}",
            self.capacity, other.capacity
        );
    }
}

impl fmt::Debug for DenseBitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for DenseBitSet {
    /// Collects values into a set sized one past the maximum value.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let values: Vec<usize> = iter.into_iter().collect();
        let cap = values.iter().max().map_or(0, |m| m + 1);
        let mut s = DenseBitSet::new(cap);
        for v in values {
            s.insert(v);
        }
        s
    }
}

impl Extend<usize> for DenseBitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

/// Ascending iterator over a [`DenseBitSet`], produced by
/// [`DenseBitSet::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a DenseBitSet,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word * 64 + b);
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = DenseBitSet::new(130);
        assert!(s.insert(0));
        assert!(!s.insert(0));
        assert!(s.insert(129));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert!(!s.contains(0));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn full_and_clear() {
        let mut s = DenseBitSet::full(70);
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let mut a = DenseBitSet::new(10);
        a.extend([1, 3, 5]);
        let mut b = DenseBitSet::new(10);
        b.extend([3, 4]);

        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 3, 4, 5]);
        assert!(!u.union_with(&b)); // idempotent

        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3]);

        let mut d = a.clone();
        assert!(d.subtract(&b));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 5]);
    }

    #[test]
    fn subset_and_disjoint() {
        let a: DenseBitSet = [1usize, 2].into_iter().collect();
        let mut big = DenseBitSet::new(a.capacity());
        big.extend([1, 2]);
        assert!(a.is_subset(&big));
        let mut other = DenseBitSet::new(a.capacity());
        other.insert(0);
        assert!(a.is_disjoint(&other));
        assert!(!a.is_disjoint(&big));
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let mut s = DenseBitSet::new(200);
        s.extend([0, 63, 64, 127, 128, 199]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 127, 128, 199]);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        DenseBitSet::new(4).insert(4);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn capacity_mismatch_panics() {
        let mut a = DenseBitSet::new(4);
        let b = DenseBitSet::new(5);
        a.union_with(&b);
    }

    #[test]
    fn debug_shows_elements() {
        let s: DenseBitSet = [2usize, 7].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{2, 7}");
    }

    #[test]
    fn zero_capacity_is_fine() {
        let s = DenseBitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        let f = DenseBitSet::full(0);
        assert_eq!(f.count(), 0);
    }
}
