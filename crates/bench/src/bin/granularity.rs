//! **E5 — the §3 granularity trade-off.** "The thermal state is a
//! continuous function that can only be approximated, typically as a
//! discrete set of points … increasing the number of points would
//! increase accuracy, but at the cost of increased computation time."
//!
//! Sweeps the analysis grid from 1×1 to the full 8×8 and reports
//! prediction error against full-resolution ground truth plus wall-clock
//! analysis time. (Harness timings for the same sweep live in
//! `cargo bench -p tadfa-bench`.)
//!
//! Run: `cargo run -p tadfa-bench --bin granularity`

use std::time::Instant;
use tadfa_bench::{default_session, evaluate_policy, k3, print_table};
use tadfa_core::Session;
use tadfa_sim::compare_maps;
use tadfa_workloads::fibonacci;

fn main() {
    println!("== E5: analysis granularity vs accuracy vs cost ==");
    println!(
        "workload: fib(3000) — long enough to saturate, since the DFA's fixpoint is\n         the sustained thermal state; ground truth: traced co-simulation\n"
    );

    // Ground truth once (saturated run) through the default full-grid
    // session.
    let mut w = fibonacci();
    w.args = vec![3000];
    let mut truth_session = default_session();
    let truth =
        evaluate_policy(&mut truth_session, &w, "first-free", 42).expect("baseline evaluation");
    let fp = truth_session.register_file().floorplan().clone();

    let mut rows = Vec::new();
    for (gr, gc) in [(1, 1), (2, 2), (4, 4), (8, 4), (8, 8)] {
        // The granularity *is* the sweep variable, so each row builds its
        // own session; everything else (policy, δ, power) stays default.
        let mut session = Session::builder()
            .floorplan(8, 8)
            .granularity(gr, gc)
            .build()
            .expect("sweep granularities are valid");
        let start = Instant::now();
        let report = session.analyze(&w.func).expect("fib analyzes");
        let elapsed = start.elapsed();
        let acc = compare_maps(&report.predicted, &truth.measured, &fp);
        rows.push(vec![
            format!("{gr}x{gc}"),
            (gr * gc).to_string(),
            k3(acc.rms),
            format!(
                "{:.3}",
                if acc.pearson.is_nan() {
                    0.0
                } else {
                    acc.pearson
                }
            ),
            acc.hotspot_distance.to_string(),
            format!("{:.2}", elapsed.as_secs_f64() * 1e3),
            report.convergence().iterations().to_string(),
        ]);
    }

    print_table(
        &[
            "grid",
            "points",
            "rms(K)",
            "pearson",
            "hotspot dist",
            "time(ms)",
            "iters",
        ],
        &rows,
    );

    println!(
        "\nexpected shape: error falls monotonically with points; analysis time rises \
         (roughly linearly in points per the per-instruction RC step). The 1x1 grid \
         can only predict the average — its correlation is undefined/zero."
    );
}
