//! Criterion benches for the thermal DFA — the E5 cost curve (analysis
//! time vs granularity) plus the classic analyses for scale reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tadfa_core::{AnalysisGrid, ThermalDfa, ThermalDfaConfig};
use tadfa_dataflow::{Bitwidth, Liveness};
use tadfa_ir::Cfg;
use tadfa_regalloc::{allocate_linear_scan, FirstFree, RegAllocConfig};
use tadfa_thermal::{Floorplan, PowerModel, RcParams, RegisterFile};
use tadfa_workloads::{fibonacci, matmul};

fn bench_dfa_granularity(c: &mut Criterion) {
    let rf = RegisterFile::new(Floorplan::grid(8, 8));
    let mut func = fibonacci().func;
    let alloc =
        allocate_linear_scan(&mut func, &rf, &mut FirstFree, &RegAllocConfig::default())
            .expect("fib allocates");
    let pm = PowerModel::default();
    let cfg = ThermalDfaConfig::default();

    let mut group = c.benchmark_group("thermal_dfa_granularity");
    for (gr, gc) in [(1usize, 1usize), (2, 2), (4, 4), (8, 8)] {
        let grid = AnalysisGrid::coarsened(&rf, RcParams::default(), gr, gc);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{gr}x{gc}")),
            &grid,
            |b, grid| {
                b.iter(|| {
                    ThermalDfa::new(&func, &alloc.assignment, grid, pm, cfg)
                        .run()
                        .peak_temperature()
                });
            },
        );
    }
    group.finish();
}

fn bench_classic_analyses(c: &mut Criterion) {
    let func = matmul(5).func;
    let cfg = Cfg::compute(&func);

    c.bench_function("liveness_matmul", |b| {
        b.iter(|| Liveness::compute(&func, &cfg).num_vregs());
    });
    c.bench_function("bitwidth_matmul", |b| {
        b.iter(|| Bitwidth::compute(&func, &cfg).passes);
    });
}

fn bench_allocation_policies(c: &mut Criterion) {
    let rf = RegisterFile::new(Floorplan::grid(8, 8));
    let mut group = c.benchmark_group("allocation");
    for name in ["first-free", "chessboard", "round-robin"] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, name| {
            b.iter(|| {
                let mut f = matmul(4).func;
                let mut p = tadfa_regalloc::policy_by_name(name, &rf, 1).expect("known policy");
                allocate_linear_scan(&mut f, &rf, p.as_mut(), &RegAllocConfig::default())
                    .expect("matmul allocates")
                    .stats
                    .rounds
            });
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_dfa_granularity, bench_classic_analyses, bench_allocation_policies
}
criterion_main!(benches);
