//! # tadfa-core — thermal-aware data flow analysis (DAC 2009)
//!
//! The primary contribution of *Thermal-Aware Data Flow Analysis* (Ayala,
//! Atienza, Brisk — DAC 2009), reproduced in full:
//!
//! * [`ThermalDfa`] — the Fig. 2 fixpoint: a forward dataflow analysis
//!   whose fact is the register file's thermal state, re-estimated after
//!   every instruction until no change exceeds the user parameter δ;
//! * [`Convergence`] — the paper's explicit non-convergence signal ("if
//!   the analysis does not converge after a reasonable number of
//!   iterations … the thermal state of the program may be too difficult
//!   to predict at compile time", §4);
//! * [`AnalysisGrid`] — the §3 granularity knob: the thermal state is "a
//!   discrete set of points" whose density trades accuracy for analysis
//!   time;
//! * [`CriticalSet`] — "which variables are most likely to be involved"
//!   in hot spots (§4), feeding the optimizations in `tadfa-opt`;
//! * [`PredictiveDfa`] — the pre-register-allocation predictive analysis
//!   the paper proposes as its "more ambitious possibility".
//!
//! ## Example
//!
//! ```
//! use tadfa_ir::FunctionBuilder;
//! use tadfa_regalloc::{allocate_linear_scan, FirstFree, RegAllocConfig};
//! use tadfa_thermal::{Floorplan, PowerModel, RcParams, RegisterFile};
//! use tadfa_core::{AnalysisGrid, CriticalConfig, CriticalSet, ThermalDfa,
//!                  ThermalDfaConfig};
//!
//! // A small kernel...
//! let mut b = FunctionBuilder::new("kernel");
//! let x = b.param();
//! let y = b.mul(x, x);
//! let z = b.add(y, x);
//! b.ret(Some(z));
//! let mut f = b.finish();
//!
//! // ...allocated onto a 4×4 register file...
//! let rf = RegisterFile::new(Floorplan::grid(4, 4));
//! let alloc = allocate_linear_scan(
//!     &mut f, &rf, &mut FirstFree, &RegAllocConfig::default()).unwrap();
//!
//! // ...analysed at full granularity.
//! let grid = AnalysisGrid::full(&rf, RcParams::default());
//! let pm = PowerModel::default();
//! let result = ThermalDfa::new(&f, &alloc.assignment, &grid, pm,
//!                              ThermalDfaConfig::default()).run();
//! assert!(result.convergence.is_converged());
//!
//! let critical = CriticalSet::identify(
//!     &f, &alloc.assignment, &grid, &result, &pm, CriticalConfig::default());
//! assert!(!critical.ranked().is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod critical;
mod dfa;
mod grid;
mod predictive;

pub use config::{Convergence, MergeRule, ThermalDfaConfig};
pub use critical::{CriticalConfig, CriticalSet};
pub use dfa::{ThermalDfa, ThermalDfaResult};
pub use grid::AnalysisGrid;
pub use predictive::{PlacementPrior, PredictiveConfig, PredictiveDfa, PredictiveResult};
