//! # tadfa-bench — experiment harness
//!
//! Shared plumbing for the experiment binaries that regenerate every
//! figure of the paper (and the quantified extensions E2–E7 documented in
//! `DESIGN.md` / `EXPERIMENTS.md`). Each binary composes
//! [`evaluate_policy`] (workload → allocation under a policy → predicted
//! map via the thermal DFA → measured map via traced execution and
//! co-simulation) and prints aligned tables plus Fig. 1-style ASCII heat
//! maps.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use tadfa_core::{AnalysisGrid, ThermalDfa, ThermalDfaConfig, ThermalDfaResult};
use tadfa_ir::Function;
use tadfa_regalloc::{
    allocate_linear_scan, policy_by_name, Assignment, RegAllocConfig, RegAllocError,
};
use tadfa_sim::{simulate_trace, CosimConfig, Interpreter, SimError};
use tadfa_thermal::{Floorplan, MapStats, PowerModel, RcParams, RegisterFile, ThermalState};
use tadfa_workloads::Workload;

/// The canonical 8×8 (64-register) file used by the experiments, matching
/// the paper's Fig. 1 panels.
pub fn default_register_file() -> RegisterFile {
    RegisterFile::new(Floorplan::grid(8, 8))
}

/// Everything measured for one (workload, policy) pair.
#[derive(Clone, Debug)]
pub struct PolicyEval {
    /// Policy name.
    pub policy: String,
    /// Map predicted by the thermal DFA (on the physical floorplan).
    pub predicted: ThermalState,
    /// Map measured by traced execution + co-simulation.
    pub measured: ThermalState,
    /// Summary of the measured map.
    pub measured_stats: MapStats,
    /// Summary of the predicted map.
    pub predicted_stats: MapStats,
    /// The DFA result (convergence diagnostics).
    pub dfa: ThermalDfaResult,
    /// Dynamic cycles of the traced run.
    pub cycles: u64,
    /// Virtual registers spilled during allocation.
    pub spilled: usize,
    /// The final register assignment.
    pub assignment: Assignment,
    /// The allocated function (spill code included).
    pub func: Function,
}

/// Errors the harness can surface.
#[derive(Debug)]
pub enum HarnessError {
    /// Register allocation failed.
    Alloc(RegAllocError),
    /// Execution failed.
    Sim(SimError),
    /// Unknown policy name.
    UnknownPolicy(String),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Alloc(e) => write!(f, "allocation failed: {e}"),
            HarnessError::Sim(e) => write!(f, "simulation failed: {e}"),
            HarnessError::UnknownPolicy(p) => write!(f, "unknown policy '{p}'"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<RegAllocError> for HarnessError {
    fn from(e: RegAllocError) -> Self {
        HarnessError::Alloc(e)
    }
}

impl From<SimError> for HarnessError {
    fn from(e: SimError) -> Self {
        HarnessError::Sim(e)
    }
}

/// Runs one workload under one assignment policy: allocate, predict
/// (thermal DFA), execute+trace, co-simulate (measured), and summarise.
///
/// # Errors
///
/// Returns [`HarnessError`] on unknown policy, allocation failure, or
/// execution failure.
pub fn evaluate_policy(
    workload: &Workload,
    rf: &RegisterFile,
    policy_name: &str,
    seed: u64,
    dfa_config: ThermalDfaConfig,
) -> Result<PolicyEval, HarnessError> {
    let mut policy = policy_by_name(policy_name, rf, seed)
        .ok_or_else(|| HarnessError::UnknownPolicy(policy_name.to_string()))?;

    let mut func = workload.func.clone();
    let alloc = allocate_linear_scan(&mut func, rf, policy.as_mut(), &RegAllocConfig::default())?;

    // Predicted map: thermal DFA at full granularity.
    let grid = AnalysisGrid::full(rf, RcParams::default());
    let pm = PowerModel::default();
    let dfa_result = ThermalDfa::new(&func, &alloc.assignment, &grid, pm, dfa_config).run();
    let predicted = grid.upsample(&dfa_result.peak_map());

    // Measured map: traced execution + co-simulation.
    let mut interp = Interpreter::new(&func)
        .with_assignment(&alloc.assignment)
        .with_fuel(50_000_000);
    for (slot, data) in &workload.preload {
        interp = interp.with_slot_data(*slot, data.clone());
    }
    let exec = interp.run(&workload.args)?;
    let model = tadfa_thermal::ThermalModel::new(rf.floorplan().clone(), RcParams::default());
    let cosim = CosimConfig {
        seconds_per_cycle: dfa_config.seconds_per_cycle,
        time_scale: dfa_config.time_scale,
        ..CosimConfig::default()
    };
    let timeline = simulate_trace(&exec.trace, rf, &model, &pm, &cosim);

    let fp = rf.floorplan();
    Ok(PolicyEval {
        policy: policy_name.to_string(),
        measured_stats: MapStats::of(&timeline.peak_map, fp),
        predicted_stats: MapStats::of(&predicted, fp),
        predicted,
        measured: timeline.peak_map,
        dfa: dfa_result,
        cycles: exec.cycles,
        spilled: alloc.stats.spilled,
        assignment: alloc.assignment,
        func,
    })
}

/// Prints an aligned table: header row then each data row, columns padded
/// to the widest cell.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate().take(ncols) {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats Kelvin with two decimals.
pub fn k2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats Kelvin with three decimals.
pub fn k3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tadfa_workloads::fibonacci;

    #[test]
    fn evaluate_policy_produces_consistent_maps() {
        let rf = default_register_file();
        let w = fibonacci();
        let eval =
            evaluate_policy(&w, &rf, "first-free", 1, ThermalDfaConfig::default()).unwrap();
        assert_eq!(eval.predicted.len(), 64);
        assert_eq!(eval.measured.len(), 64);
        assert!(eval.measured_stats.peak > 318.0);
        assert!(eval.predicted_stats.peak > 318.0);
        assert!(eval.cycles > 0);
        assert!(eval.dfa.convergence.is_converged());
    }

    #[test]
    fn unknown_policy_is_reported() {
        let rf = default_register_file();
        let w = fibonacci();
        let e = evaluate_policy(&w, &rf, "nonsense", 1, ThermalDfaConfig::default());
        assert!(matches!(e, Err(HarnessError::UnknownPolicy(_))));
    }

    #[test]
    fn policies_differ_in_measured_spread() {
        let rf = default_register_file();
        let w = fibonacci();
        let ff =
            evaluate_policy(&w, &rf, "first-free", 1, ThermalDfaConfig::default()).unwrap();
        let cb =
            evaluate_policy(&w, &rf, "chessboard", 1, ThermalDfaConfig::default()).unwrap();
        // Both valid; the exact ordering is asserted in the E1 shape
        // integration test — here we only require both produced heat.
        assert!(ff.measured_stats.peak > 318.0);
        assert!(cb.measured_stats.peak > 318.0);
    }
}
