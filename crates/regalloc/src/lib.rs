//! # tadfa-regalloc — register allocation with thermal assignment policies
//!
//! The allocation substrate of the *Thermal-Aware Data Flow Analysis*
//! reproduction (DAC 2009). The paper's motivating example (§2, Fig. 1)
//! is entirely about *which* physical register an allocator hands out:
//!
//! * [`FirstFree`] — the ordered-list default that "chooses the same
//!   small set of registers again and again" → Fig. 1(a) hot spots;
//! * [`RandomPolicy`] — Fig. 1(b);
//! * [`Chessboard`] — Fig. 1(c), homogenised while pressure ≤ half the
//!   file;
//! * [`RoundRobin`], [`FarthestSpread`], [`ColdestFirst`] — the
//!   spreading policies §4 motivates, the last one driven by an external
//!   heat map (e.g. the thermal DFA's prediction).
//!
//! Two allocators host the policies: [`allocate_linear_scan`] and
//! [`allocate_coloring`]; both spill through
//! [`rewrite_spills`] and re-run until allocatable.
//!
//! ## Example
//!
//! ```
//! use tadfa_ir::FunctionBuilder;
//! use tadfa_regalloc::{allocate_linear_scan, Chessboard, RegAllocConfig};
//! use tadfa_thermal::{Floorplan, RegisterFile};
//!
//! let mut b = FunctionBuilder::new("f");
//! let x = b.param();
//! let y = b.add(x, x);
//! let z = b.add(y, x);
//! b.ret(Some(z));
//! let mut f = b.finish();
//!
//! let rf = RegisterFile::new(Floorplan::grid(4, 4));
//! let result = allocate_linear_scan(
//!     &mut f, &rf, &mut Chessboard::default(), &RegAllocConfig::default())?;
//! // Low pressure: every assigned register sits on a black cell.
//! for (_, preg) in result.assignment.iter() {
//!     assert!(rf.floorplan().is_black(rf.cell_of(preg)));
//! }
//! # Ok::<(), tadfa_regalloc::RegAllocError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod assignment;
mod coloring;
mod interference;
mod linear_scan;
mod policy;
mod spill;

pub use assignment::{AllocStats, AllocationResult, Assignment, RegAllocError};
pub use coloring::allocate_coloring;
pub use interference::InterferenceGraph;
pub use linear_scan::{allocate_linear_scan, validate_assignment, RegAllocConfig};
pub use policy::{
    policy_by_name, AssignmentPolicy, Chessboard, ChoiceContext, ColdestFirst, FarthestSpread,
    FirstFree, RandomPolicy, RoundRobin, POLICY_NAMES,
};
pub use spill::rewrite_spills;
