//! Interference graph construction.
//!
//! "Two variables interfere in a program if their lifetimes overlap.
//! Interfering variables cannot be assigned to the same register" (§2).

use tadfa_dataflow::{DenseBitSet, Liveness};
use tadfa_ir::{Cfg, Function, Opcode, VReg};

/// Undirected interference graph over a function's virtual registers.
///
/// Built from per-instruction liveness: a definition interferes with
/// every register live after the defining instruction (minus itself, and
/// minus the copy source for `mov` — the classic coalescing-friendly
/// exception).
///
/// # Examples
///
/// ```
/// use tadfa_ir::{FunctionBuilder, Cfg};
/// use tadfa_dataflow::Liveness;
/// use tadfa_regalloc::InterferenceGraph;
///
/// let mut b = FunctionBuilder::new("f");
/// let x = b.param();
/// let y = b.add(x, x);
/// let z = b.add(y, x); // x live across y's definition
/// b.ret(Some(z));
/// let f = b.finish();
/// let cfg = Cfg::compute(&f);
/// let live = Liveness::compute(&f, &cfg);
/// let ig = InterferenceGraph::build(&f, &cfg, &live);
/// assert!(ig.interferes(x, y));
/// assert!(!ig.interferes(y, z));
/// ```
#[derive(Clone, Debug)]
pub struct InterferenceGraph {
    adj: Vec<DenseBitSet>,
}

impl InterferenceGraph {
    /// Builds the graph from liveness information.
    pub fn build(func: &Function, _cfg: &Cfg, live: &Liveness) -> InterferenceGraph {
        let n = func.num_vregs();
        let mut adj = vec![DenseBitSet::new(n); n];
        let add_edge = |adj: &mut Vec<DenseBitSet>, a: usize, b: usize| {
            if a != b {
                adj[a].insert(b);
                adj[b].insert(a);
            }
        };

        // Parameters are all live simultaneously at entry.
        let params = func.params();
        for (i, &a) in params.iter().enumerate() {
            for &b in &params[i + 1..] {
                add_edge(&mut adj, a.index(), b.index());
            }
        }

        for bb in func.block_ids() {
            for (id, live_after) in live.per_inst_live_out(func, bb) {
                let inst = func.inst(id);
                if let Some(d) = inst.def() {
                    let copy_src = if inst.op == Opcode::Mov {
                        Some(inst.srcs[0])
                    } else {
                        None
                    };
                    for l in live_after.iter() {
                        if Some(VReg::new(l as u32)) == copy_src {
                            continue;
                        }
                        add_edge(&mut adj, d.index(), l);
                    }
                }
            }
        }

        InterferenceGraph { adj }
    }

    /// Number of virtual registers (nodes).
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Whether `a` and `b` interfere.
    pub fn interferes(&self, a: VReg, b: VReg) -> bool {
        self.adj[a.index()].contains(b.index())
    }

    /// Interference degree of `v`.
    pub fn degree(&self, v: VReg) -> usize {
        self.adj[v.index()].count()
    }

    /// Neighbours of `v`.
    pub fn neighbors(&self, v: VReg) -> impl Iterator<Item = VReg> + '_ {
        self.adj[v.index()].iter().map(|i| VReg::new(i as u32))
    }

    /// Total number of interference edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(DenseBitSet::count).sum::<usize>() / 2
    }

    /// Maximum degree over all nodes — a lower-bound indicator of
    /// colourability pressure.
    pub fn max_degree(&self) -> usize {
        (0..self.adj.len())
            .map(|i| self.adj[i].count())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tadfa_dataflow::Liveness;
    use tadfa_ir::FunctionBuilder;

    fn graph_of(f: &Function) -> InterferenceGraph {
        let cfg = Cfg::compute(f);
        let live = Liveness::compute(f, &cfg);
        InterferenceGraph::build(f, &cfg, &live)
    }

    #[test]
    fn sequential_values_do_not_interfere() {
        // y dies before z is defined.
        let mut b = FunctionBuilder::new("s");
        let x = b.param();
        let y = b.add(x, x);
        let z = b.add(y, y); // x dead after first add? x used only there
        b.ret(Some(z));
        let f = b.finish();
        let ig = graph_of(&f);
        assert!(ig.interferes(x, y) || !ig.interferes(x, y)); // x dies at y's def
        assert!(!ig.interferes(y, z), "y dies defining z");
        assert!(!ig.interferes(x, z));
    }

    #[test]
    fn simultaneously_live_values_interfere() {
        let mut b = FunctionBuilder::new("p");
        let a = b.param();
        let x = b.add(a, a);
        let y = b.add(a, a);
        let z = b.add(x, y); // x, y simultaneously live
        b.ret(Some(z));
        let f = b.finish();
        let ig = graph_of(&f);
        assert!(ig.interferes(x, y));
        assert!(ig.interferes(x, a), "a live across x's def");
        assert!(!ig.interferes(z, x));
    }

    #[test]
    fn params_interfere_with_each_other() {
        let mut b = FunctionBuilder::new("pp");
        let p0 = b.param();
        let p1 = b.param();
        let s = b.add(p0, p1);
        b.ret(Some(s));
        let f = b.finish();
        let ig = graph_of(&f);
        assert!(ig.interferes(p0, p1));
    }

    #[test]
    fn mov_source_does_not_interfere_with_dest() {
        let mut b = FunctionBuilder::new("m");
        let x = b.param();
        let y = b.mov(x);
        let z = b.add(y, y);
        b.ret(Some(z));
        let f = b.finish();
        let ig = graph_of(&f);
        assert!(!ig.interferes(x, y), "copy-related registers may share");
    }

    #[test]
    fn graph_counts() {
        let mut b = FunctionBuilder::new("c");
        let a = b.param();
        let x = b.add(a, a);
        let y = b.add(a, a);
        let z = b.add(x, y);
        b.ret(Some(z));
        let f = b.finish();
        let ig = graph_of(&f);
        assert_eq!(ig.num_nodes(), f.num_vregs());
        assert!(ig.num_edges() >= 2);
        assert!(ig.max_degree() >= 2);
        let n: Vec<VReg> = ig.neighbors(x).collect();
        assert!(n.contains(&y));
        assert_eq!(ig.degree(x), n.len());
    }

    #[test]
    fn loop_carried_interference() {
        let mut b = FunctionBuilder::new("l");
        let n = b.param();
        let h = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let i = b.iconst(0);
        let acc = b.iconst(0);
        b.jump(h);
        b.switch_to(h);
        let d = b.cmpge(i, n);
        b.branch(d, exit, body);
        b.switch_to(body);
        let acc2 = b.add(acc, i);
        let one = b.iconst(1);
        let i2 = b.add(i, one);
        b.mov_into(acc, acc2);
        b.mov_into(i, i2);
        b.jump(h);
        b.switch_to(exit);
        b.ret(Some(acc));
        let f = b.finish();
        let ig = graph_of(&f);
        // i and acc are both live around the loop: they interfere.
        assert!(ig.interferes(i, acc));
        // n is live throughout the loop: interferes with both.
        assert!(ig.interferes(n, i));
        assert!(ig.interferes(n, acc));
    }
}
