//! The IR interpreter: concrete execution with cycle accounting and
//! register access tracing.

use crate::error::SimError;
use crate::trace::{AccessEvent, AccessKind, AccessTrace};
use tadfa_ir::{Function, MemSlot, Opcode, Terminator, VReg};
use tadfa_regalloc::Assignment;

/// Result of one execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExecResult {
    /// The returned value, if the function returned one.
    pub ret: Option<i64>,
    /// Total cycles consumed (sum of instruction latencies).
    pub cycles: u64,
    /// Dynamic instruction count (terminators included).
    pub insts_executed: u64,
    /// The register access trace (empty when executed without an
    /// assignment).
    pub trace: AccessTrace,
    /// Final memory contents per slot.
    pub memory: Vec<Vec<i64>>,
}

/// An interpreter for one function.
///
/// Arithmetic is wrapping two's complement; division and remainder by
/// zero yield 0; shifts mask their amount to 0..64. Memory slots are
/// zero-initialised unless preloaded.
///
/// With an [`Assignment`] attached, every operand read and result write
/// is recorded as a physical-register access event — the ground-truth
/// trace that feedback-driven thermal evaluation consumes (and that the
/// paper's compile-time analysis wants to make unnecessary).
///
/// # Examples
///
/// ```
/// use tadfa_ir::FunctionBuilder;
/// use tadfa_sim::Interpreter;
///
/// let mut b = FunctionBuilder::new("sq");
/// let x = b.param();
/// let y = b.mul(x, x);
/// b.ret(Some(y));
/// let f = b.finish();
///
/// let r = Interpreter::new(&f).run(&[9])?;
/// assert_eq!(r.ret, Some(81));
/// # Ok::<(), tadfa_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct Interpreter<'a> {
    func: &'a Function,
    assignment: Option<&'a Assignment>,
    fuel: u64,
    preloaded: Vec<(MemSlot, Vec<i64>)>,
}

impl<'a> Interpreter<'a> {
    /// An interpreter with a 10-million-cycle budget and no tracing.
    pub fn new(func: &'a Function) -> Interpreter<'a> {
        Interpreter {
            func,
            assignment: None,
            fuel: 10_000_000,
            preloaded: Vec::new(),
        }
    }

    /// Enables access tracing through the given assignment.
    pub fn with_assignment(mut self, assignment: &'a Assignment) -> Interpreter<'a> {
        self.assignment = Some(assignment);
        self
    }

    /// Sets the cycle budget.
    pub fn with_fuel(mut self, fuel: u64) -> Interpreter<'a> {
        self.fuel = fuel;
        self
    }

    /// Preloads a memory slot's contents (shorter data is zero-padded).
    pub fn with_slot_data(mut self, slot: MemSlot, data: Vec<i64>) -> Interpreter<'a> {
        self.preloaded.push((slot, data));
        self
    }

    /// Executes the function.
    ///
    /// # Errors
    ///
    /// * [`SimError::ArgCount`] on arity mismatch;
    /// * [`SimError::MemoryOutOfBounds`] for loads/stores outside a slot;
    /// * [`SimError::OutOfFuel`] when the cycle budget runs out;
    /// * [`SimError::MissingTerminator`] for malformed control flow.
    pub fn run(&self, args: &[i64]) -> Result<ExecResult, SimError> {
        let func = self.func;
        if args.len() != func.params().len() {
            return Err(SimError::ArgCount {
                expected: func.params().len(),
                actual: args.len(),
            });
        }

        let mut regs = vec![0i64; func.num_vregs()];
        for (&p, &a) in func.params().iter().zip(args) {
            regs[p.index()] = a;
        }

        let mut memory: Vec<Vec<i64>> = func.slots().iter().map(|s| vec![0i64; s.size]).collect();
        for (slot, data) in &self.preloaded {
            let m = &mut memory[slot.index()];
            for (i, &v) in data.iter().enumerate().take(m.len()) {
                m[i] = v;
            }
        }

        let mut trace = AccessTrace::new();
        let mut cycles: u64 = 0;
        let mut executed: u64 = 0;
        let mut block = func.entry();

        'blocks: loop {
            for &id in func.block(block).insts() {
                let inst = func.inst(id);
                if cycles >= self.fuel {
                    return Err(SimError::OutOfFuel { fuel: self.fuel });
                }

                // Trace operand reads, then the write.
                if let Some(asg) = self.assignment {
                    for &u in inst.uses() {
                        if let Some(p) = asg.preg_of(u) {
                            trace.push(AccessEvent {
                                cycle: cycles,
                                reg: p,
                                kind: AccessKind::Read,
                            });
                        }
                    }
                }

                let get = |v: VReg| regs[v.index()];
                let value: Option<i64> = match inst.op {
                    Opcode::Const => Some(inst.imm.unwrap_or(0)),
                    Opcode::Mov => Some(get(inst.srcs[0])),
                    Opcode::Add => Some(get(inst.srcs[0]).wrapping_add(get(inst.srcs[1]))),
                    Opcode::Sub => Some(get(inst.srcs[0]).wrapping_sub(get(inst.srcs[1]))),
                    Opcode::Mul => Some(get(inst.srcs[0]).wrapping_mul(get(inst.srcs[1]))),
                    Opcode::Div => {
                        let d = get(inst.srcs[1]);
                        Some(if d == 0 {
                            0
                        } else {
                            get(inst.srcs[0]).wrapping_div(d)
                        })
                    }
                    Opcode::Rem => {
                        let d = get(inst.srcs[1]);
                        Some(if d == 0 {
                            0
                        } else {
                            get(inst.srcs[0]).wrapping_rem(d)
                        })
                    }
                    Opcode::And => Some(get(inst.srcs[0]) & get(inst.srcs[1])),
                    Opcode::Or => Some(get(inst.srcs[0]) | get(inst.srcs[1])),
                    Opcode::Xor => Some(get(inst.srcs[0]) ^ get(inst.srcs[1])),
                    Opcode::Shl => {
                        Some(get(inst.srcs[0]).wrapping_shl(get(inst.srcs[1]) as u32 & 63))
                    }
                    Opcode::Shr => {
                        Some(get(inst.srcs[0]).wrapping_shr(get(inst.srcs[1]) as u32 & 63))
                    }
                    Opcode::Neg => Some(get(inst.srcs[0]).wrapping_neg()),
                    Opcode::Not => Some(!get(inst.srcs[0])),
                    Opcode::CmpEq => Some((get(inst.srcs[0]) == get(inst.srcs[1])) as i64),
                    Opcode::CmpNe => Some((get(inst.srcs[0]) != get(inst.srcs[1])) as i64),
                    Opcode::CmpLt => Some((get(inst.srcs[0]) < get(inst.srcs[1])) as i64),
                    Opcode::CmpLe => Some((get(inst.srcs[0]) <= get(inst.srcs[1])) as i64),
                    Opcode::CmpGt => Some((get(inst.srcs[0]) > get(inst.srcs[1])) as i64),
                    Opcode::CmpGe => Some((get(inst.srcs[0]) >= get(inst.srcs[1])) as i64),
                    Opcode::Select => Some(if get(inst.srcs[0]) != 0 {
                        get(inst.srcs[1])
                    } else {
                        get(inst.srcs[2])
                    }),
                    Opcode::Load => {
                        let slot = inst.slot.expect("verified load");
                        let idx = get(inst.srcs[0]);
                        let m = &memory[slot.index()];
                        if idx < 0 || idx as usize >= m.len() {
                            return Err(SimError::MemoryOutOfBounds {
                                slot,
                                index: idx,
                                size: m.len(),
                            });
                        }
                        Some(m[idx as usize])
                    }
                    Opcode::Store => {
                        let slot = inst.slot.expect("verified store");
                        let idx = get(inst.srcs[0]);
                        let val = get(inst.srcs[1]);
                        let m = &mut memory[slot.index()];
                        if idx < 0 || idx as usize >= m.len() {
                            return Err(SimError::MemoryOutOfBounds {
                                slot,
                                index: idx,
                                size: m.len(),
                            });
                        }
                        m[idx as usize] = val;
                        None
                    }
                    Opcode::Nop => None,
                    Opcode::Call => {
                        return Err(SimError::UnsupportedCall {
                            callee: inst.callee_name().unwrap_or("?").to_string(),
                        });
                    }
                };

                if let (Some(d), Some(v)) = (inst.def(), value) {
                    regs[d.index()] = v;
                    if let Some(asg) = self.assignment {
                        if let Some(p) = asg.preg_of(d) {
                            trace.push(AccessEvent {
                                cycle: cycles,
                                reg: p,
                                kind: AccessKind::Write,
                            });
                        }
                    }
                }

                cycles += inst.op.latency() as u64;
                executed += 1;
            }

            let term = func
                .terminator(block)
                .ok_or(SimError::MissingTerminator(block))?;
            if cycles >= self.fuel {
                return Err(SimError::OutOfFuel { fuel: self.fuel });
            }
            if let Some(asg) = self.assignment {
                for u in term.uses() {
                    if let Some(p) = asg.preg_of(u) {
                        trace.push(AccessEvent {
                            cycle: cycles,
                            reg: p,
                            kind: AccessKind::Read,
                        });
                    }
                }
            }
            cycles += term.latency() as u64;
            executed += 1;

            match *term {
                Terminator::Jump(t) => block = t,
                Terminator::Branch {
                    cond,
                    then_dest,
                    else_dest,
                } => {
                    block = if regs[cond.index()] != 0 {
                        then_dest
                    } else {
                        else_dest
                    };
                }
                Terminator::Ret(v) => {
                    return Ok(ExecResult {
                        ret: v.map(|v| regs[v.index()]),
                        cycles,
                        insts_executed: executed,
                        trace,
                        memory,
                    });
                }
            }
            continue 'blocks;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tadfa_ir::FunctionBuilder;
    use tadfa_regalloc::{allocate_linear_scan, FirstFree, RegAllocConfig};
    use tadfa_thermal::{Floorplan, RegisterFile};

    #[test]
    fn arithmetic_semantics() {
        let mut b = FunctionBuilder::new("a");
        let x = b.param();
        let y = b.param();
        let sum = b.add(x, y);
        let dif = b.sub(sum, y);
        let prod = b.mul(dif, y);
        let quot = b.div(prod, x);
        let r = b.rem(prod, y);
        let t = b.add(quot, r);
        b.ret(Some(t));
        let f = b.finish();
        // x=7 y=3: sum=10 dif=7 prod=21 quot=3 rem=0 t=3
        let r = Interpreter::new(&f).run(&[7, 3]).unwrap();
        assert_eq!(r.ret, Some(3));
        assert!(r.cycles > 0);
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let mut b = FunctionBuilder::new("d0");
        let x = b.param();
        let zero = b.iconst(0);
        let q = b.div(x, zero);
        let m = b.rem(x, zero);
        let s = b.add(q, m);
        b.ret(Some(s));
        let f = b.finish();
        assert_eq!(Interpreter::new(&f).run(&[42]).unwrap().ret, Some(0));
    }

    #[test]
    fn bitwise_and_shifts() {
        let mut b = FunctionBuilder::new("bits");
        let x = b.param();
        let k3 = b.iconst(3);
        let shifted = b.shl(x, k3);
        let back = b.shr(shifted, k3);
        let anded = b.and(back, x);
        let ored = b.or(anded, k3);
        let xored = b.xor(ored, k3);
        let noted = b.not(xored);
        let negd = b.neg(noted);
        b.ret(Some(negd));
        let f = b.finish();
        // x=8: shifted=64 back=8 anded=8 ored=11 xored=8 noted=-9 negd=9
        assert_eq!(Interpreter::new(&f).run(&[8]).unwrap().ret, Some(9));
    }

    #[test]
    fn comparisons_and_select() {
        let mut b = FunctionBuilder::new("cmp");
        let x = b.param();
        let y = b.param();
        let lt = b.cmplt(x, y);
        let big = b.select(lt, y, x);
        b.ret(Some(big));
        let f = b.finish();
        assert_eq!(Interpreter::new(&f).run(&[3, 9]).unwrap().ret, Some(9));
        assert_eq!(Interpreter::new(&f).run(&[9, 3]).unwrap().ret, Some(9));
    }

    #[test]
    fn loop_sums_correctly() {
        // sum 0..n
        let mut b = FunctionBuilder::new("sum");
        let n = b.param();
        let h = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let acc = b.iconst(0);
        let i = b.iconst(0);
        b.jump(h);
        b.switch_to(h);
        let done = b.cmpge(i, n);
        b.branch(done, exit, body);
        b.switch_to(body);
        let acc2 = b.add(acc, i);
        let one = b.iconst(1);
        let i2 = b.add(i, one);
        b.mov_into(acc, acc2);
        b.mov_into(i, i2);
        b.jump(h);
        b.switch_to(exit);
        b.ret(Some(acc));
        let f = b.finish();
        let r = Interpreter::new(&f).run(&[10]).unwrap();
        assert_eq!(r.ret, Some(45));
        assert!(r.insts_executed > 30);
    }

    #[test]
    fn memory_roundtrip_and_preload() {
        let mut b = FunctionBuilder::new("mem");
        let slot = b.slot("buf", 8);
        let i = b.iconst(2);
        let v = b.load(slot, i);
        let two = b.iconst(2);
        let w = b.mul(v, two);
        b.store(slot, i, w);
        b.ret(Some(w));
        let f = b.finish();
        let r = Interpreter::new(&f)
            .with_slot_data(slot, vec![0, 0, 21, 0])
            .run(&[])
            .unwrap();
        assert_eq!(r.ret, Some(42));
        assert_eq!(r.memory[slot.index()][2], 42);
    }

    #[test]
    fn memory_bounds_checked() {
        let mut b = FunctionBuilder::new("oob");
        let slot = b.slot("buf", 4);
        let i = b.iconst(9);
        let v = b.load(slot, i);
        b.ret(Some(v));
        let f = b.finish();
        let e = Interpreter::new(&f).run(&[]).unwrap_err();
        assert!(matches!(
            e,
            SimError::MemoryOutOfBounds {
                index: 9,
                size: 4,
                ..
            }
        ));
    }

    #[test]
    fn fuel_stops_infinite_loops() {
        let mut b = FunctionBuilder::new("inf");
        let entry = b.current_block();
        b.jump(entry);
        let f = b.finish();
        let e = Interpreter::new(&f).with_fuel(1000).run(&[]).unwrap_err();
        assert!(matches!(e, SimError::OutOfFuel { fuel: 1000 }));
    }

    #[test]
    fn arg_count_checked() {
        let mut b = FunctionBuilder::new("args");
        let x = b.param();
        b.ret(Some(x));
        let f = b.finish();
        let e = Interpreter::new(&f).run(&[]).unwrap_err();
        assert!(matches!(
            e,
            SimError::ArgCount {
                expected: 1,
                actual: 0
            }
        ));
    }

    #[test]
    fn trace_records_assigned_accesses() {
        let mut b = FunctionBuilder::new("tr");
        let x = b.param();
        let y = b.add(x, x);
        let z = b.add(y, y);
        b.ret(Some(z));
        let mut f = b.finish();
        let rf = RegisterFile::new(Floorplan::grid(4, 4));
        let alloc =
            allocate_linear_scan(&mut f, &rf, &mut FirstFree, &RegAllocConfig::default()).unwrap();
        let r = Interpreter::new(&f)
            .with_assignment(&alloc.assignment)
            .run(&[5])
            .unwrap();
        assert_eq!(r.ret, Some(20));
        // 2 adds × (2 reads + 1 write) + ret read = 7 events.
        assert_eq!(r.trace.len(), 7);
        assert!(r.trace.last_cycle() <= r.cycles);
        // Untraced run produces no events.
        let r2 = Interpreter::new(&f).run(&[5]).unwrap();
        assert!(r2.trace.is_empty());
    }

    #[test]
    fn cycles_account_for_latency() {
        let mut b = FunctionBuilder::new("lat");
        let x = b.param();
        let y = b.mul(x, x); // 3 cycles
        b.ret(Some(y)); // 1 cycle
        let f = b.finish();
        let r = Interpreter::new(&f).run(&[2]).unwrap();
        assert_eq!(r.cycles, 4);
        assert_eq!(r.insts_executed, 2);
    }

    #[test]
    fn wrapping_arithmetic() {
        let mut b = FunctionBuilder::new("wrap");
        let x = b.param();
        let one = b.iconst(1);
        let s = b.add(x, one);
        b.ret(Some(s));
        let f = b.finish();
        let r = Interpreter::new(&f).run(&[i64::MAX]).unwrap();
        assert_eq!(r.ret, Some(i64::MIN));
    }
}
