//! Per-function thermal summaries — the unit of interprocedural
//! analysis.
//!
//! A [`ThermalSummary`] captures *what a function's execution does to
//! the RC model*: the ordered trace of sparse power deposits and step
//! schedules its instructions walk through, flattened over the
//! function's blocks in reverse post-order (each block contributing one
//! iteration). Applying the summary to a thermal state advances it
//! exactly as stepping through the function body would under the same
//! flattened order — for **any** entry state, because the trace replays
//! the same solver entry point ([`CompiledModel::step_sparse_into`])
//! the intraprocedural sweeps use, including fused leakage feedback.
//!
//! That exactness is what makes summaries compose: a callee's summary
//! is spliced verbatim into its callers' summaries (transitively), and
//! the thermal DFA replays it at every call site instead of re-walking
//! the callee's body. Summaries are content-keyed by the same
//! [`signature`](crate::ThermalDfa::signature) hash that keys whole
//! fixpoint solves, so the [`SolveCache`](crate::SolveCache) memoises
//! them across callers, analyses, and service requests: a hot callee's
//! trace is flattened once, no matter how many functions call it.

use crate::codec::{ByteReader, ByteWriter, CodecError};
use tadfa_thermal::{
    CompiledModel, LeakageParams, SolverMode, StepSchedule, StepScratch, ThermalState,
};

/// One RC step of a summary trace: a slice of the summary's deposit
/// table plus the precomputed sub-step schedule for its duration.
#[derive(Copy, Clone, Debug)]
pub(crate) struct SummaryStep {
    pub(crate) start: u32,
    pub(crate) end: u32,
    pub(crate) sched: StepSchedule,
}

/// The memoisable thermal effect of one function: an ordered, flattened
/// deposit trace that advances any entry state exactly as analysing the
/// function body (blocks once each, in reverse post-order) would.
///
/// Built by [`ThermalDfa::summarize`](crate::ThermalDfa::summarize);
/// applied at call sites by the module-level analysis entry points
/// ([`Session::analyze_module`](crate::Session::analyze_module),
/// [`Engine::analyze_module`](crate::engine::Engine::analyze_module)).
#[derive(Clone, Debug)]
pub struct ThermalSummary {
    steps: Vec<SummaryStep>,
    deposits: Vec<(u32, f64)>,
    leak: LeakageParams,
    leakage_feedback: bool,
    num_points: usize,
    signature: u128,
}

impl ThermalSummary {
    pub(crate) fn from_parts(
        steps: Vec<SummaryStep>,
        deposits: Vec<(u32, f64)>,
        leak: LeakageParams,
        leakage_feedback: bool,
        num_points: usize,
        signature: u128,
    ) -> ThermalSummary {
        ThermalSummary {
            steps,
            deposits,
            leak,
            leakage_feedback,
            num_points,
            signature,
        }
    }

    /// Number of analysis points the summary's deposits address — must
    /// match the caller's grid.
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// Number of RC steps replaying the summary advances the state by —
    /// one per instruction and terminator of the summarised function,
    /// plus every step of every (transitively) spliced callee.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// The content signature the summary was computed under — the same
    /// quantized power-profile hash that keys whole fixpoint solves
    /// ([`ThermalDfa::signature`](crate::ThermalDfa::signature)), so
    /// two functions with identical bodies share one cached summary.
    pub fn signature(&self) -> u128 {
        self.signature
    }

    /// Replays the trace on `state` — the call-site transfer function.
    pub(crate) fn apply(
        &self,
        state: &mut ThermalState,
        compiled: &CompiledModel,
        mode: SolverMode,
        step: &mut StepScratch,
    ) {
        let leak = self.leakage_feedback.then_some(&self.leak);
        for s in &self.steps {
            let deposits = &self.deposits[s.start as usize..s.end as usize];
            compiled.step_sparse_mode_into(state, deposits, &s.sched, leak, mode, step);
        }
    }

    /// Appends this summary's trace to a caller's under-construction
    /// trace, rebasing deposit spans — how callee effects become part
    /// of caller summaries (transitive composition).
    pub(crate) fn splice_into(&self, steps: &mut Vec<SummaryStep>, deposits: &mut Vec<(u32, f64)>) {
        for s in &self.steps {
            let start = deposits.len() as u32;
            deposits.extend_from_slice(&self.deposits[s.start as usize..s.end as usize]);
            steps.push(SummaryStep {
                start,
                end: deposits.len() as u32,
                sched: s.sched,
            });
        }
    }

    /// Serialises the summary into the spill codec (exact `f64` bit
    /// patterns — see [`crate::codec`]). [`decode`](Self::decode)
    /// reconstructs a summary whose replay is bit-identical.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u8(crate::codec::CODEC_VERSION);
        w.put_u128(self.signature);
        w.put_u64(self.num_points as u64);
        w.put_u8(u8::from(self.leakage_feedback));
        w.put_f64(self.leak.per_cell);
        w.put_f64(self.leak.temp_coeff);
        w.put_f64(self.leak.reference_temp);
        w.put_u64(self.steps.len() as u64);
        for s in &self.steps {
            w.put_u32(s.start);
            w.put_u32(s.end);
            w.put_u32(s.sched.n_sub());
            w.put_f64(s.sched.sub_step());
        }
        w.put_u64(self.deposits.len() as u64);
        for &(idx, watts) in &self.deposits {
            w.put_u32(idx);
            w.put_f64(watts);
        }
        w.into_bytes()
    }

    /// Reconstructs a summary from [`encode`](Self::encode)d bytes.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on truncated, corrupted, or
    /// version-mismatched input — never panics, whatever the bytes.
    pub fn decode(bytes: &[u8]) -> Result<ThermalSummary, CodecError> {
        let mut r = ByteReader::new(bytes);
        let version = r.get_u8()?;
        if version != crate::codec::CODEC_VERSION {
            return Err(CodecError::Version(version));
        }
        let signature = r.get_u128()?;
        let num_points = r.get_u64()? as usize;
        let leakage_feedback = match r.get_u8()? {
            0 => false,
            1 => true,
            t => return Err(CodecError::BadTag(t)),
        };
        let leak = LeakageParams {
            per_cell: r.get_f64()?,
            temp_coeff: r.get_f64()?,
            reference_temp: r.get_f64()?,
        };
        let n = r.get_u64()?;
        let n = r.checked_len(n, 20)?;
        let mut steps = Vec::with_capacity(n);
        for _ in 0..n {
            let start = r.get_u32()?;
            let end = r.get_u32()?;
            if start > end {
                return Err(CodecError::BadLength(u64::from(start)));
            }
            let n_sub = r.get_u32()?;
            let sub_step = r.get_f64()?;
            steps.push(SummaryStep {
                start,
                end,
                sched: StepSchedule::from_raw(n_sub, sub_step),
            });
        }
        let n = r.get_u64()?;
        let n = r.checked_len(n, 12)?;
        let mut deposits = Vec::with_capacity(n);
        for _ in 0..n {
            deposits.push((r.get_u32()?, r.get_f64()?));
        }
        // Every span must address real deposits, or replaying would
        // index out of bounds.
        if let Some(s) = steps.iter().find(|s| s.end as usize > deposits.len()) {
            return Err(CodecError::BadLength(u64::from(s.end)));
        }
        r.finish()?;
        Ok(ThermalSummary {
            steps,
            deposits,
            leak,
            leakage_feedback,
            num_points,
            signature,
        })
    }
}
