//! Per-function thermal summaries — the unit of interprocedural
//! analysis.
//!
//! A [`ThermalSummary`] captures *what a function's execution does to
//! the RC model*: the ordered trace of sparse power deposits and step
//! schedules its instructions walk through, flattened over the
//! function's blocks in reverse post-order (each block contributing one
//! iteration). Applying the summary to a thermal state advances it
//! exactly as stepping through the function body would under the same
//! flattened order — for **any** entry state, because the trace replays
//! the same solver entry point ([`CompiledModel::step_sparse_into`])
//! the intraprocedural sweeps use, including fused leakage feedback.
//!
//! That exactness is what makes summaries compose: a callee's summary
//! is spliced verbatim into its callers' summaries (transitively), and
//! the thermal DFA replays it at every call site instead of re-walking
//! the callee's body. Summaries are content-keyed by the same
//! [`signature`](crate::ThermalDfa::signature) hash that keys whole
//! fixpoint solves, so the [`SolveCache`](crate::SolveCache) memoises
//! them across callers, analyses, and service requests: a hot callee's
//! trace is flattened once, no matter how many functions call it.

use tadfa_thermal::{CompiledModel, LeakageParams, StepSchedule, StepScratch, ThermalState};

/// One RC step of a summary trace: a slice of the summary's deposit
/// table plus the precomputed sub-step schedule for its duration.
#[derive(Copy, Clone, Debug)]
pub(crate) struct SummaryStep {
    pub(crate) start: u32,
    pub(crate) end: u32,
    pub(crate) sched: StepSchedule,
}

/// The memoisable thermal effect of one function: an ordered, flattened
/// deposit trace that advances any entry state exactly as analysing the
/// function body (blocks once each, in reverse post-order) would.
///
/// Built by [`ThermalDfa::summarize`](crate::ThermalDfa::summarize);
/// applied at call sites by the module-level analysis entry points
/// ([`Session::analyze_module`](crate::Session::analyze_module),
/// [`Engine::analyze_module`](crate::engine::Engine::analyze_module)).
#[derive(Clone, Debug)]
pub struct ThermalSummary {
    steps: Vec<SummaryStep>,
    deposits: Vec<(u32, f64)>,
    leak: LeakageParams,
    leakage_feedback: bool,
    num_points: usize,
    signature: u128,
}

impl ThermalSummary {
    pub(crate) fn from_parts(
        steps: Vec<SummaryStep>,
        deposits: Vec<(u32, f64)>,
        leak: LeakageParams,
        leakage_feedback: bool,
        num_points: usize,
        signature: u128,
    ) -> ThermalSummary {
        ThermalSummary {
            steps,
            deposits,
            leak,
            leakage_feedback,
            num_points,
            signature,
        }
    }

    /// Number of analysis points the summary's deposits address — must
    /// match the caller's grid.
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// Number of RC steps replaying the summary advances the state by —
    /// one per instruction and terminator of the summarised function,
    /// plus every step of every (transitively) spliced callee.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// The content signature the summary was computed under — the same
    /// quantized power-profile hash that keys whole fixpoint solves
    /// ([`ThermalDfa::signature`](crate::ThermalDfa::signature)), so
    /// two functions with identical bodies share one cached summary.
    pub fn signature(&self) -> u128 {
        self.signature
    }

    /// Replays the trace on `state` — the call-site transfer function.
    pub(crate) fn apply(
        &self,
        state: &mut ThermalState,
        compiled: &CompiledModel,
        step: &mut StepScratch,
    ) {
        let leak = self.leakage_feedback.then_some(&self.leak);
        for s in &self.steps {
            let deposits = &self.deposits[s.start as usize..s.end as usize];
            compiled.step_sparse_into(state, deposits, &s.sched, leak, step);
        }
    }

    /// Appends this summary's trace to a caller's under-construction
    /// trace, rebasing deposit spans — how callee effects become part
    /// of caller summaries (transitive composition).
    pub(crate) fn splice_into(&self, steps: &mut Vec<SummaryStep>, deposits: &mut Vec<(u32, f64)>) {
        for s in &self.steps {
            let start = deposits.len() as u32;
            deposits.extend_from_slice(&self.deposits[s.start as usize..s.end as usize]);
            steps.push(SummaryStep {
                start,
                end: deposits.len() as u32,
                sched: s.sched,
            });
        }
    }
}
