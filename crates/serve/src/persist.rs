//! The on-disk solve-cache tier: append-only, checksummed segments.
//!
//! A [`SegmentStore`] gives one scenario's
//! [`SolveCache`](tadfa_core::SolveCache) a life
//! beyond the process. New cache insertions (drained from the cache's
//! spill log after each request) are appended as framed records to the
//! current *segment file*; at startup every segment in the scenario's
//! directory is replayed and the decoded entries preloaded back into
//! the cache — so a restarted server answers its first golden replay
//! with cache hits, byte-identical to the run that populated the disk.
//!
//! ## Format
//!
//! Each segment file (`seg-NNNN.tadc`) is a 8-byte magic header
//! followed by length-prefixed records:
//!
//! ```text
//! "TADCSEG1"
//! [u32 payload_len | u64 fnv1a64(payload) | payload bytes]  × N
//! ```
//!
//! The payload is a [`SpillEntry`] in the exact-bits codec of
//! `tadfa_core::codec`. Appends go to a segment index no previous run
//! used, so interrupted writers can only ever damage the *tail* of
//! their own segment, never history.
//!
//! ## Corruption tolerance
//!
//! Disk contents are treated as untrusted input. The loader's
//! contract — exercised by the fault-injection suite — is *skip and
//! count, never trust, never panic*:
//!
//! * a zero-length or header-only file loads cleanly as empty;
//! * a checksum mismatch with intact framing skips that record and
//!   keeps reading (the damage is local);
//! * a torn frame (truncated length/checksum/payload, or an
//!   implausible length) abandons the rest of that segment — framing
//!   is gone, so everything after it is noise;
//! * a payload that checksums but does not decode (codec version
//!   bump, logic rot) is skipped and counted like a checksum miss.
//!
//! Every skipped record lands in [`LoadReport::records_skipped`],
//! surfaced by the server's `stats` response, so silent rot is
//! visible in production, not just in tests.

use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tadfa_core::{SpillEntry, SpillValue};

/// Magic bytes opening every segment file (format version in the tail
/// byte).
const MAGIC: &[u8; 8] = b"TADCSEG1";

/// File extension for segment files.
const SEGMENT_EXT: &str = "tadc";

/// Upper bound on a single record payload. Nothing the solver caches
/// is near this; a length prefix above it is corruption, not data, and
/// must not drive an allocation.
const MAX_RECORD_BYTES: u32 = 1 << 28;

/// FNV-1a 64 over raw bytes — the per-record checksum. (The hashing
/// crate's FNV-1a 128 keys quantized `f64` streams; records here are
/// opaque bytes, and 64 bits of detection is plenty for torn writes
/// and bit rot.)
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What loading a scenario's segment directory found.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Decoded entries, in append order (oldest segment first). The
    /// caller preloads these into the scenario's solve cache.
    pub entries: Vec<SpillEntry>,
    /// Records that decoded and checksummed cleanly.
    pub records_loaded: u64,
    /// Records skipped: checksum mismatch, torn frame, or undecodable
    /// payload. Nonzero is survivable by design — the entry is simply
    /// re-solved on first use — but it is always *visible*.
    pub records_skipped: u64,
    /// Segment files visited.
    pub segments: u64,
}

/// Counters a long-lived store accumulates, for the `stats` response.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Records recovered from disk at startup.
    pub loaded: u64,
    /// Records skipped at startup (corrupt/torn/undecodable).
    pub skipped: u64,
    /// Records appended by this process.
    pub appended: u64,
    /// Segment files present when the store opened (including the one
    /// this process appends to).
    pub segments: u64,
}

/// An append-only, checksummed, per-scenario segment store.
///
/// Writes go through an internal lock, so one store may be shared by
/// concurrent workers; loading happens once, in
/// [`open`](SegmentStore::open).
#[derive(Debug)]
pub struct SegmentStore {
    dir: PathBuf,
    writer: Mutex<BufWriter<File>>,
    loaded: u64,
    skipped: u64,
    segments: u64,
    appended: AtomicU64,
}

/// The segment files in `dir`, sorted by index (replay order).
fn sorted_segments(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut segment_paths: Vec<(u64, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) != Some(SEGMENT_EXT) {
            continue;
        }
        let idx = path
            .file_stem()
            .and_then(|s| s.to_str())
            .and_then(|s| s.strip_prefix("seg-"))
            .and_then(|s| s.parse::<u64>().ok());
        if let Some(idx) = idx {
            segment_paths.push((idx, path));
        }
    }
    segment_paths.sort();
    Ok(segment_paths)
}

impl SegmentStore {
    /// Opens (creating if needed) the segment directory for one
    /// scenario: replays every existing segment into a [`LoadReport`]
    /// and starts a fresh segment file for this process's appends.
    ///
    /// # Errors
    ///
    /// Only real I/O errors (unreadable directory, cannot create the
    /// new segment). Corrupt *contents* never error — they are skipped
    /// and counted, per the module contract.
    pub fn open(dir: &Path) -> std::io::Result<(SegmentStore, LoadReport)> {
        fs::create_dir_all(dir)?;
        let segment_paths = sorted_segments(dir)?;

        let mut report = LoadReport::default();
        for (_, path) in &segment_paths {
            load_segment(path, &mut report);
            report.segments += 1;
        }

        let next_idx = segment_paths.last().map_or(0, |(i, _)| i + 1);
        let new_path = dir.join(format!("seg-{next_idx:04}.{SEGMENT_EXT}"));
        let mut file = BufWriter::new(
            OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(&new_path)?,
        );
        file.write_all(MAGIC)?;
        file.flush()?;

        let store = SegmentStore {
            dir: dir.to_path_buf(),
            writer: Mutex::new(file),
            loaded: report.records_loaded,
            skipped: report.records_skipped,
            segments: report.segments + 1,
            appended: AtomicU64::new(0),
        };
        Ok((store, report))
    }

    /// The directory this store reads and appends under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends entries as checksummed records and flushes them to the
    /// OS. Flush (not fsync) is the durability point by design: the
    /// crash model this tier defends against is *process* death — the
    /// page cache survives a `kill -9` — and a torn tail from losing
    /// the whole machine is exactly what the corruption-tolerant
    /// loader absorbs.
    ///
    /// # Errors
    ///
    /// The underlying write/flush error, if the filesystem fails.
    pub fn append(&self, entries: &[SpillEntry]) -> std::io::Result<()> {
        if entries.is_empty() {
            return Ok(());
        }
        let mut w = self.writer.lock().expect("segment writer poisoned");
        for entry in entries {
            let payload = entry.to_bytes();
            let len = u32::try_from(payload.len()).expect("record under 4 GiB");
            w.write_all(&len.to_le_bytes())?;
            w.write_all(&fnv1a64(&payload).to_le_bytes())?;
            w.write_all(&payload)?;
        }
        w.flush()?;
        self.appended
            .fetch_add(entries.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// The store's lifetime counters.
    pub fn stats(&self) -> PersistStats {
        PersistStats {
            loaded: self.loaded,
            skipped: self.skipped,
            appended: self.appended.load(Ordering::Relaxed),
            segments: self.segments,
        }
    }
}

/// Replays one segment file into `report`, skip-and-count on any
/// corruption. I/O errors reading the file abandon it like a torn
/// frame (counted, not raised) — a half-readable disk should degrade
/// a warm start, not prevent one.
fn load_segment(path: &Path, report: &mut LoadReport) {
    let mut bytes = Vec::new();
    match File::open(path).and_then(|mut f| f.read_to_end(&mut bytes)) {
        Ok(_) => {}
        Err(_) => {
            report.records_skipped += 1;
            return;
        }
    }
    if bytes.is_empty() {
        // A creat()ed-but-never-written segment: clean and empty.
        return;
    }
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        // Wrong magic: not ours (or the header itself was torn).
        report.records_skipped += 1;
        return;
    }
    let mut pos = MAGIC.len();
    loop {
        let rest = bytes.len() - pos;
        if rest == 0 {
            return; // clean end of segment
        }
        if rest < 4 + 8 {
            report.records_skipped += 1; // torn frame header
            return;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4"));
        let sum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8"));
        pos += 12;
        if len > MAX_RECORD_BYTES || (len as usize) > bytes.len() - pos {
            report.records_skipped += 1; // implausible or truncated payload
            return;
        }
        let payload = &bytes[pos..pos + len as usize];
        pos += len as usize;
        if fnv1a64(payload) != sum {
            // Local damage: framing is intact, keep reading.
            report.records_skipped += 1;
            continue;
        }
        match SpillEntry::from_bytes(payload) {
            Ok(entry) => {
                report.entries.push(entry);
                report.records_loaded += 1;
            }
            Err(_) => report.records_skipped += 1,
        }
    }
}

/// What a compaction pass over one segment directory found and did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Distinct `(kind, key)` records kept (first occurrence wins —
    /// the same rule the cache's preload applies, and harmless either
    /// way because the solve is deterministic).
    pub unique: u64,
    /// Duplicate-key records dropped (later lifetimes re-solving and
    /// re-spilling what an earlier lifetime already persisted).
    pub duplicates: u64,
    /// Corrupt/undecodable records dropped (they were unreadable
    /// before compaction too — nothing loadable is lost).
    pub skipped: u64,
    /// Segment files present before compaction.
    pub segments_before: u64,
    /// Old segment files removed by [`compact_finish`].
    pub removed: u64,
}

/// The durable intermediate state between [`compact_write`] and
/// [`compact_finish`] — the crash-safety seam.
#[derive(Debug)]
pub struct CompactPlan {
    /// What phase one found.
    pub report: CompactReport,
    /// The pre-compaction segment files, still intact on disk.
    pub old_segments: Vec<PathBuf>,
    /// The freshly written compacted segment (`None` when there was
    /// nothing to write: no segments, or no decodable records).
    pub new_segment: Option<PathBuf>,
}

/// Phase one of compaction: read every segment in `dir`, drop
/// duplicate-key records (first occurrence wins), and write the
/// survivors as **one new segment** — via a `.tmp` file, fsynced, then
/// renamed to the next unused `seg-NNNN.tadc` index. The old segments
/// are untouched.
///
/// Crash contract (proved by the fault-injection suite): a crash
/// before the rename leaves only a `.tmp` file, which the loader
/// ignores (wrong extension) — the directory is exactly its
/// pre-compaction self. A crash after the rename but before
/// [`compact_finish`] leaves old and new segments side by side; every
/// record is then present at least once, the loader reads them all,
/// and the cache's first-wins preload collapses the duplicates. At no
/// point is pre-compaction data unreachable.
///
/// Must not run concurrently with a live appender on the same
/// directory (the fleet supervisor only compacts a worker that is
/// down; `tadfa-serve --compact-cache` runs instead of serving).
///
/// # Errors
///
/// Real I/O errors only (unreadable directory, failed write/fsync/
/// rename); corrupt record *contents* are skipped and counted.
pub fn compact_write(dir: &Path) -> std::io::Result<CompactPlan> {
    let segments = sorted_segments(dir)?;
    let mut report = CompactReport {
        segments_before: segments.len() as u64,
        ..CompactReport::default()
    };
    if segments.is_empty() {
        return Ok(CompactPlan {
            report,
            old_segments: Vec::new(),
            new_segment: None,
        });
    }
    let mut load = LoadReport::default();
    for (_, path) in &segments {
        load_segment(path, &mut load);
    }
    report.skipped = load.records_skipped;

    let mut seen = std::collections::HashSet::new();
    let mut kept: Vec<SpillEntry> = Vec::new();
    for entry in load.entries {
        let tag = match &entry.value {
            SpillValue::Result(_) => 0u8,
            SpillValue::Summary(_) => 1u8,
        };
        if seen.insert((tag, entry.key)) {
            kept.push(entry);
        } else {
            report.duplicates += 1;
        }
    }
    report.unique = kept.len() as u64;

    let old_segments: Vec<PathBuf> = segments.iter().map(|(_, p)| p.clone()).collect();
    if kept.is_empty() {
        // Nothing decodable to carry forward; finishing will just
        // remove the (empty or unreadable) old segments.
        return Ok(CompactPlan {
            report,
            old_segments,
            new_segment: None,
        });
    }

    let next_idx = segments.last().map_or(0, |(i, _)| i + 1);
    let final_path = dir.join(format!("seg-{next_idx:04}.{SEGMENT_EXT}"));
    let tmp_path = dir.join(format!("seg-{next_idx:04}.tmp"));
    {
        let mut w = BufWriter::new(File::create(&tmp_path)?);
        w.write_all(MAGIC)?;
        for entry in &kept {
            let payload = entry.to_bytes();
            let len = u32::try_from(payload.len()).expect("record under 4 GiB");
            w.write_all(&len.to_le_bytes())?;
            w.write_all(&fnv1a64(&payload).to_le_bytes())?;
            w.write_all(&payload)?;
        }
        w.flush()?;
        // Unlike the append path (process-crash model), compaction is
        // about to *delete* the only other copies — so the new segment
        // must survive machine death before the rename makes it real.
        w.get_ref().sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    // Best-effort directory fsync so the rename itself is durable.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(CompactPlan {
        report,
        old_segments,
        new_segment: Some(final_path),
    })
}

/// Phase two of compaction: remove the pre-compaction segments. Only
/// safe after [`compact_write`] returned — by then every surviving
/// record is durable in the new segment.
///
/// # Errors
///
/// The first removal error; segments already removed stay removed
/// (re-running compaction converges).
pub fn compact_finish(plan: &mut CompactPlan) -> std::io::Result<()> {
    for path in &plan.old_segments {
        fs::remove_file(path)?;
        plan.report.removed += 1;
    }
    plan.old_segments.clear();
    Ok(())
}

/// Full compaction of one scenario segment directory: [`compact_write`]
/// then [`compact_finish`].
///
/// # Errors
///
/// Any I/O error from either phase; the crash contract above bounds
/// the damage (data loss is impossible, leftover duplicates are not).
pub fn compact_dir(dir: &Path) -> std::io::Result<CompactReport> {
    let mut plan = compact_write(dir)?;
    compact_finish(&mut plan)?;
    Ok(plan.report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn empty_directory_opens_with_one_fresh_segment() {
        let dir = tempdir("persist-empty");
        let (store, report) = SegmentStore::open(&dir).unwrap();
        assert_eq!(report.records_loaded, 0);
        assert_eq!(report.records_skipped, 0);
        assert_eq!(report.segments, 0);
        assert_eq!(store.stats().segments, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_starts_a_new_segment_never_appends_to_old() {
        let dir = tempdir("persist-reopen");
        drop(SegmentStore::open(&dir).unwrap());
        drop(SegmentStore::open(&dir).unwrap());
        let mut names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        assert_eq!(names, vec!["seg-0000.tadc", "seg-0001.tadc"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compacting_an_empty_directory_is_a_no_op() {
        let dir = tempdir("compact-empty");
        fs::create_dir_all(&dir).unwrap();
        let report = compact_dir(&dir).unwrap();
        assert_eq!(report, CompactReport::default());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_collapses_empty_segments_and_ignores_tmp_files() {
        let dir = tempdir("compact-headers");
        // Three header-only segments from three past lifetimes.
        for _ in 0..3 {
            drop(SegmentStore::open(&dir).unwrap());
        }
        let report = compact_dir(&dir).unwrap();
        assert_eq!(report.segments_before, 3);
        assert_eq!(report.unique, 0);
        assert_eq!(report.removed, 3);
        // A stray .tmp (crash before rename) is invisible to open().
        fs::write(dir.join("seg-0099.tmp"), b"garbage").unwrap();
        let (_, load) = SegmentStore::open(&dir).unwrap();
        assert_eq!(load.records_skipped, 0, ".tmp files are not segments");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_skips_corrupt_records_without_erroring() {
        let dir = tempdir("compact-corrupt");
        fs::create_dir_all(&dir).unwrap();
        // A segment whose single record checksums but does not decode.
        let payload = b"not a spill entry";
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        fs::write(dir.join("seg-0000.tadc"), &bytes).unwrap();
        let plan = compact_write(&dir).unwrap();
        assert_eq!(plan.report.skipped, 1);
        assert_eq!(plan.report.unique, 0);
        assert!(plan.new_segment.is_none(), "nothing decodable to rewrite");
        assert_eq!(plan.old_segments.len(), 1, "originals intact until finish");
        assert!(plan.old_segments[0].exists());
        let _ = fs::remove_dir_all(&dir);
    }

    /// A unique, collision-safe scratch dir under the target dir (no
    /// tempfile dependency; process id + a per-test name suffice).
    fn tempdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tadfa-{}-{}", name, std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }
}
