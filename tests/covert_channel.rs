//! Acceptance tests for the thermal covert-channel scenario family:
//!
//! * the measured channel bandwidth **differs** across at least three
//!   committed (mapping × DTM) combinations — the channel is a real
//!   physical effect the DTM layer modulates, not a constant;
//! * hard throttling degrades the channel (lower bandwidth, more bit
//!   errors) relative to the unmanaged die, while the naive DVFS ladder
//!   does *not* — slowing the sender makes it heat longer, which
//!   cleans up the very signal DVFS was hoped to suppress;
//! * covert results are byte-identical across worker counts (the same
//!   invariance contract every other scenario obeys).

use std::collections::BTreeSet;
use std::path::Path;
use tadfa::sched::{load_spec, render_report, run_scenario, CovertSummary};

fn run_committed(stem: &str) -> (CovertSummary, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join(format!("{stem}.toml"));
    let cfg = load_spec(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let result = run_scenario(&cfg).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let covert = result
        .covert
        .clone()
        .unwrap_or_else(|| panic!("{stem} is not covert-instrumented"));
    (covert, render_report(&result))
}

/// Bandwidth across the committed (mapping × DTM) combinations takes at
/// least three distinct values — the acceptance bar for the family.
#[test]
fn bandwidth_differs_across_mapping_dtm_combos() {
    let combos = [
        "covert_pinned_none",
        "covert_pinned_throttle",
        "covert_pinned_dvfs",
    ];
    let mut seen = BTreeSet::new();
    for stem in combos {
        let (covert, _) = run_committed(stem);
        assert!(covert.bits > 0, "{stem}: no bits measured");
        assert!(
            covert.bandwidth_bps >= 0.0 && covert.bandwidth_bps <= covert.raw_bps,
            "{stem}: bandwidth {} outside [0, raw {}]",
            covert.bandwidth_bps,
            covert.raw_bps
        );
        seen.insert(covert.bandwidth_bps.to_bits());
    }
    assert!(
        seen.len() >= 3,
        "expected ≥3 distinct bandwidths across combos, got {seen:?}"
    );
}

/// Throttling under the cap degrades the channel; the naive DVFS ladder
/// does not (and must log actual level changes to prove it engaged).
#[test]
fn throttle_degrades_channel_dvfs_does_not() {
    let (none, _) = run_committed("covert_pinned_none");
    let (throttle, throttle_report) = run_committed("covert_pinned_throttle");
    let (dvfs, _) = run_committed("covert_pinned_dvfs");

    assert!(
        throttle.bandwidth_bps < none.bandwidth_bps,
        "throttle must reduce bandwidth: {} vs {}",
        throttle.bandwidth_bps,
        none.bandwidth_bps
    );
    assert!(
        throttle.errors > none.errors,
        "throttle must inject bit errors: {} vs {}",
        throttle.errors,
        none.errors
    );
    assert!(
        throttle_report.contains("\"throttle_events\""),
        "throttle run reports its DTM accounting"
    );
    assert!(
        dvfs.bandwidth_bps >= none.bandwidth_bps,
        "naive DVFS does not degrade the channel: {} vs {}",
        dvfs.bandwidth_bps,
        none.bandwidth_bps
    );
}

/// Covert + DTM scenarios obey the worker-invariance contract: the full
/// rendered report is byte-identical at 1 and 7 workers.
#[test]
fn covert_reports_are_worker_invariant() {
    for stem in ["covert_pinned_none", "covert_pinned_throttle"] {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("scenarios")
            .join(format!("{stem}.toml"));
        let mut cfg = load_spec(&path).unwrap();
        cfg.workers = 1;
        let one = render_report(&run_scenario(&cfg).unwrap());
        cfg.workers = 7;
        let seven = render_report(&run_scenario(&cfg).unwrap());
        assert_eq!(one, seven, "{stem}: workers 1 vs 7");
    }
}
